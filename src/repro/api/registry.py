"""Decorator-based registries for policies, scenarios, topologies, figures
and metrics.

The experiment stack is declarative: a run is described by *names* —
``"onth"``, ``"commuter"``, ``"erdos_renyi"`` — that resolve to the callables
implementing them. Each component family lives in a :class:`Registry`
populated by ``@register_*`` decorators at the definition site::

    @register_policy("onth")
    class OnTH(AllocationPolicy): ...

    @register_topology("erdos_renyi", aliases=("er",))
    def erdos_renyi(n, p=0.01, seed=None, ...): ...

Lookups are case-insensitive and treat ``-`` and ``_`` as equivalent
(``"onbr-dyn"`` and ``ONBR_DYN`` resolve the same entry). Unknown names raise
:class:`UnknownNameError` listing close matches and the full inventory, so a
CLI typo is a one-line fix instead of a stack trace.

Registries populate lazily: resolving or listing imports the builtin
modules first, so ``resolve_policy("onth")`` works without the caller ever
importing :mod:`repro.algorithms`. This also makes worker processes
self-sufficient — a pickled spec resolves its names after the fork/spawn.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Any, Callable, Iterator, NamedTuple, Sequence

__all__ = [
    "Registry",
    "UnknownNameError",
    "FigureEntry",
    "normalize_name",
    "POLICIES",
    "SCENARIOS",
    "TOPOLOGIES",
    "FIGURES",
    "METRICS",
    "register_policy",
    "register_scenario",
    "register_topology",
    "register_figure",
    "register_metric",
    "resolve_policy",
    "resolve_scenario",
    "resolve_topology",
    "resolve_figure",
    "resolve_metric",
    "list_policies",
    "list_scenarios",
    "list_topologies",
    "list_figures",
    "list_metrics",
]


def normalize_name(name: str) -> str:
    """Canonical lookup key: lowercase, ``-`` and ``_`` interchangeable."""
    return str(name).strip().lower().replace("-", "_")


_normalize = normalize_name


class UnknownNameError(LookupError):
    """A registry lookup failed; carries suggestions for the error message.

    Attributes:
        kind: the registry's component family (``"policy"``, ...).
        name: the name that failed to resolve.
        suggestions: close matches among the registered names.
        known: every registered name.
    """

    def __init__(self, kind: str, name: str, known: Sequence[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = tuple(known)
        self.suggestions = tuple(
            difflib.get_close_matches(_normalize(name),
                                      [_normalize(k) for k in known], n=3)
        )
        hint = (
            f"; did you mean {', '.join(repr(s) for s in self.suggestions)}?"
            if self.suggestions
            else ""
        )
        inventory = ", ".join(known) if known else "<none registered>"
        super().__init__(
            f"unknown {kind} {name!r}{hint} (known {kind} names: {inventory})"
        )

    def __reduce__(self):
        # Default exception pickling replays __init__ with bad arguments;
        # process-pool workers must be able to ship this error to the parent.
        return (type(self), (self.kind, self.name, self.known))


def _identity(entry: Any) -> "tuple | None":
    """Where an entry was defined, for re-registration tolerance.

    A module whose import failed partway (e.g. KeyboardInterrupt) is removed
    from ``sys.modules`` and re-executed on the next import, re-running its
    decorators with *new* function/class objects. Entries defined at the
    same module/qualname are the same definition and may overwrite; anything
    else is a genuine name clash.
    """
    target = entry.fn if isinstance(entry, FigureEntry) else entry
    module = getattr(target, "__module__", None)
    qualname = getattr(target, "__qualname__", None)
    if module is None or qualname is None:
        return None  # unidentifiable: never treated as equal
    return (module, qualname)


class Registry:
    """A name → callable mapping for one component family.

    Args:
        kind: human-readable family name used in error messages.
        builtin_modules: modules imported on first lookup so the builtin
            ``@register_*`` decorations have run.
    """

    def __init__(self, kind: str, builtin_modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._builtin_modules = tuple(builtin_modules)
        self._loaded = False
        self._entries: dict[str, Any] = {}
        self._display: dict[str, str] = {}
        self._primary_keys: "set[str]" = set()

    # -- population ------------------------------------------------------------

    def register(
        self, name: str, *, aliases: Sequence[str] = ()
    ) -> Callable[[Any], Any]:
        """Decorator registering ``name`` (and ``aliases``) for the target."""

        def decorate(target: Any) -> Any:
            for alias in (name, *aliases):
                key = _normalize(alias)
                if not key:
                    raise ValueError(f"{self.kind} names must be non-empty")
                existing = self._entries.get(key)
                if existing is not None and existing is not target:
                    identity = _identity(existing)
                    same_definition = (
                        identity is not None and identity == _identity(target)
                    )
                    if not same_definition:
                        raise ValueError(
                            f"{self.kind} {alias!r} is already registered "
                            f"(to {existing!r})"
                        )
                self._entries[key] = target
                self._display.setdefault(key, str(alias))
            self._primary_keys.add(_normalize(name))
            return target

        return decorate

    def _ensure_builtins(self) -> None:
        if self._loaded:
            return
        # Flag first so registrations triggered by these imports don't
        # re-enter; reset on failure so a transient ImportError does not
        # leave the registry permanently (and confusingly) empty.
        self._loaded = True
        try:
            for module in self._builtin_modules:
                importlib.import_module(module)
        except BaseException:
            self._loaded = False
            raise

    # -- lookups ---------------------------------------------------------------

    def resolve(self, name: str) -> Any:
        """The entry registered under ``name``; raises :class:`UnknownNameError`."""
        self._ensure_builtins()
        key = _normalize(name)
        if key not in self._entries:
            raise UnknownNameError(self.kind, name, self.names())
        return self._entries[key]

    def names(self) -> tuple[str, ...]:
        """All registered names (including aliases), sorted."""
        self._ensure_builtins()
        return tuple(sorted(self._display.values()))

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return _normalize(name) in self._entries

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def items(self) -> tuple[tuple[str, Any], ...]:
        """(primary name, entry) pairs, sorted by name.

        Each registration appears once under the name it was registered
        with — aliases resolve but are not enumerated, so inventory-driven
        consumers (the CLI's ``--list`` and ``all``) never duplicate work.
        """
        self._ensure_builtins()
        return tuple(
            (self._display[key], self._entries[key])
            for key in sorted(self._primary_keys, key=lambda k: self._display[k])
        )


class FigureEntry(NamedTuple):
    """A registered figure: its builder plus the quick-scale overrides.

    A NamedTuple so legacy ``fn, quick = entry`` unpacking keeps working.
    """

    fn: Callable[..., Any]
    quick: dict


POLICIES = Registry("policy", builtin_modules=("repro.algorithms",))
SCENARIOS = Registry("scenario", builtin_modules=("repro.workload", "repro.traces"))
TOPOLOGIES = Registry("topology", builtin_modules=("repro.topology",))
FIGURES = Registry(
    "figure",
    builtin_modules=("repro.experiments.figures", "repro.experiments.ablations"),
)
METRICS = Registry("metric", builtin_modules=("repro.api.metrics",))


def register_policy(name: str, *, aliases: Sequence[str] = ()):
    """Register an :class:`~repro.core.policy.AllocationPolicy` factory."""
    return POLICIES.register(name, aliases=aliases)


def register_scenario(name: str, *, aliases: Sequence[str] = ()):
    """Register a scenario factory ``f(substrate, **params) -> generator``."""
    return SCENARIOS.register(name, aliases=aliases)


def register_topology(name: str, *, aliases: Sequence[str] = ()):
    """Register a topology factory ``f(**params) -> Substrate``."""
    return TOPOLOGIES.register(name, aliases=aliases)


def register_figure(
    name: str, *, quick: "dict | None" = None, aliases: Sequence[str] = ()
):
    """Register a figure builder together with its quick-scale overrides."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        FIGURES.register(name, aliases=aliases)(FigureEntry(fn, dict(quick or {})))
        return fn

    return decorate


def register_metric(name: str, *, aliases: Sequence[str] = ()):
    """Register a metric function ``f(context, **params) -> {series: value}``.

    A metric maps the full per-policy :class:`~repro.core.results.RunResult`
    ledgers of one replicate (exposed through a
    :class:`~repro.api.metrics.MetricContext`) to named scalar series; see
    :mod:`repro.api.metrics` for the built-ins.
    """
    return METRICS.register(name, aliases=aliases)


def resolve_policy(name: str) -> Any:
    """The policy factory registered under ``name``."""
    return POLICIES.resolve(name)


def resolve_scenario(name: str) -> Any:
    """The scenario factory registered under ``name``."""
    return SCENARIOS.resolve(name)


def resolve_topology(name: str) -> Any:
    """The topology factory registered under ``name``."""
    return TOPOLOGIES.resolve(name)


def resolve_figure(name: str) -> FigureEntry:
    """The :class:`FigureEntry` registered under ``name``."""
    return FIGURES.resolve(name)


def list_policies() -> tuple[str, ...]:
    """All registered policy names."""
    return POLICIES.names()


def list_scenarios() -> tuple[str, ...]:
    """All registered scenario names."""
    return SCENARIOS.names()


def list_topologies() -> tuple[str, ...]:
    """All registered topology names."""
    return TOPOLOGIES.names()


def resolve_metric(name: str) -> Any:
    """The metric function registered under ``name``."""
    return METRICS.resolve(name)


def list_figures() -> tuple[str, ...]:
    """All registered figure names."""
    return FIGURES.names()


def list_metrics() -> tuple[str, ...]:
    """All registered metric names."""
    return METRICS.names()
