"""Declarative experiment descriptions: a run as plain, JSON-safe data.

A spec describes *what* to run — which topology, which demand scenario,
which policies, which cost constants — without any code. Specs are frozen
dataclasses that

* resolve their ``kind`` names through the :mod:`repro.api.registry`
  registries when built,
* round-trip losslessly through plain dicts (``to_dict`` / ``from_dict``)
  whose contents are JSON-safe (numbers, strings, bools, lists), and
* are picklable, so a parallel backend can ship them to worker processes.

The composition is::

    ExperimentSpec            one replicate: topology + scenario + policies
      ├─ TopologySpec           e.g. ("erdos_renyi", {"n": 200})
      ├─ ScenarioSpec           e.g. ("commuter", {"sojourn": 10})
      ├─ PolicySpec ×k          e.g. ("onth", {}, label="ONTH")
      │    └─ optional per-policy CostSpec / ScenarioSpec overrides
      ├─ CostSpec               β, c, Ra, Ri, load model
      └─ MetricSpec ×m          e.g. ("cost_ratio_vs", {"reference": "OPT"})
    SweepSpec                 parameter(s) swept over an ExperimentSpec

A policy entry may override the experiment's cost regime or demand scenario
(``PolicySpec(..., costs=..., scenario=...)``), which is how the paper's
two-regime ratio figures (β<c vs β>c on one shared trace) and multi-scenario
comparisons (Figure 11) are expressed as one spec. Metrics turn the
replicate's full per-policy ledgers into named result series; the default
``total_cost`` metric reproduces the historical per-policy totals.

Execution lives in :mod:`repro.api.experiment`
(:func:`~repro.api.experiment.run_experiment`,
:func:`~repro.api.experiment.run_sweep`).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Sequence

import numpy as np

# CI_METHODS / COMPARISON_MODES are the single source of truth for interval
# estimator and paired-comparison mode names: a ReplicationSpec or
# ComparisonSpec (and the CLI's --ci-method / --compare-mode) accepts exactly
# what repro.analysis.stats implements.
from repro.analysis.stats import CI_METHODS, COMPARISON_MODES
from repro.api.registry import (
    resolve_metric,
    resolve_policy,
    resolve_scenario,
    resolve_topology,
)
from repro.core.costs import CostModel
from repro.core.load import LinearLoad, LoadFunction, PowerLoad, QuadraticLoad
from repro.core.routing import RoutingStrategy

__all__ = [
    "TopologySpec",
    "ScenarioSpec",
    "PolicySpec",
    "CostSpec",
    "MetricSpec",
    "ReplicationSpec",
    "ComparisonSpec",
    "ComparisonSeriesError",
    "DEFAULT_METRICS",
    "ExperimentSpec",
    "SweepSpec",
    "canonical_key",
    "parse_component",
    "parse_value",
]


def canonical_key(data: Any) -> str:
    """SHA-256 of the canonical (sorted-keys, compact) JSON of ``data``.

    This is *the* content-key convention of the spec layer: every spec's
    :meth:`cache_key` is ``canonical_key(spec.to_dict())``, so two specs
    have equal keys exactly when they compare equal — the property the
    result cache builds on.
    """
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

#: Load-model names accepted by :class:`CostSpec`.
_LOAD_MODELS = ("linear", "quadratic", "power")


def _jsonable(value: Any) -> Any:
    """Convert ``value`` to JSON-safe plain data (tuples become lists)."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"spec parameter {value!r} of type {type(value).__name__} is not JSON-safe"
    )


def _frozen(value: Any) -> Any:
    """Normalise param values at construction: sequences become tuples.

    Applying the same normalisation in ``__post_init__`` and ``from_dict``
    makes dict/JSON round-trips compare equal to the original spec.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_frozen(v) for v in value)
    if isinstance(value, Mapping):
        return {str(k): _frozen(v) for k, v in value.items()}
    return value


def _check_keys(data: Mapping, allowed: "set[str]", what: str) -> None:
    """Reject unknown keys in a spec dict: typos must not silently fall back
    to defaults (see :meth:`CostSpec.from_dict`)."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {what} keys {unknown}; expected a subset of "
            f"{sorted(allowed)}"
        )


def _accepts(factory: Any, name: str) -> bool:
    """Does ``factory`` take a ``name`` keyword (directly or via **kwargs)?"""
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == name and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


@dataclass(frozen=True)
class _ComponentSpec:
    """Shared shape of the name + params specs."""

    kind: str
    params: "dict[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not str(self.kind).strip():
            raise ValueError(f"{type(self).__name__}.kind must be non-empty")
        object.__setattr__(
            self, "params", {str(k): _frozen(v) for k, v in dict(self.params).items()}
        )

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {"kind": self.kind, "params": _jsonable(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "_ComponentSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        _check_keys(data, {"kind", "params"}, cls.__name__)
        return cls(kind=data["kind"], params=dict(data.get("params") or {}))

    def with_params(self, **updates: Any) -> "_ComponentSpec":
        """Copy with ``updates`` merged into :attr:`params`."""
        return replace(self, params={**self.params, **updates})


@dataclass(frozen=True)
class TopologySpec(_ComponentSpec):
    """A substrate described by a registered topology factory + parameters."""

    def build(self, rng: "np.random.Generator | None" = None):
        """Instantiate the substrate; ``rng`` seeds the factory if accepted."""
        factory = resolve_topology(self.kind)
        kwargs = dict(self.params)
        if rng is not None and "seed" not in kwargs and _accepts(factory, "seed"):
            kwargs["seed"] = rng
        return factory(**kwargs)


@dataclass(frozen=True)
class ScenarioSpec(_ComponentSpec):
    """A demand scenario; built against a concrete substrate."""

    def build(self, substrate):
        """Instantiate the scenario's request generator on ``substrate``."""
        factory = resolve_scenario(self.kind)
        return factory(substrate, **self.params)


@dataclass(frozen=True)
class PolicySpec(_ComponentSpec):
    """An allocation policy plus an optional display label for result series.

    ``costs`` and ``scenario``, when set, override the experiment's cost
    regime / demand scenario *for this policy only*. Policies sharing the
    same effective scenario also share one generated trace per replicate, so
    ``PolicySpec("offstat", label="β<c")`` next to
    ``PolicySpec("offstat", label="β>c", costs=CostSpec.migration_expensive())``
    compares the two regimes on identical demand — the structure of the
    paper's ratio figures.
    """

    label: "str | None" = None
    costs: "CostSpec | None" = None
    scenario: "ScenarioSpec | None" = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.label is not None:
            # CLI value parsing may deliver ints/bools (label=5); series
            # names are strings, so coerce rather than crash downstream.
            label = str(self.label).strip()
            if not label:
                raise ValueError("PolicySpec.label must be non-empty when set")
            object.__setattr__(self, "label", label)
        # Accept plain dicts for the overrides so hand-written JSON specs
        # need no special casing.
        if self.costs is not None and not isinstance(self.costs, CostSpec):
            object.__setattr__(self, "costs", CostSpec.from_dict(self.costs))
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            object.__setattr__(
                self, "scenario", ScenarioSpec.from_dict(self.scenario)
            )

    def build(self):
        """Instantiate the policy."""
        factory = resolve_policy(self.kind)
        return factory(**self.params)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["label"] = self.label
        data["costs"] = self.costs.to_dict() if self.costs is not None else None
        data["scenario"] = (
            self.scenario.to_dict() if self.scenario is not None else None
        )
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "PolicySpec":
        _check_keys(
            data, {"kind", "params", "label", "costs", "scenario"}, "PolicySpec"
        )
        costs = data.get("costs")
        scenario = data.get("scenario")
        return cls(
            kind=data["kind"],
            params=dict(data.get("params") or {}),
            label=data.get("label"),
            costs=CostSpec.from_dict(costs) if costs is not None else None,
            scenario=(
                ScenarioSpec.from_dict(scenario) if scenario is not None else None
            ),
        )


@dataclass(frozen=True)
class CostSpec:
    """The cost constants of §II as data; builds a :class:`CostModel`.

    ``load`` selects the server-load model by name (``linear``, ``quadratic``
    or ``power`` with ``load_exponent``). The distance-dependent
    ``migration_matrix`` extension is substrate-shaped and therefore not
    representable in a spec; construct a :class:`CostModel` directly for it.
    """

    migration: float = 40.0
    creation: float = 400.0
    run_active: float = 2.5
    run_inactive: float = 0.5
    wireless_hop: float = 0.0
    load: str = "linear"
    load_exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.load not in _LOAD_MODELS:
            raise ValueError(
                f"unknown load model {self.load!r}; expected one of {_LOAD_MODELS}"
            )
        self.to_cost_model()  # surface bad constants at spec-build time

    @classmethod
    def paper_default(cls, **overrides: Any) -> "CostSpec":
        """β = 40 < c = 400, the paper's main regime."""
        return cls(migration=40.0, creation=400.0, **overrides)

    @classmethod
    def migration_expensive(cls, **overrides: Any) -> "CostSpec":
        """β = 400 > c = 40 (Figures 6, 14, 16-19)."""
        return cls(migration=400.0, creation=40.0, **overrides)

    def load_function(self) -> LoadFunction:
        """The load model instance selected by :attr:`load`."""
        if self.load == "linear":
            return LinearLoad()
        if self.load == "quadratic":
            return QuadraticLoad()
        return PowerLoad(self.load_exponent)

    def to_cost_model(self) -> CostModel:
        """The equivalent :class:`CostModel`."""
        return CostModel(
            migration=self.migration,
            creation=self.creation,
            run_active=self.run_active,
            run_inactive=self.run_inactive,
            load=self.load_function(),
            wireless_hop=self.wireless_hop,
        )

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {f.name: _jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CostSpec":
        """Inverse of :meth:`to_dict`.

        Unknown keys raise: a typo'd constant in a hand-edited or cached
        spec must not silently fall back to its default (and thereby run
        the wrong cost regime).
        """
        _check_keys(data, {f.name for f in fields(cls)}, "CostSpec")
        return cls(**dict(data))


@dataclass(frozen=True)
class MetricSpec(_ComponentSpec):
    """A derived result metric: a registered metric function plus parameters.

    A metric maps one replicate's full per-policy ledgers to named scalar
    series (see :mod:`repro.api.metrics`). ``label``, when set, renames a
    single-series output outright and prefixes each series of a multi-series
    output (``"<label> <series>"``) — the knob for avoiding series-name
    collisions when several metrics are combined.
    """

    label: "str | None" = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.label is not None:
            label = str(self.label).strip()
            if not label:
                raise ValueError("MetricSpec.label must be non-empty when set")
            object.__setattr__(self, "label", label)

    def resolve(self):
        """The registered metric function behind :attr:`kind`."""
        return resolve_metric(self.kind)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricSpec":
        _check_keys(data, {"kind", "params", "label"}, "MetricSpec")
        return cls(
            kind=data["kind"],
            params=dict(data.get("params") or {}),
            label=data.get("label"),
        )


#: The metric evaluated when a spec names none: per-policy total cost —
#: exactly the historical (pre-metric-pipeline) replicate output.
DEFAULT_METRICS = (MetricSpec("total_cost"),)




@dataclass(frozen=True)
class ReplicationSpec:
    """How many replicates a sweep point gets — fixed or confidence-driven.

    Attached to :attr:`SweepSpec.replication`, this controls replication in
    two modes:

    * **fixed** (``target_halfwidth=None``): every point runs exactly
      ``runs`` replicates (``None`` defers to :attr:`SweepSpec.runs`) and,
      when ``ci_level > 0``, the result is annotated with per-point
      confidence intervals. The samples — and with ``ci_level=0`` the
      entire result — are bit-identical to a plain fixed-``runs`` sweep.
    * **adaptive** (``target_halfwidth`` set): every point starts with
      ``runs`` replicates and keeps appending batches of ``batch`` more
      until the ``ci_level`` confidence interval of *every* series at the
      point has halfwidth ≤ ``target_halfwidth`` (a fraction of ``|mean|``
      when ``relative``), or the point reaches ``max_runs``. Points stop
      independently, so cheap/low-variance points spend no extra
      simulation time.

    Replicate seeds are positional (see
    :func:`repro.experiments.runner.spawn_point_extension_tasks`): the
    samples of replicate ``j`` at point ``i`` depend only on the sweep seed
    and ``(i, j)`` — never on batching, backends, shards, or how many
    replicates other points needed.

    ``method`` selects the interval estimator: ``"t"`` (Student-t, the
    default) or ``"bootstrap"`` (BCa).
    """

    runs: "int | None" = None
    max_runs: "int | None" = None
    ci_level: float = 0.95
    target_halfwidth: "float | None" = None
    relative: bool = False
    batch: "int | None" = None
    method: str = "t"

    def __post_init__(self) -> None:
        if self.runs is not None:
            object.__setattr__(self, "runs", int(self.runs))
            if self.runs < 1:
                raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.batch is not None:
            object.__setattr__(self, "batch", int(self.batch))
            if self.batch < 1:
                raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.max_runs is not None:
            object.__setattr__(self, "max_runs", int(self.max_runs))
            if self.max_runs < 1:
                raise ValueError(f"max_runs must be >= 1, got {self.max_runs}")
            if self.runs is not None and self.max_runs < self.runs:
                raise ValueError(
                    f"max_runs ({self.max_runs}) must be >= runs ({self.runs})"
                )
        if not 0.0 <= float(self.ci_level) < 1.0:
            raise ValueError(
                f"ci_level must be in [0, 1), got {self.ci_level}"
            )
        object.__setattr__(self, "ci_level", float(self.ci_level))
        if self.method not in CI_METHODS:
            raise ValueError(
                f"unknown CI method {self.method!r}; expected one of "
                f"{CI_METHODS}"
            )
        if self.target_halfwidth is not None:
            object.__setattr__(
                self, "target_halfwidth", float(self.target_halfwidth)
            )
            # `< 0` alone would wave NaN through (all comparisons false)
            # and silently run every point to max_runs.
            if not (
                math.isfinite(self.target_halfwidth)
                and self.target_halfwidth >= 0
            ):
                raise ValueError(
                    f"target_halfwidth must be finite and >= 0, "
                    f"got {self.target_halfwidth}"
                )
            if self.max_runs is None:
                raise ValueError(
                    "adaptive replication needs an explicit max_runs cap: a "
                    "noisy point would otherwise top up forever"
                )
            if self.ci_level == 0.0:
                raise ValueError(
                    "target_halfwidth needs ci_level > 0: a level-0 interval "
                    "is degenerate and every point would stop immediately"
                )

    @property
    def adaptive(self) -> bool:
        """Whether this spec tops points up toward a CI target."""
        return self.target_halfwidth is not None

    def initial_runs(self, sweep_runs: int) -> int:
        """The per-point starting replicate count under ``sweep_runs``."""
        return self.runs if self.runs is not None else int(sweep_runs)

    def batch_size(self, sweep_runs: int) -> int:
        """How many replicates one adaptive top-up appends."""
        return self.batch if self.batch is not None else self.initial_runs(sweep_runs)

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {f.name: _jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReplicationSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        _check_keys(data, {f.name for f in fields(cls)}, "ReplicationSpec")
        return cls(**dict(data))


class ComparisonSeriesError(ValueError):
    """A comparison's baseline/contrast names did not resolve to result series.

    Raised by :meth:`ComparisonSpec.resolve_contrasts`. A distinct subclass
    so the CLI can turn exactly this user error (a typo'd ``--compare``)
    into a clean exit without masking library bugs behind a broad
    ``except ValueError``.
    """


@dataclass(frozen=True)
class ComparisonSpec:
    """A paired policy-vs-policy comparison riding on a sweep.

    Attached to :attr:`SweepSpec.comparison`, this asks the sweep engine to
    report — next to the marginal series — *paired* statistics of every
    contrast series against one ``baseline`` series, per sweep point:
    the mean per-replicate difference (``mode="diff"``) or ratio
    (``mode="ratio"``) with a confidence interval over the paired values.
    Policies at one sweep point share the replicate's trace (common random
    numbers), so the shared noise cancels and the paired interval is
    typically far tighter than the marginal ones.

    * ``baseline`` names the reference series (a policy label or any other
      result series name); ``contrasts`` names the series compared against
      it — empty means *every* other series.
    * ``ci_level`` / ``method`` control the paired interval (independent of
      any :class:`ReplicationSpec` marginal settings).
    * ``target_halfwidth`` (absolute, or a fraction of the paired mean with
      ``relative``) retargets **adaptive replication** at the paired
      halfwidth: the sweep keeps topping a point up until every paired CI
      at the point meets this target (instead of every marginal CI). It
      requires an adaptive :class:`ReplicationSpec` (which contributes
      ``max_runs``, batching and seeding); when ``None``, an adaptive sweep
      with a comparison drives off the replication spec's own target,
      applied to the paired halfwidths.

    Comparisons change nothing about which replicates are simulated or how
    they are seeded — a sweep re-run with a comparison reuses every cached
    point entry and reproduces the marginal series bit for bit.
    """

    baseline: str
    contrasts: "tuple[str, ...]" = ()
    mode: str = "diff"
    ci_level: float = 0.95
    target_halfwidth: "float | None" = None
    relative: bool = False
    method: str = "t"

    def __post_init__(self) -> None:
        baseline = str(self.baseline).strip()
        if not baseline:
            raise ValueError("ComparisonSpec.baseline must be non-empty")
        object.__setattr__(self, "baseline", baseline)
        contrasts = tuple(str(c).strip() for c in self.contrasts)
        if any(not c for c in contrasts):
            raise ValueError("ComparisonSpec.contrasts must be non-empty names")
        duplicates = {c for c in contrasts if contrasts.count(c) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate comparison contrasts: {sorted(duplicates)}"
            )
        if baseline in contrasts:
            raise ValueError(
                f"baseline {baseline!r} cannot also be a contrast"
            )
        object.__setattr__(self, "contrasts", contrasts)
        if self.mode not in COMPARISON_MODES:
            raise ValueError(
                f"unknown comparison mode {self.mode!r}; expected one of "
                f"{COMPARISON_MODES}"
            )
        object.__setattr__(self, "ci_level", float(self.ci_level))
        if not 0.0 < self.ci_level < 1.0:
            raise ValueError(
                f"comparison ci_level must be in (0, 1), got {self.ci_level}"
            )
        if self.method not in CI_METHODS:
            raise ValueError(
                f"unknown CI method {self.method!r}; expected one of "
                f"{CI_METHODS}"
            )
        if self.target_halfwidth is not None:
            object.__setattr__(
                self, "target_halfwidth", float(self.target_halfwidth)
            )
            # `< 0` alone would wave NaN through (all comparisons false).
            if not (
                math.isfinite(self.target_halfwidth)
                and self.target_halfwidth >= 0
            ):
                raise ValueError(
                    f"comparison target_halfwidth must be finite and >= 0, "
                    f"got {self.target_halfwidth}"
                )

    def resolve_contrasts(self, names: "Sequence[str]") -> "tuple[str, ...]":
        """The concrete contrast series among result series ``names``.

        Raises a clear :class:`ComparisonSeriesError` when the baseline or
        an explicit contrast does not exist, or when nothing is left to
        compare.
        """
        names = list(names)
        if self.baseline not in names:
            raise ComparisonSeriesError(
                f"comparison baseline {self.baseline!r} is not a result "
                f"series; available: {sorted(names)}"
            )
        if self.contrasts:
            missing = [c for c in self.contrasts if c not in names]
            if missing:
                raise ComparisonSeriesError(
                    f"comparison contrasts {missing} are not result series; "
                    f"available: {sorted(names)}"
                )
            return self.contrasts
        others = tuple(n for n in names if n != self.baseline)
        if not others:
            raise ComparisonSeriesError(
                f"comparison against {self.baseline!r} has no contrast "
                "series: the result carries no other series"
            )
        return others

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {f.name: _jsonable(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ComparisonSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        _check_keys(data, {f.name for f in fields(cls)}, "ComparisonSpec")
        data = dict(data)
        data["contrasts"] = tuple(data.get("contrasts") or ())
        return cls(**data)


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete replicate description: who runs on what, for how long."""

    topology: TopologySpec
    scenario: ScenarioSpec
    policies: "tuple[PolicySpec, ...]"
    costs: CostSpec = field(default_factory=CostSpec)
    horizon: int = 500
    routing: str = "nearest"
    seed: int = 0
    name: str = ""
    metrics: "tuple[MetricSpec, ...]" = DEFAULT_METRICS

    def __post_init__(self) -> None:
        object.__setattr__(self, "policies", tuple(self.policies))
        if not self.policies:
            raise ValueError("ExperimentSpec needs at least one policy")
        object.__setattr__(
            self,
            "metrics",
            tuple(
                m if isinstance(m, MetricSpec) else MetricSpec.from_dict(m)
                for m in self.metrics
            ),
        )
        if not self.metrics:
            raise ValueError("ExperimentSpec needs at least one metric")
        # Two identical metric entries would emit identical series names and
        # collide at runtime on every replicate; reject them at build time.
        fingerprints = [
            (m.kind, json.dumps(_jsonable(m.params), sort_keys=True), m.label)
            for m in self.metrics
        ]
        duplicate_metrics = {
            fp for fp in fingerprints if fingerprints.count(fp) > 1
        }
        if duplicate_metrics:
            raise ValueError(
                "duplicate metrics in spec (identical kind/params/label): "
                f"{sorted(fp[0] for fp in duplicate_metrics)}; set "
                "MetricSpec.label to distinguish intentional repeats"
            )
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        object.__setattr__(
            self, "routing", str(self.routing).strip().lower().replace("-", "_")
        )
        valid = {strategy.value for strategy in RoutingStrategy}
        if self.routing not in valid:
            raise ValueError(
                f"unknown routing {self.routing!r}; expected one of {sorted(valid)}"
            )
        # Only *explicit* labels can be checked statically; same-kind policies
        # with different parameters are legitimate (their built ``.name``s may
        # differ, e.g. onbr vs onbr:dynamic_threshold=true) and real runtime
        # collisions are caught by repro.api.experiment._series_label.
        labels = [p.label for p in self.policies if p.label]
        duplicates = {label for label in labels if labels.count(label) > 1}
        if duplicates:
            raise ValueError(
                f"policy labels must be unique, duplicated: {sorted(duplicates)}"
            )

    @property
    def routing_strategy(self) -> RoutingStrategy:
        """The :class:`RoutingStrategy` member selected by :attr:`routing`."""
        return RoutingStrategy(self.routing)

    # -- parameter substitution ---------------------------------------------------

    def with_param(self, path: str, value: Any) -> "ExperimentSpec":
        """Copy with one parameter replaced.

        ``path`` is either a top-level field (``"horizon"``, ``"seed"``,
        ``"name"``, ``"routing"``) or a dotted component parameter:
        ``"topology.n"``, ``"scenario.sojourn"``, ``"costs.migration"``, or
        ``"policies.cache_size"`` (applied to every policy).

        ``scenario.*`` and ``costs.*`` substitutions also reach per-policy
        overrides: sweeping ``scenario.sojourn`` over a multi-scenario spec
        (Figure 11's three demand families) moves every scenario in lockstep.
        """
        head, dot, rest = path.partition(".")
        if not dot:
            if head in ("horizon", "seed", "name", "routing"):
                return replace(self, **{head: value})
            raise ValueError(
                f"cannot substitute {path!r}; top-level parameters are "
                "horizon/seed/name/routing, nested ones use 'component.param'"
            )
        if not rest:
            raise ValueError(f"empty parameter name in {path!r}")
        if head == "topology":
            return replace(self, topology=self.topology.with_params(**{rest: value}))
        if head == "scenario":
            return replace(
                self,
                scenario=self.scenario.with_params(**{rest: value}),
                policies=tuple(
                    replace(p, scenario=p.scenario.with_params(**{rest: value}))
                    if p.scenario is not None
                    else p
                    for p in self.policies
                ),
            )
        if head == "costs":
            return replace(
                self,
                costs=replace(self.costs, **{rest: value}),
                policies=tuple(
                    replace(p, costs=replace(p.costs, **{rest: value}))
                    if p.costs is not None
                    else p
                    for p in self.policies
                ),
            )
        if head == "policies":
            return replace(
                self,
                policies=tuple(p.with_params(**{rest: value}) for p in self.policies),
            )
        raise ValueError(
            f"unknown component {head!r} in {path!r}; expected "
            "topology/scenario/costs/policies"
        )

    # -- serialisation ----------------------------------------------------------

    def cache_key(self) -> str:
        """The canonical content key of this spec (see :func:`canonical_key`).

        Pure spec identity — no package version or code fingerprint; the
        result cache layers those on top. Equal specs (including dict/JSON
        round-trips) have equal keys.
        """
        return canonical_key(self.to_dict())

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form (nested component dicts)."""
        return {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "scenario": self.scenario.to_dict(),
            "policies": [p.to_dict() for p in self.policies],
            "costs": self.costs.to_dict(),
            "metrics": [m.to_dict() for m in self.metrics],
            "horizon": self.horizon,
            "routing": self.routing,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        _check_keys(
            data,
            {"name", "topology", "scenario", "policies", "costs", "metrics",
             "horizon", "routing", "seed"},
            "ExperimentSpec",
        )
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            scenario=ScenarioSpec.from_dict(data["scenario"]),
            policies=tuple(
                PolicySpec.from_dict(p) for p in data.get("policies", ())
            ),
            costs=CostSpec.from_dict(data.get("costs") or {}),
            # A dict *without* the key (pre-metric-pipeline era) gets the
            # default; an explicit empty list is malformed and must raise
            # in __post_init__ like ExperimentSpec(metrics=()) does.
            metrics=(
                tuple(MetricSpec.from_dict(m) for m in data["metrics"])
                if data.get("metrics") is not None
                else DEFAULT_METRICS
            ),
            horizon=data.get("horizon", 500),
            routing=data.get("routing", "nearest"),
            seed=data.get("seed", 0),
            name=data.get("name", ""),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A parameter sweep over an :class:`ExperimentSpec` template.

    ``parameter`` is a :meth:`ExperimentSpec.with_param` path substituted
    with each of ``values``; ``None`` runs the template unchanged once per
    value (useful for single-point "table" results).

    ``parameter`` may also be a *tuple of paths*, in which case every value
    is a tuple of the same arity substituted path-by-path — the shape for
    coupled sweeps where a secondary parameter derives from the primary one
    (e.g. Figure 5's request volume and day length, both functions of the
    network size). The first path's component is the figure's x value.

    ``replication`` (a :class:`ReplicationSpec`) upgrades the flat ``runs``
    count to confidence-aware replication: per-point CIs on the result and,
    with a ``target_halfwidth``, adaptive per-point top-ups. ``None`` keeps
    the historical fixed-``runs`` behaviour bit for bit.

    ``comparison`` (a :class:`ComparisonSpec`) additionally reports paired
    contrast-vs-baseline statistics per sweep point — and, combined with an
    adaptive ``replication``, stops topping points up once the *paired*
    intervals (not the marginal ones) meet the target. Comparisons never
    change which replicates run or how they are seeded.
    """

    experiment: ExperimentSpec
    parameter: "str | tuple[str, ...] | None" = None
    values: tuple = ("total cost",)
    runs: int = 5
    seed: int = 0
    figure: str = "sweep"
    title: str = ""
    x_label: str = ""
    notes: str = ""
    replication: "ReplicationSpec | None" = None
    comparison: "ComparisonSpec | None" = None

    def __post_init__(self) -> None:
        if self.replication is not None and not isinstance(
            self.replication, ReplicationSpec
        ):
            object.__setattr__(
                self, "replication", ReplicationSpec.from_dict(self.replication)
            )
        if self.comparison is not None and not isinstance(
            self.comparison, ComparisonSpec
        ):
            object.__setattr__(
                self, "comparison", ComparisonSpec.from_dict(self.comparison)
            )
        if (
            self.comparison is not None
            and self.comparison.target_halfwidth is not None
            and (self.replication is None or not self.replication.adaptive)
        ):
            raise ValueError(
                "a comparison target_halfwidth retargets adaptive "
                "replication and needs an adaptive ReplicationSpec "
                "(target_halfwidth + max_runs) to drive the top-ups"
            )
        object.__setattr__(self, "values", tuple(_frozen(v) for v in self.values))
        if not self.values:
            raise ValueError("SweepSpec needs at least one value")
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if isinstance(self.parameter, (list, tuple)):
            paths = tuple(str(p) for p in self.parameter)
            if not paths:
                raise ValueError(
                    "SweepSpec.parameter tuple must name at least one path"
                )
            object.__setattr__(self, "parameter", paths)
            for value in self.values:
                if not isinstance(value, tuple) or len(value) != len(paths):
                    raise ValueError(
                        f"sweep value {value!r} does not match the "
                        f"{len(paths)} swept paths {paths}"
                    )
        for path in self.parameter_paths:
            if path in ("seed", "name"):
                # Replicate randomness derives from SweepSpec.seed via
                # SeedSequence children, not ExperimentSpec.seed —
                # substituting either field would be a silent no-op on the
                # results.
                raise ValueError(
                    f"parameter {path!r} cannot be swept: per-replicate "
                    "seeding is controlled by SweepSpec.seed"
                )
        if self.parameter is not None:
            # Surface bad paths at spec-build time, not mid-sweep.
            self.experiment_at(self.values[0])

    @property
    def effective_runs(self) -> int:
        """The per-point *initial* replicate count.

        :attr:`ReplicationSpec.runs`, when set, overrides :attr:`runs`;
        adaptive replication may append more per point at execution time.
        """
        if self.replication is not None:
            return self.replication.initial_runs(self.runs)
        return self.runs

    @property
    def parameter_paths(self) -> "tuple[str, ...]":
        """The swept paths: ``()``, one path, or the coupled-path tuple."""
        if self.parameter is None:
            return ()
        if isinstance(self.parameter, str):
            return (self.parameter,)
        return self.parameter

    def experiment_at(self, x: Any) -> ExperimentSpec:
        """The concrete replicate spec for sweep-point value ``x``."""
        if self.parameter is None:
            return self.experiment
        if isinstance(self.parameter, str):
            return self.experiment.with_param(self.parameter, x)
        components = tuple(x)
        if len(components) != len(self.parameter):
            raise ValueError(
                f"sweep value {x!r} does not match the swept paths "
                f"{self.parameter}"
            )
        spec = self.experiment
        for path, component in zip(self.parameter, components):
            spec = spec.with_param(path, component)
        return spec

    def display_x(self, x: Any) -> Any:
        """The figure-facing x value for sweep point ``x``.

        Coupled sweeps carry tuples internally; the first path's component
        (the primary parameter) is what the figure plots.
        """
        if isinstance(self.parameter, tuple):
            return x[0]
        return x

    def resolved_x_label(self) -> str:
        """The x-axis label: explicit, else the swept parameter, else 'metric'."""
        if self.x_label:
            return self.x_label
        paths = self.parameter_paths
        return paths[0] if paths else "metric"

    def resolved_title(self) -> str:
        """The title: explicit, else derived from the components swept."""
        if self.title:
            return self.title
        subject = self.experiment.name or (
            f"{'/'.join(p.label or p.kind for p in self.experiment.policies)} on "
            f"{self.experiment.scenario.kind}@{self.experiment.topology.kind}"
        )
        paths = self.parameter_paths
        if not paths:
            return subject
        return f"{subject} vs {paths[0]}"

    def cache_key(self) -> str:
        """The canonical content key of this sweep (see :func:`canonical_key`)."""
        return canonical_key(self.to_dict())

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {
            "experiment": self.experiment.to_dict(),
            "parameter": _jsonable(self.parameter),
            "values": _jsonable(self.values),
            "runs": self.runs,
            "seed": self.seed,
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "notes": self.notes,
            "replication": (
                self.replication.to_dict()
                if self.replication is not None
                else None
            ),
            "comparison": (
                self.comparison.to_dict()
                if self.comparison is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise."""
        _check_keys(
            data,
            {"experiment", "parameter", "values", "runs", "seed", "figure",
             "title", "x_label", "notes", "replication", "comparison"},
            "SweepSpec",
        )
        replication = data.get("replication")
        comparison = data.get("comparison")
        return cls(
            experiment=ExperimentSpec.from_dict(data["experiment"]),
            parameter=data.get("parameter"),
            values=tuple(data.get("values") or ("total cost",)),
            runs=data.get("runs", 5),
            seed=data.get("seed", 0),
            figure=data.get("figure", "sweep"),
            title=data.get("title", ""),
            x_label=data.get("x_label", ""),
            notes=data.get("notes", ""),
            replication=(
                ReplicationSpec.from_dict(replication)
                if replication is not None
                else None
            ),
            comparison=(
                ComparisonSpec.from_dict(comparison)
                if comparison is not None
                else None
            ),
        )


def parse_value(text: str) -> Any:
    """Best-effort scalar parsing for CLI arguments: bool/None/int/float/str."""
    lowered = text.strip().lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip()


def parse_component(text: str) -> "tuple[str, dict[str, Any]]":
    """Parse a CLI component argument ``kind[:key=value,key=value,...]``.

    Examples::

        parse_component("erdos_renyi:n=200,p=0.02")
        parse_component("commuter:sojourn=10,dynamic_load=false")
        parse_component("onth")
    """
    kind, _, tail = text.partition(":")
    kind = kind.strip()
    if not kind:
        raise ValueError(f"component argument {text!r} has an empty kind")
    params: dict[str, Any] = {}
    if tail.strip():
        for item in tail.split(","):
            key, eq, raw = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"malformed parameter {item!r} in {text!r}; expected key=value"
                )
            params[key] = parse_value(raw)
    return kind, params
