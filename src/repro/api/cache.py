"""Disk cache for sweep results, keyed on the spec that produced them.

Because a :class:`~repro.api.specs.SweepSpec` is pure data — every input of
the computation, including replicate counts and the master seed, round-trips
through ``spec.to_dict()`` — the spec dict is a complete cache key: two runs
with equal spec dicts are guaranteed bit-identical (the execution backend
provably does not affect results). :class:`ResultCache` exploits that to
memoize results on disk at two granularities:

* **sweep entries** — a whole
  :class:`~repro.experiments.runner.FigureResult`, keyed on the
  :class:`~repro.api.specs.SweepSpec` (:meth:`~ResultCache.load` /
  :meth:`~ResultCache.store`)::

      cache = ResultCache("~/.cache/repro-experiments")
      result = run_sweep(spec, cache=cache)      # simulates, stores
      again = run_sweep(spec, cache=cache)       # loads; again == result

* **point entries** — the raw per-replicate samples of a single sweep
  point, keyed on the point's concrete :class:`ExperimentSpec` plus its
  seed coordinates (:meth:`~ResultCache.load_point` /
  :meth:`~ResultCache.store_point`). ``run_sweep`` probes these per point
  and only recomputes the misses, which is what makes interrupted sweeps
  resumable and ``--shard I/N`` fan-out possible: N processes fill disjoint
  points of one shared cache directory, and a final pass assembles the
  figure from the warm cache. A point's replicate seeds depend only on the
  sweep seed and the point's task offset (see
  :func:`~repro.experiments.runner.spawn_tasks`), so the entry records
  ``(sweep_seed, spawn_start, runs)`` next to the experiment dict — the
  complete provenance of the stored samples.

* **point-extension entries** — one adaptive top-up batch of replicates
  beyond a point's initial block (:meth:`~ResultCache.load_point_extension`
  / :meth:`~ResultCache.store_point_extension`), keyed on the experiment
  plus ``(sweep_seed, point_index, start, runs)``. Top-up seeds depend only
  on the sweep seed and the absolute replicate position (see
  :func:`~repro.experiments.runner.spawn_point_extension_tasks`), so any
  adaptive sweep whose schedule revisits the same coordinates — a resumed
  run, another shard, a refined grid — reuses the batch instead of
  re-simulating it. Plain point entries carry no replication metadata at
  all, so replication-unaware and adaptive sweeps running the same code
  share them: a point warmed by a plain sweep counts toward an adaptive
  target as the initial block, and vice versa. (As with every entry kind,
  sharing is per installed code version — keys embed the source
  fingerprint, so upgrading the package re-simulates rather than replaying
  results from different code.)

Paired comparisons (:attr:`~repro.api.specs.SweepSpec.comparison`) add no
entry kind of their own: the payload is pure arithmetic over the very same
replicate samples, so a comparison-carrying sweep reuses every point and
point-extension entry of a plain run unchanged (only its *sweep* entry —
which embeds the comparison in the result — gets a distinct key).

Every key is a SHA-256 over the canonical (sorted-keys) JSON of the payload
identity plus the package version, a fingerprint of the installed package's
source files and a cache schema number — so upgrading the code, *editing*
it in an editable install, or changing the storage format all invalidate
stale entries instead of serving them.
Entries live one JSON file per key, fanned out over two-hex-digit
subdirectories, and each file carries the full spec dict for verification:
a hash collision or hand-edited file is treated as a miss, never served.

Writes are atomic (temp file + rename), so a crashed or parallel run cannot
leave a truncated entry behind; concurrent writers of the same key are
last-writer-wins, and every reader sees a complete entry. The cache never
prunes on its own — :meth:`~ResultCache.prune` (also
``repro-experiments cache prune``) trims by age or entry count, and
:meth:`~ResultCache.stats` / :meth:`~ResultCache.clear` round out the
maintenance surface.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from repro.api.specs import ExperimentSpec, SweepSpec
    from repro.experiments.runner import FigureResult

__all__ = ["ResultCache", "scenario_content_fingerprint"]

#: Bump to invalidate every existing cache entry on a storage-format change.
CACHE_SCHEMA = 1

#: Process-wide memo of :func:`_code_fingerprint` (the sources cannot
#: change meaningfully within one interpreter: modules are already loaded).
_FINGERPRINT: "str | None" = None


def _code_fingerprint() -> str:
    """A digest of the installed ``repro`` sources.

    ``__version__`` alone cannot invalidate the cache under an editable
    install (the README's own workflow), where code edits never bump the
    version: a result computed before an algorithm edit must not be served
    after it. Hashing every package source file (~a few hundred KB, once
    per process) closes that hole.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def scenario_content_fingerprint(kind: str, params: "Mapping | None") -> object:
    """The content identity of a scenario's external inputs, or ``None``.

    Spec dicts identify a scenario by name and parameters — enough for the
    synthetic generators, but a file-backed scenario (``replay``) also
    depends on the *content* of the file its ``path`` parameter points to.
    Factories declare that dependency by exposing a ``content_fingerprint``
    attribute: a callable taking the params mapping and returning a
    JSON-safe value (digest, size, …) or ``None`` when the parameters pull
    in no external content. Wrapper scenarios (``overlay``, ``streaming``)
    delegate to their parts, so a replay nested anywhere in a composition
    still invalidates on file edits.

    Unknown scenario names return ``None`` — the spec will fail loudly at
    build time; key computation should not be the place that errors.
    """
    from repro.api.registry import SCENARIOS, UnknownNameError

    try:
        factory = SCENARIOS.resolve(kind)
    except UnknownNameError:
        return None
    fingerprint = getattr(factory, "content_fingerprint", None)
    if fingerprint is None:
        return None
    return fingerprint(dict(params or {}))


def _experiment_content(experiment: "ExperimentSpec") -> object:
    """Content extras of one experiment's scenario (``None`` when absent)."""
    scenario = experiment.scenario
    return scenario_content_fingerprint(scenario.kind, scenario.params)


class ResultCache:
    """A content-addressed store of figure results under one root directory.

    Args:
        root: directory holding the entries (created on first store).

    Attributes:
        hits/misses/stores: sweep-entry counters over this instance's
            lifetime — the CLI reports them and tests assert a re-run did
            not re-simulate.
        point_hits/point_misses/point_stores: the same counters for point
            entries; ``point_hits`` is how many sweep points a resumed run
            loaded instead of recomputing.
        extension_hits/extension_misses/extension_stores: the counters for
            adaptive top-up batches (point-extension entries).
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.point_hits = 0
        self.point_misses = 0
        self.point_stores = 0
        self.extension_hits = 0
        self.extension_misses = 0
        self.extension_stores = 0

    # -- keys -------------------------------------------------------------------

    def _identity(self, **payload) -> dict:
        """The environment half of every key: schema + version + code."""
        import repro

        return {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "code": _code_fingerprint(),
            **payload,
        }

    @staticmethod
    def _digest(payload: Mapping) -> str:
        from repro.api.specs import canonical_key

        return canonical_key(payload)

    def key_for(self, spec: "SweepSpec") -> str:
        """The stable cache key of ``spec``: SHA-256 of its canonical JSON.

        Includes the package version and a source fingerprint so code
        upgrades *and* in-place edits invalidate rather than replay stale
        results. File-backed scenarios additionally contribute a content
        digest of their input files (collected across every sweep point),
        so editing a replayed log invalidates the entry; specs without
        external content keep their historical keys unchanged.
        """
        payload = {"sweep": spec.to_dict()}
        content = []
        if spec.values:
            for x in spec.values:
                entry = _experiment_content(spec.experiment_at(x))
                if entry is not None and entry not in content:
                    content.append(entry)
        else:
            entry = _experiment_content(spec.experiment)
            if entry is not None:
                content.append(entry)
        if content:
            payload["content"] = content
        return self._digest(self._identity(**payload))

    def key_for_point(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        spawn_start: int,
        runs: int,
    ) -> str:
        """The key of one sweep point's replicate samples.

        ``experiment`` is the *concrete* spec at the point (parameter
        already substituted), identified by its canonical content key;
        ``(sweep_seed, spawn_start, runs)`` pin the exact child seeds its
        replicates consumed. Together those determine the samples bit for
        bit, so any sweep whose point lands on the same coordinates — a
        rerun, another shard, or a grid extended at the tail — shares the
        entry. File-backed scenarios fold their input files' content
        digest into the key (see :func:`scenario_content_fingerprint`).
        """
        payload = {
            "kind": "point",
            "experiment": experiment.cache_key(),
            "sweep_seed": int(sweep_seed),
            "spawn_start": int(spawn_start),
            "runs": int(runs),
        }
        content = _experiment_content(experiment)
        if content is not None:
            payload["content"] = content
        return self._digest(self._identity(**payload))

    def key_for_point_extension(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        point_index: int,
        start: int,
        runs: int,
    ) -> str:
        """The key of one adaptive top-up batch at one sweep point.

        ``(point_index, start, runs)`` pin the batch's replicate positions
        ``start .. start + runs`` within point ``point_index``'s extension
        stream; together with the experiment content key and the sweep seed
        they determine the samples bit for bit (see
        :func:`~repro.experiments.runner.spawn_point_extension_tasks`).
        """
        payload = {
            "kind": "point-extension",
            "experiment": experiment.cache_key(),
            "sweep_seed": int(sweep_seed),
            "point_index": int(point_index),
            "start": int(start),
            "runs": int(runs),
        }
        content = _experiment_content(experiment)
        if content is not None:
            payload["content"] = content
        return self._digest(self._identity(**payload))

    def path_for_key(self, key: str) -> Path:
        """Where the entry with ``key`` lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def path_for(self, spec: "SweepSpec") -> Path:
        """Where ``spec``'s entry lives (whether or not it exists yet)."""
        return self.path_for_key(self.key_for(spec))

    # -- load/store -------------------------------------------------------------

    def load(self, spec: "SweepSpec") -> "FigureResult | None":
        """The cached result of ``spec``, or ``None`` on a miss.

        Corrupt entries and spec-dict mismatches (hash collisions, edited
        files) count as misses — the caller re-simulates and overwrites.
        """
        from repro.experiments.runner import FigureResult

        path = self.path_for(spec)
        data = self._read(path)
        if data is None:
            self.misses += 1
            return None
        if data.get("schema") != CACHE_SCHEMA or data.get("sweep") != spec.to_dict():
            self.misses += 1
            return None
        try:
            result = FigureResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: "SweepSpec", result: "FigureResult") -> Path:
        """Persist ``result`` under ``spec``'s key; returns the entry path."""
        import repro

        path = self.path_for(spec)
        payload = {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "kind": "sweep",
            "key": self.key_for(spec),
            "sweep": spec.to_dict(),
            "result": result.to_dict(),
        }
        self._write(path, payload)
        self.stores += 1
        return path

    def load_point(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        spawn_start: int,
        runs: int,
    ) -> "list[dict[str, float]] | None":
        """The cached replicate samples of one sweep point, or ``None``.

        Returns the ``runs`` per-replicate sample mappings in replicate
        order — exactly what the point's tasks produced. Corrupt entries,
        spec-dict mismatches and sample-count mismatches are misses.
        """
        path = self.path_for_key(
            self.key_for_point(experiment, sweep_seed, spawn_start, runs)
        )
        data = self._read(path)
        if data is None:
            self.point_misses += 1
            return None
        if (
            data.get("schema") != CACHE_SCHEMA
            or data.get("kind") != "point"
            or data.get("experiment") != experiment.to_dict()
            or data.get("sweep_seed") != int(sweep_seed)
            or data.get("spawn_start") != int(spawn_start)
        ):
            self.point_misses += 1
            return None
        samples = self._decode_samples(data.get("samples"), runs)
        if samples is None:
            self.point_misses += 1
            return None
        self.point_hits += 1
        return samples

    @staticmethod
    def _decode_samples(samples, runs: int) -> "list[dict[str, float]] | None":
        """Validate a stored sample block; ``None`` marks the entry corrupt.

        A block must be a list of exactly ``runs`` name → float mappings
        with *finite* values: a NaN/inf smuggled in by a truncated write or
        a hand edit would otherwise flow into mean/CI arithmetic (which now
        rejects non-finite input loudly) — corrupt entries must read as
        misses instead.
        """
        try:
            if not isinstance(samples, list) or len(samples) != int(runs):
                raise ValueError(samples)
            decoded = [
                {str(name): float(value) for name, value in sample.items()}
                for sample in samples
            ]
            for sample in decoded:
                for value in sample.values():
                    if not math.isfinite(value):
                        raise ValueError(value)
        except (AttributeError, TypeError, ValueError):
            return None
        return decoded

    def store_point(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        spawn_start: int,
        runs: int,
        samples: "Sequence[Mapping[str, float]]",
    ) -> Path:
        """Persist one sweep point's replicate samples; returns the path."""
        import repro

        if len(samples) != int(runs):
            raise ValueError(f"{len(samples)} samples for runs={runs}")
        key = self.key_for_point(experiment, sweep_seed, spawn_start, runs)
        path = self.path_for_key(key)
        payload = {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "kind": "point",
            "key": key,
            "experiment": experiment.to_dict(),
            "sweep_seed": int(sweep_seed),
            "spawn_start": int(spawn_start),
            "runs": int(runs),
            "samples": [
                {str(name): float(value) for name, value in sample.items()}
                for sample in samples
            ],
        }
        self._write(path, payload)
        self.point_stores += 1
        return path

    def load_point_extension(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        point_index: int,
        start: int,
        runs: int,
    ) -> "list[dict[str, float]] | None":
        """One cached adaptive top-up batch, or ``None`` on a miss.

        Mirrors :meth:`load_point` for the extension stream: corrupt
        entries, coordinate mismatches and malformed or non-finite sample
        blocks are misses.
        """
        path = self.path_for_key(
            self.key_for_point_extension(
                experiment, sweep_seed, point_index, start, runs
            )
        )
        data = self._read(path)
        if data is None:
            self.extension_misses += 1
            return None
        if (
            data.get("schema") != CACHE_SCHEMA
            or data.get("kind") != "point-extension"
            or data.get("experiment") != experiment.to_dict()
            or data.get("sweep_seed") != int(sweep_seed)
            or data.get("point_index") != int(point_index)
            or data.get("start") != int(start)
        ):
            self.extension_misses += 1
            return None
        samples = self._decode_samples(data.get("samples"), runs)
        if samples is None:
            self.extension_misses += 1
            return None
        self.extension_hits += 1
        return samples

    def store_point_extension(
        self,
        experiment: "ExperimentSpec",
        sweep_seed: int,
        point_index: int,
        start: int,
        runs: int,
        samples: "Sequence[Mapping[str, float]]",
    ) -> Path:
        """Persist one adaptive top-up batch; returns the entry path."""
        import repro

        if len(samples) != int(runs):
            raise ValueError(f"{len(samples)} samples for runs={runs}")
        key = self.key_for_point_extension(
            experiment, sweep_seed, point_index, start, runs
        )
        path = self.path_for_key(key)
        payload = {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "kind": "point-extension",
            "key": key,
            "experiment": experiment.to_dict(),
            "sweep_seed": int(sweep_seed),
            "point_index": int(point_index),
            "start": int(start),
            "runs": int(runs),
            "samples": [
                {str(name): float(value) for name, value in sample.items()}
                for sample in samples
            ],
        }
        self._write(path, payload)
        self.extension_stores += 1
        return path

    @staticmethod
    def _read(path: Path) -> "dict | None":
        """Parse one entry file; anything but a JSON object is ``None``.

        The cache directory is shared by uncoordinated processes, so a
        missing, truncated, hand-edited or foreign file must read as a
        miss for this one key — never an exception that bricks every
        reader of the directory.
        """
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _write(self, path: Path, payload: Mapping) -> None:
        """Atomic publish: a parallel run or crash never exposes a torn file.

        Concurrent writers of one key each write a private temp file and
        rename it over the destination — the POSIX rename is atomic, so the
        last writer wins and readers only ever see complete entries.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # Insertion order is preserved deliberately (no sort_keys):
                # a FigureResult's series dict is ordered by policy
                # declaration, and sorting it here would make a warm load
                # return columns in a different order than the fresh
                # computation it memoizes. Payload construction is
                # deterministic, so file bytes stay reproducible anyway.
                json.dump(payload, handle, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- maintenance ------------------------------------------------------------

    def entries(self) -> "Iterator[Path]":
        """Every entry file currently in the cache (any kind, any schema).

        The directory is shared by uncoordinated processes: buckets (or the
        root itself) may vanish between listing and descent when a
        concurrent ``clear``/``prune`` runs, and in-flight atomic writes
        leave ``*.tmp`` files that are not entries. Both are skipped, never
        raised — :meth:`stats` and :meth:`prune` must work on a live cache.
        """
        try:
            buckets = sorted(self.root.iterdir())
        except OSError:  # root missing or deleted mid-listing
            return
        for bucket in buckets:
            if not (bucket.is_dir() and len(bucket.name) == 2):
                continue
            try:
                files = sorted(bucket.glob("*.json"))
            except OSError:  # bucket deleted between iterdir and glob
                continue
            yield from files

    def stats(self) -> dict:
        """A summary of what is on disk: entry/byte counts per entry kind."""
        kinds: dict[str, int] = {}
        total_bytes = 0
        count = 0
        for path in self.entries():
            count += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
            data = self._read(path)
            kind = "corrupt" if data is None else data.get("kind", "sweep")
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        return {
            "root": str(self.root),
            "entries": count,
            "bytes": total_bytes,
            "kinds": dict(sorted(kinds.items())),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            removed += self._remove(path)
        return removed

    def prune(
        self,
        max_entries: "int | None" = None,
        max_age: "float | None" = None,
    ) -> int:
        """Trim the cache; returns how many entries were removed.

        ``max_age`` (seconds) drops entries whose file modification time is
        older than that; ``max_entries`` then drops the oldest entries until
        at most that many remain. Either bound may be given alone. Entries
        that vanish mid-prune (a concurrent prune or clear) are skipped, not
        errors — the cache directory is shared by design.
        """
        if max_entries is None and max_age is None:
            raise ValueError("prune needs max_entries and/or max_age")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_age is not None and max_age < 0:
            raise ValueError(f"max_age must be >= 0, got {max_age}")
        aged: "list[tuple[float, Path]]" = []
        for path in self.entries():
            try:
                aged.append((path.stat().st_mtime, path))
            except OSError:
                continue
        aged.sort()  # oldest first
        removed = 0
        if max_age is not None:
            cutoff = time.time() - max_age
            while aged and aged[0][0] < cutoff:
                removed += self._remove(aged.pop(0)[1])
        if max_entries is not None and len(aged) > max_entries:
            for _mtime, path in aged[: len(aged) - max_entries]:
                removed += self._remove(path)
        return removed

    def _remove(self, path: Path) -> int:
        """Unlink one entry, tolerating concurrent removal; 1 if removed."""
        try:
            path.unlink()
        except OSError:
            return 0
        return 1

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
