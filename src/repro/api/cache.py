"""Disk cache for sweep results, keyed on the spec that produced them.

Because a :class:`~repro.api.specs.SweepSpec` is pure data — every input of
the computation, including replicate counts and the master seed, round-trips
through ``spec.to_dict()`` — the spec dict is a complete cache key: two runs
with equal spec dicts are guaranteed bit-identical (the execution backend
provably does not affect results). :class:`ResultCache` exploits that to
memoize :class:`~repro.experiments.runner.FigureResult`\\ s on disk:

    cache = ResultCache("~/.cache/repro-experiments")
    result = run_sweep(spec, cache=cache)      # simulates, stores
    again = run_sweep(spec, cache=cache)       # loads; again == result

The key is a SHA-256 over the canonical (sorted-keys) JSON of the spec dict
plus the package version, a fingerprint of the installed package's source
files and a cache schema number — so upgrading the code, *editing* it in an
editable install, or changing the storage format all invalidate stale
entries instead of serving them.
Entries live one JSON file per key, fanned out over two-hex-digit
subdirectories, and each file carries the full spec dict for verification:
a hash collision or hand-edited file is treated as a miss, never served.

Writes are atomic (temp file + rename), so a crashed or parallel run cannot
leave a truncated entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.api.specs import SweepSpec
    from repro.experiments.runner import FigureResult

__all__ = ["ResultCache"]

#: Bump to invalidate every existing cache entry on a storage-format change.
CACHE_SCHEMA = 1

#: Process-wide memo of :func:`_code_fingerprint` (the sources cannot
#: change meaningfully within one interpreter: modules are already loaded).
_FINGERPRINT: "str | None" = None


def _code_fingerprint() -> str:
    """A digest of the installed ``repro`` sources.

    ``__version__`` alone cannot invalidate the cache under an editable
    install (the README's own workflow), where code edits never bump the
    version: a result computed before an algorithm edit must not be served
    after it. Hashing every package source file (~a few hundred KB, once
    per process) closes that hole.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for source in sorted(root.rglob("*.py")):
            digest.update(str(source.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(source.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class ResultCache:
    """A content-addressed store of figure results under one root directory.

    Args:
        root: directory holding the entries (created on first store).

    Attributes:
        hits/misses/stores: counters over this instance's lifetime — the CLI
            reports them and tests assert a re-run did not re-simulate.
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keys -------------------------------------------------------------------

    def key_for(self, spec: "SweepSpec") -> str:
        """The stable cache key of ``spec``: SHA-256 of its canonical JSON.

        Includes the package version and a source fingerprint so code
        upgrades *and* in-place edits invalidate rather than replay stale
        results.
        """
        import repro

        payload = {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "code": _code_fingerprint(),
            "sweep": spec.to_dict(),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def path_for(self, spec: "SweepSpec") -> Path:
        """Where ``spec``'s entry lives (whether or not it exists yet)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- load/store -------------------------------------------------------------

    def load(self, spec: "SweepSpec") -> "FigureResult | None":
        """The cached result of ``spec``, or ``None`` on a miss.

        Corrupt entries and spec-dict mismatches (hash collisions, edited
        files) count as misses — the caller re-simulates and overwrites.
        """
        from repro.experiments.runner import FigureResult

        path = self.path_for(spec)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema") != CACHE_SCHEMA or data.get("sweep") != spec.to_dict():
            self.misses += 1
            return None
        try:
            result = FigureResult.from_dict(data["result"])
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: "SweepSpec", result: "FigureResult") -> Path:
        """Persist ``result`` under ``spec``'s key; returns the entry path."""
        import repro

        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "version": repro.__version__,
            "key": self.key_for(spec),
            "sweep": spec.to_dict(),
            "result": result.to_dict(),
        }
        # Atomic publish: a parallel run or crash never exposes a torn file.
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
