"""Declarative experiment API: registries, specs and execution backends.

This package is the chassis of the experiment stack:

* :mod:`repro.api.registry` — name → component registries populated by
  ``@register_policy`` / ``@register_scenario`` / ``@register_topology`` /
  ``@register_figure`` decorators at the definition sites;
* :mod:`repro.api.specs` — frozen, JSON-safe dataclasses describing a run
  purely as data (:class:`ExperimentSpec`, :class:`SweepSpec`, ...);
* :mod:`repro.api.execution` — pluggable :class:`ExecutionBackend`\\ s
  (serial or process pool) with bit-identical results;
* :mod:`repro.api.metrics` — built-in result metrics (totals, OPT ratios,
  cost breakdowns) evaluated over full per-policy ledgers;
* :mod:`repro.api.cache` — :class:`ResultCache`, disk memoization of sweep
  results keyed on the spec dict;
* :mod:`repro.api.experiment` — :func:`run_experiment` / :func:`run_sweep`
  executing specs through the simulator and sweep engine.

Exports resolve lazily (PEP 562) so this package never participates in
import cycles: component modules may import the registry decorators while
the experiment layer imports the spec executor.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    # registry
    "Registry": "repro.api.registry",
    "UnknownNameError": "repro.api.registry",
    "FigureEntry": "repro.api.registry",
    "POLICIES": "repro.api.registry",
    "SCENARIOS": "repro.api.registry",
    "TOPOLOGIES": "repro.api.registry",
    "FIGURES": "repro.api.registry",
    "METRICS": "repro.api.registry",
    "register_policy": "repro.api.registry",
    "register_scenario": "repro.api.registry",
    "register_topology": "repro.api.registry",
    "register_figure": "repro.api.registry",
    "register_metric": "repro.api.registry",
    "resolve_policy": "repro.api.registry",
    "resolve_scenario": "repro.api.registry",
    "resolve_topology": "repro.api.registry",
    "resolve_figure": "repro.api.registry",
    "resolve_metric": "repro.api.registry",
    "list_policies": "repro.api.registry",
    "list_scenarios": "repro.api.registry",
    "list_topologies": "repro.api.registry",
    "list_figures": "repro.api.registry",
    "list_metrics": "repro.api.registry",
    # specs
    "TopologySpec": "repro.api.specs",
    "ScenarioSpec": "repro.api.specs",
    "PolicySpec": "repro.api.specs",
    "CostSpec": "repro.api.specs",
    "MetricSpec": "repro.api.specs",
    "ReplicationSpec": "repro.api.specs",
    "ComparisonSpec": "repro.api.specs",
    "DEFAULT_METRICS": "repro.api.specs",
    "ExperimentSpec": "repro.api.specs",
    "SweepSpec": "repro.api.specs",
    "parse_component": "repro.api.specs",
    "parse_value": "repro.api.specs",
    # metrics
    "PolicyRun": "repro.api.metrics",
    "MetricContext": "repro.api.metrics",
    "evaluate_metrics": "repro.api.metrics",
    # cache
    "ResultCache": "repro.api.cache",
    # execution
    "ReplicateTask": "repro.api.execution",
    "ExecutionBackend": "repro.api.execution",
    "SerialBackend": "repro.api.execution",
    "ProcessPoolBackend": "repro.api.execution",
    "QueueBackend": "repro.api.execution",
    # experiment
    "ExperimentResult": "repro.api.experiment",
    "SpecReplicate": "repro.api.experiment",
    "capture_sweeps": "repro.api.experiment",
    "collect_point_samples": "repro.api.experiment",
    "refine_sweep": "repro.api.experiment",
    "resolve_series_labels": "repro.api.experiment",
    "run_experiment": "repro.api.experiment",
    "run_replicate": "repro.api.experiment",
    "run_sweep": "repro.api.experiment",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))
