"""Built-in result metrics and the context they evaluate against.

A *metric* turns one replicate's full per-policy
:class:`~repro.core.results.RunResult` ledgers into named scalar series.
Metrics are plain functions registered with
:func:`~repro.api.registry.register_metric`::

    @register_metric("total_cost")
    def total_cost(context):
        return {run.label: run.run.total_cost for run in context.runs}

and referenced from specs as :class:`~repro.api.specs.MetricSpec` entries,
so a derived quantity — an OPT ratio, a cost decomposition — is data in the
spec rather than a bespoke closure in a figure module.

Every metric receives a :class:`MetricContext` carrying the replicate's
substrate and the ordered :class:`PolicyRun` records (label, ledger, the
effective trace and cost regime of that policy). Reference costs — most
importantly the exact offline optimum — are computed on demand through
:meth:`MetricContext.reference_cost` and cached per (trace, cost regime), so
a two-regime ratio figure pays for each OPT dynamic program exactly once.

Metrics run strictly *after* all simulations of a replicate and must not
consume replicate randomness (``Opt.solve`` is deterministic), which keeps
metric-extended specs bit-identical to their historical closure
implementations.

Built-ins:

================== =========================================================
``total_cost``      grand total per policy (the default; series = labels)
``per_round_average`` mean per-round total per policy (``<label>/round``)
``cost_ratio_vs``   each policy's total over a reference cost (OPT or a
                    policy label) — the competitive ratios of §V
``reference_cost``  the reference cost itself as a series (e.g. OPT's
                    absolute cost next to a policy's, Figures 13-14)
``cost_breakdown``  per cost factor totals; parts may be summed with ``+``
                    (e.g. ``migration+creation``, Figure 6)
================== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.api.registry import normalize_name, register_metric
from repro.core.results import RunResult

if TYPE_CHECKING:  # imported lazily at runtime to keep module load light
    from repro.api.specs import (
        CostSpec,
        ExperimentSpec,
        MetricSpec,
        PolicySpec,
        ScenarioSpec,
    )
    from repro.core.costs import CostModel
    from repro.topology.substrate import Substrate
    from repro.workload.base import Trace

__all__ = [
    "PolicyRun",
    "MetricContext",
    "evaluate_metrics",
]


@dataclass(frozen=True)
class PolicyRun:
    """One policy's simulated replicate: its ledger plus effective inputs.

    Attributes:
        label: the result-series label (explicit or the built policy name).
        spec: the :class:`~repro.api.specs.PolicySpec` that produced the run.
        run: the full per-round :class:`RunResult` ledger.
        trace: the demand trace the policy served (shared between policies
            whose effective scenarios are equal).
        trace_index: index of :attr:`trace` among the replicate's distinct
            traces — with :attr:`cost_spec` the cache key for reference
            costs.
        costs: the effective :class:`~repro.core.costs.CostModel`.
        cost_spec: the effective :class:`~repro.api.specs.CostSpec`.
        scenario: the effective :class:`~repro.api.specs.ScenarioSpec`.
    """

    label: str
    spec: "PolicySpec"
    run: RunResult
    trace: "Trace"
    trace_index: int
    costs: "CostModel"
    cost_spec: "CostSpec"
    scenario: "ScenarioSpec"


class MetricContext:
    """Everything a metric may look at for one replicate.

    Args:
        spec: the executed :class:`~repro.api.specs.ExperimentSpec`.
        substrate: the replicate's concrete substrate network.
        runs: the per-policy :class:`PolicyRun` records in policy order.
    """

    def __init__(
        self,
        spec: "ExperimentSpec",
        substrate: "Substrate",
        runs: Sequence[PolicyRun],
    ) -> None:
        self.spec = spec
        self.substrate = substrate
        self.runs: tuple[PolicyRun, ...] = tuple(runs)
        self.by_label: dict[str, PolicyRun] = {r.label: r for r in self.runs}
        self._reference_cache: dict[tuple, float] = {}

    def __iter__(self) -> "Iterable[PolicyRun]":
        return iter(self.runs)

    @property
    def labels(self) -> tuple[str, ...]:
        """All series labels in policy order."""
        return tuple(r.label for r in self.runs)

    def run_for(self, policy: "str | None" = None) -> PolicyRun:
        """The run labelled ``policy``, or the only run when unambiguous.

        With ``policy=None`` the replicate must contain exactly one distinct
        (trace, cost regime) context — otherwise "the" reference cost is
        ambiguous and the caller must name a policy.
        """
        if policy is not None:
            if policy not in self.by_label:
                raise ValueError(
                    f"unknown policy label {policy!r}; replicate has "
                    f"{list(self.by_label)}"
                )
            return self.by_label[policy]
        contexts = {(r.trace_index, r.cost_spec) for r in self.runs}
        if len(contexts) > 1:
            raise ValueError(
                "replicate has several (trace, cost regime) contexts; pass "
                f"policy=<label> to pick one of {list(self.by_label)}"
            )
        return self.runs[0]

    def reference_cost(self, reference: str, run: PolicyRun) -> float:
        """The cost to compare ``run`` against.

        ``reference`` is either another policy's series label (its ledger
        total) or ``"OPT"`` — the exact offline optimum of §IV-A, solved on
        ``run``'s trace under ``run``'s cost regime. OPT solutions are
        cached per (trace, cost regime), and the dynamic program consumes no
        randomness, so metrics never perturb replicate reproducibility.
        """
        reference = str(reference)
        if reference in self.by_label:
            return self.by_label[reference].run.total_cost
        if normalize_name(reference) == "opt":
            key = (run.trace_index, run.cost_spec)
            if key not in self._reference_cache:
                from repro.algorithms.opt import Opt

                cost, _plan = Opt.solve(self.substrate, run.trace, run.costs)
                self._reference_cache[key] = float(cost)
            return self._reference_cache[key]
        raise ValueError(
            f"unknown reference {reference!r}; expected 'OPT' or one of the "
            f"policy labels {list(self.by_label)}"
        )


def evaluate_metrics(
    context: MetricContext, metrics: "Sequence[MetricSpec]"
) -> "dict[str, float]":
    """Evaluate ``metrics`` against ``context`` into one flat series mapping.

    Each metric contributes its series in declaration order; a label set on
    the :class:`~repro.api.specs.MetricSpec` renames a single-series output
    and prefixes a multi-series one. Two metrics resolving to the same
    series name raise instead of silently overwriting each other.
    """
    series: dict[str, float] = {}
    for metric_spec in metrics:
        fn = metric_spec.resolve()
        out = fn(context, **metric_spec.params)
        items = [(str(name), float(value)) for name, value in out.items()]
        if metric_spec.label is not None:
            if len(items) == 1:
                items = [(metric_spec.label, items[0][1])]
            else:
                items = [
                    (f"{metric_spec.label} {name}", value)
                    for name, value in items
                ]
        for name, value in items:
            if name in series:
                raise ValueError(
                    f"metric {metric_spec.kind!r} emits series {name!r} "
                    "which an earlier metric already produced; set "
                    "MetricSpec.label to disambiguate"
                )
            series[name] = value
    return series


# ---------------------------------------------------------------------------
# Built-in metrics
# ---------------------------------------------------------------------------


@register_metric("total_cost", aliases=("total-cost",))
def total_cost(context: MetricContext) -> "dict[str, float]":
    """Grand total cost per policy — the historical replicate output."""
    return {run.label: run.run.total_cost for run in context.runs}


@register_metric("per_round_average")
def per_round_average(context: MetricContext) -> "dict[str, float]":
    """Mean per-round total cost per policy (series ``<label>/round``)."""
    return {
        f"{run.label}/round": run.run.total_cost / run.run.rounds
        for run in context.runs
    }


@register_metric("cost_ratio_vs", aliases=("ratio_vs",))
def cost_ratio_vs(
    context: MetricContext, reference: str = "OPT"
) -> "dict[str, float]":
    """Each policy's total cost over ``reference``'s cost (§II-E ratios).

    ``reference`` names another policy's series label or ``"OPT"`` (the
    exact offline optimum under each policy's own trace and cost regime).
    When the reference is a policy label, its trivial self-ratio is omitted.
    """
    from repro.analysis.competitive import cost_ratio

    out: dict[str, float] = {}
    for run in context.runs:
        if run.label == str(reference):
            continue
        out[run.label] = cost_ratio(
            run.run.total_cost, context.reference_cost(reference, run)
        )
    if not out:
        raise ValueError(
            f"cost_ratio_vs({reference!r}) has no policies left to compare"
        )
    return out


@register_metric("reference_cost")
def reference_cost(
    context: MetricContext,
    reference: str = "OPT",
    policy: "str | None" = None,
) -> "dict[str, float]":
    """The reference cost itself as a series named after the reference.

    Puts OPT's absolute cost next to a policy's (Figures 13-14). ``policy``
    selects whose trace/cost regime defines the reference when the
    replicate mixes several; it defaults to the only one.
    """
    run = context.run_for(policy)
    return {str(reference): context.reference_cost(reference, run)}


#: Cost factors addressable by :func:`cost_breakdown` parts.
_BREAKDOWN_FIELDS = ("access", "running", "migration", "creation", "total")


@register_metric("cost_breakdown", aliases=("breakdown",))
def cost_breakdown(
    context: MetricContext,
    parts: Sequence[str] = ("access", "running", "migration", "creation"),
) -> "dict[str, float]":
    """Total cost split by factor (the bars of Figure 6).

    Each part is a cost factor (``access``, ``running``, ``migration``,
    ``creation``, ``total``) or a ``+``-joined sum of factors
    (``"migration+creation"``). With a single policy the series carry the
    part names alone; with several they are prefixed ``"<label> <part>"``.
    """
    if isinstance(parts, str):
        parts = (parts,)
    out: dict[str, float] = {}
    for run in context.runs:
        breakdown = run.run.breakdown
        for part in parts:
            value = 0.0
            for component in str(part).split("+"):
                component = component.strip()
                if component not in _BREAKDOWN_FIELDS:
                    raise ValueError(
                        f"unknown breakdown part {component!r}; expected "
                        f"one of {_BREAKDOWN_FIELDS} (joinable with '+')"
                    )
                value += float(getattr(breakdown, component))
            name = part if len(context.runs) == 1 else f"{run.label} {part}"
            out[str(name)] = value
    return out
