"""Executing declarative specs: ``run_experiment`` and ``run_sweep``.

These are the two entry points the spec layer adds on top of
:func:`repro.core.simulator.simulate` and
:func:`repro.experiments.runner.sweep_experiment`:

* :func:`run_experiment` materialises one :class:`ExperimentSpec` — build
  the substrate, generate the trace(s), run every policy — and returns the
  full per-policy :class:`~repro.core.results.RunResult` ledgers plus the
  spec's evaluated metric series.
* :func:`run_sweep` turns a :class:`SweepSpec` into a
  :class:`~repro.experiments.runner.FigureResult` via the sweep engine; pass
  an :class:`~repro.api.execution.ExecutionBackend` to parallelise the
  replicates (results are bit-identical across backends) and a
  :class:`~repro.api.cache.ResultCache` to memoize results on disk — whole
  sweeps *and* individual sweep points, so an interrupted or partially
  invalidated sweep resumes instead of restarting, and ``shard=(i, n)``
  lets N independent processes fill disjoint points of one shared cache.

Randomness follows the figure-module convention: one generator drives
topology construction, trace generation and every policy's simulation in
declaration order, so a spec plus a seed pins the exact run. With
per-policy scenario overrides, all distinct traces are generated (in
first-use order) *before* any policy simulates — the order the paper's
multi-scenario comparisons always used — and metrics evaluate strictly
after the last simulation without consuming any randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.api.execution import ExecutionBackend, SerialBackend
from repro.api.metrics import MetricContext, PolicyRun, evaluate_metrics
from repro.api.specs import ExperimentSpec, SweepSpec
from repro.core.results import RunResult
from repro.core.simulator import simulate
from repro.workload.base import generate_trace

# NOTE: repro.experiments.runner is imported lazily inside the functions that
# need it. The figure modules import this module at load time, so a top-level
# import here would cycle through the repro.experiments package __init__.

__all__ = [
    "ExperimentResult",
    "SpecReplicate",
    "resolve_series_labels",
    "run_experiment",
    "run_replicate",
    "run_sweep",
]


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one :func:`run_experiment` call.

    Attributes:
        spec: the executed spec (self-describing provenance).
        results: mapping policy label → full :class:`RunResult` ledger, in
            the spec's policy order.
        series: the spec's metrics evaluated over those ledgers (with the
            default ``total_cost`` metric: label → grand total).
    """

    spec: ExperimentSpec
    results: "Mapping[str, RunResult]"
    series: "Mapping[str, float]" = field(default_factory=dict)

    @property
    def total_costs(self) -> "dict[str, float]":
        """Grand total cost per policy label."""
        return {label: run.total_cost for label, run in self.results.items()}

    def to_figure_result(self) -> "FigureResult":
        """Render the metric series as a single-point :class:`FigureResult`."""
        from repro.experiments.runner import FigureResult

        series = self.series or self.total_costs
        return FigureResult(
            figure=self.spec.name or "experiment",
            title=f"{self.spec.scenario.kind} on {self.spec.topology.kind}",
            x_label="metric",
            x_values=("total cost",),
            series={name: (value,) for name, value in series.items()},
        )


def _simulate_spec(
    spec: ExperimentSpec, rng: np.random.Generator
) -> MetricContext:
    """Run every policy of ``spec`` and collect the full replicate context.

    The randomness contract (and thus bit-compatibility with the historical
    closure implementations): the substrate builds first, then one trace per
    *distinct* effective scenario in first-use order, then the policies
    simulate in declaration order — all from the single ``rng`` stream.
    Policies sharing an effective scenario share its trace.
    """
    substrate = spec.topology.build(rng)
    scenario_specs: list = []
    traces: list = []
    trace_of: list[int] = []
    for policy_spec in spec.policies:
        effective = policy_spec.scenario or spec.scenario
        for index, seen in enumerate(scenario_specs):
            if seen == effective:
                trace_of.append(index)
                break
        else:
            scenario_specs.append(effective)
            traces.append(
                generate_trace(effective.build(substrate), spec.horizon, rng)
            )
            trace_of.append(len(traces) - 1)

    runs: list[PolicyRun] = []
    taken: dict[str, bool] = {}
    for policy_spec, trace_index in zip(spec.policies, trace_of):
        policy = policy_spec.build()
        cost_spec = policy_spec.costs or spec.costs
        costs = cost_spec.to_cost_model()
        run = simulate(
            substrate,
            policy,
            traces[trace_index],
            costs,
            routing=spec.routing_strategy,
            seed=rng,
        )
        label = _series_label(policy_spec, policy, taken)
        taken[label] = True
        runs.append(
            PolicyRun(
                label=label,
                spec=policy_spec,
                run=run,
                trace=traces[trace_index],
                trace_index=trace_index,
                costs=costs,
                cost_spec=cost_spec,
                scenario=scenario_specs[trace_index],
            )
        )
    return MetricContext(spec=spec, substrate=substrate, runs=runs)


def run_replicate(
    spec: ExperimentSpec, rng: np.random.Generator
) -> "dict[str, float]":
    """One independent replicate of ``spec``: its metric series.

    This is the sweep-engine shape (``(x, rng) -> {series: value}`` minus
    the ``x``); :func:`run_sweep` fans it out per sweep point. With the
    default ``total_cost`` metric the output is the per-policy totals, as
    it always was.
    """
    context = _simulate_spec(spec, rng)
    return evaluate_metrics(context, spec.metrics)


def resolve_series_labels(spec: ExperimentSpec) -> "tuple[str, ...]":
    """Build each policy and return its series label, raising on collisions.

    Useful as a cheap pre-flight before a long sweep: it surfaces label
    collisions (and bad policy parameters) without simulating anything.
    Metric-derived series names depend on the simulated results and are
    validated at evaluation time instead.
    """
    taken: dict[str, bool] = {}
    for policy_spec in spec.policies:
        taken[_series_label(policy_spec, policy_spec.build(), taken)] = True
    return tuple(taken)


def _series_label(policy_spec, policy, taken) -> str:
    """The result key for one policy, guarding against silent collisions.

    Spec validation can only compare labels/kinds; two different kinds may
    still build policies reporting the same ``name`` (e.g. ``onbr`` and
    ``onbr-fixed``), which would overwrite each other's series.
    """
    label = policy_spec.label or policy.name
    if label in taken:
        raise ValueError(
            f"policies {sorted(p for p in taken)} + {policy_spec.kind!r} "
            f"collide on series label {label!r}; set PolicySpec.label to "
            "disambiguate"
        )
    return label


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute ``spec`` once (seeded by ``spec.seed``) keeping full ledgers."""
    rng = np.random.default_rng(spec.seed)
    context = _simulate_spec(spec, rng)
    return ExperimentResult(
        spec=spec,
        results={run.label: run.run for run in context.runs},
        series=evaluate_metrics(context, spec.metrics),
    )


class SpecReplicate:
    """The picklable replicate callable behind :func:`run_sweep`.

    Holds only the :class:`SweepSpec` (plain data), so a process-pool backend
    can ship it to workers on any start method; names re-resolve through the
    registries inside the worker.
    """

    def __init__(self, sweep: SweepSpec) -> None:
        self.sweep = sweep

    def __call__(self, x, rng: np.random.Generator) -> "dict[str, float]":
        return run_replicate(self.sweep.experiment_at(x), rng)

    def __repr__(self) -> str:
        return f"SpecReplicate({self.sweep.figure!r})"


def _normalize_shard(shard) -> "tuple[int, int] | None":
    """Validate a ``(index, count)`` shard selector; ``(0, 1)`` is a no-op."""
    if shard is None:
        return None
    try:
        index, count = (int(v) for v in shard)
    except (TypeError, ValueError):
        raise ValueError(
            f"shard must be an (index, count) pair, got {shard!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= index < count, got {shard!r}"
        )
    if count == 1:
        return None
    return (index, count)


def _display_x(spec: SweepSpec, result: "FigureResult") -> "FigureResult":
    """Map a coupled sweep's tuple x values to the primary component."""
    if not isinstance(spec.parameter, tuple):
        return result
    return replace(
        result, x_values=tuple(spec.display_x(x) for x in result.x_values)
    )


def run_sweep(
    spec: SweepSpec,
    backend: "ExecutionBackend | None" = None,
    cache: "ResultCache | None" = None,
    shard: "tuple[int, int] | None" = None,
    resume: bool = True,
) -> "FigureResult":
    """Run the sweep described by ``spec`` and aggregate a figure result.

    Args:
        spec: the declarative sweep.
        backend: where replicates execute; ``None`` = serial. Serial and
            parallel backends return identical results for the same spec.
        cache: optional :class:`~repro.api.cache.ResultCache`; a hit returns
            the stored result without simulating anything, a miss stores
            the freshly computed one. Safe because the spec is the complete
            input of the computation and results are backend-independent.
        shard: optional ``(index, count)`` with ``0 <= index < count``:
            compute only the sweep points whose index modulo ``count``
            equals ``index``, storing them into ``cache`` (required). N
            processes running the N shards of one spec into one shared
            cache directory fan a sweep out without coordinating; whichever
            process finds the cache complete assembles (and stores) the
            full figure. A shard that finishes while other shards' points
            are still missing returns a *partial* result restricted to the
            available points.
        resume: probe and fill per-point cache entries (the default). A
            sweep interrupted mid-run, or invalidated for a subset of
            points, re-simulates only the missing points on the next call.
            ``False`` restores all-or-nothing caching at the sweep level.

    Serial, process-pool and sharded execution are bit-identical: every
    task's child seed depends only on its position (see
    :func:`~repro.experiments.runner.spawn_tasks`), and aggregation is pure
    arithmetic over the per-replicate samples wherever they came from.
    """
    from repro.experiments.runner import (
        SeriesValidator,
        aggregate_samples,
        spawn_tasks,
        sweep_experiment,
    )

    shard = _normalize_shard(shard)
    if shard is not None and cache is None:
        raise ValueError(
            "sharded execution needs a shared cache: pass cache=ResultCache(...)"
        )
    if shard is not None and not resume:
        raise ValueError(
            "sharded execution requires resume=True: shards coordinate "
            "exclusively through per-point cache entries"
        )

    if cache is not None:
        cached = cache.load(spec)
        if cached is not None:
            return cached

    if cache is None or not resume:
        # All-or-nothing path: no per-point entries to probe or fill.
        result = _display_x(
            spec,
            sweep_experiment(
                figure=spec.figure,
                title=spec.resolved_title(),
                x_label=spec.resolved_x_label(),
                x_values=spec.values,
                replicate=SpecReplicate(spec),
                runs=spec.runs,
                seed=spec.seed,
                notes=spec.notes,
                backend=backend,
            ),
        )
        if cache is not None:
            cache.store(spec, result)
        return result

    # Resumable path: assemble the figure from cached points plus freshly
    # computed ones, storing each fresh point as soon as its replicates are
    # in — an interruption loses at most the points still in flight.
    x_values = list(spec.values)
    runs = spec.runs
    tasks = spawn_tasks(x_values, runs, spec.seed)
    point_specs = [spec.experiment_at(x) for x in x_values]

    samples: "list[Mapping[str, float] | None]" = [None] * len(tasks)
    missing: "list[int]" = []
    for i in range(len(x_values)):
        cached_point = cache.load_point(point_specs[i], spec.seed, i * runs, runs)
        if cached_point is not None:
            samples[i * runs : (i + 1) * runs] = cached_point
        else:
            missing.append(i)

    mine = [
        i for i in missing if shard is None or i % shard[1] == shard[0]
    ]
    if mine:
        if backend is None:
            backend = SerialBackend()
        validator = SeriesValidator(runs)
        pending = [tasks[i * runs + j] for i in mine for j in range(runs)]

        def commit(k: int, block) -> None:
            """Publish the k-th missing point: scatter + store immediately."""
            i = mine[k]
            samples[i * runs : (i + 1) * runs] = block
            cache.store_point(point_specs[i], spec.seed, i * runs, runs, block)

        # Commit each point from the result hook the moment its last
        # replicate lands (results arrive in task order), so a crash or
        # kill mid-batch loses at most the points still in flight — the
        # next run resumes from everything committed before the interrupt.
        hook_samples: "list[Mapping[str, float]]" = []

        def on_result(index, task, sample) -> None:
            validator(index, task, sample)
            hook_samples.append(sample)
            if len(hook_samples) % runs == 0:
                k = len(hook_samples) // runs - 1
                commit(k, hook_samples[k * runs :])

        fresh = backend.run_replicates(
            SpecReplicate(spec), pending, on_result=on_result
        )
        # Backstop for backends that ignored (or only partially drove) the
        # hook: validate and commit whatever the hook did not see.
        for index in range(len(hook_samples), len(pending)):
            validator(index, pending[index], fresh[index])
        for k in range(len(hook_samples) // runs, len(mine)):
            commit(k, fresh[k * runs : (k + 1) * runs])

    # Cached and fresh samples must agree on the series key set — a cached
    # point from an older metric line-up mixed with fresh ones would
    # otherwise aggregate into misaligned series.
    check = SeriesValidator(runs)
    for index, (task, sample) in enumerate(zip(tasks, samples)):
        if sample is not None:
            check(index, task, sample)

    complete = [
        i
        for i in range(len(x_values))
        if all(samples[i * runs + j] is not None for j in range(runs))
    ]
    if len(complete) < len(x_values):
        # Only reachable in shard mode: other shards' points are not in the
        # cache yet. Return what exists — callers fan shards out in parallel
        # and let any later full run assemble the complete figure.
        partial = aggregate_samples(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=[x_values[i] for i in complete],
            samples=[
                samples[i * runs + j] for i in complete for j in range(runs)
            ],
            runs=runs,
            notes=(
                f"partial: {len(complete)}/{len(x_values)} points "
                f"(shard {shard[0] + 1}/{shard[1]}); rerun unsharded to "
                "assemble"
            ),
        )
        return _display_x(spec, partial)

    result = _display_x(
        spec,
        aggregate_samples(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=x_values,
            samples=samples,
            runs=runs,
            notes=spec.notes,
        ),
    )
    cache.store(spec, result)
    return result
