"""Executing declarative specs: ``run_experiment`` and ``run_sweep``.

These are the two entry points the spec layer adds on top of
:func:`repro.core.simulator.simulate` and
:func:`repro.experiments.runner.sweep_experiment`:

* :func:`run_experiment` materialises one :class:`ExperimentSpec` — build
  the substrate, generate the trace, run every policy — and returns the full
  per-policy :class:`~repro.core.results.RunResult` ledgers.
* :func:`run_sweep` turns a :class:`SweepSpec` into a
  :class:`~repro.experiments.runner.FigureResult` via the sweep engine; pass
  an :class:`~repro.api.execution.ExecutionBackend` to parallelise the
  replicates (results are bit-identical across backends).

Randomness follows the figure-module convention: one generator drives
topology construction, trace generation and every policy's simulation in
declaration order, so a spec plus a seed pins the exact run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.execution import ExecutionBackend
from repro.api.specs import ExperimentSpec, SweepSpec
from repro.core.results import RunResult
from repro.core.simulator import simulate
from repro.workload.base import generate_trace

# NOTE: repro.experiments.runner is imported lazily inside the functions that
# need it. The figure modules import this module at load time, so a top-level
# import here would cycle through the repro.experiments package __init__.

__all__ = [
    "ExperimentResult",
    "SpecReplicate",
    "resolve_series_labels",
    "run_experiment",
    "run_replicate",
    "run_sweep",
]


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one :func:`run_experiment` call.

    Attributes:
        spec: the executed spec (self-describing provenance).
        results: mapping policy label → full :class:`RunResult` ledger, in
            the spec's policy order.
    """

    spec: ExperimentSpec
    results: "Mapping[str, RunResult]"

    @property
    def total_costs(self) -> "dict[str, float]":
        """Grand total cost per policy label."""
        return {label: run.total_cost for label, run in self.results.items()}

    def to_figure_result(self) -> "FigureResult":
        """Render the totals as a single-point :class:`FigureResult`."""
        from repro.experiments.runner import FigureResult

        return FigureResult(
            figure=self.spec.name or "experiment",
            title=f"{self.spec.scenario.kind} on {self.spec.topology.kind}",
            x_label="metric",
            x_values=("total cost",),
            series={label: (cost,) for label, cost in self.total_costs.items()},
        )


def _materialise(spec: ExperimentSpec, rng: np.random.Generator):
    """Build the concrete substrate, trace and cost model for one replicate."""
    substrate = spec.topology.build(rng)
    scenario = spec.scenario.build(substrate)
    trace = generate_trace(scenario, spec.horizon, rng)
    return substrate, trace, spec.costs.to_cost_model()


def run_replicate(
    spec: ExperimentSpec, rng: np.random.Generator
) -> "dict[str, float]":
    """One independent replicate of ``spec``: total cost per policy label.

    This is the sweep-engine shape (``(x, rng) -> {series: value}`` minus
    the ``x``); :func:`run_sweep` fans it out per sweep point.
    """
    substrate, trace, costs = _materialise(spec, rng)
    out: dict[str, float] = {}
    for policy_spec in spec.policies:
        policy = policy_spec.build()
        run = simulate(
            substrate,
            policy,
            trace,
            costs,
            routing=spec.routing_strategy,
            seed=rng,
        )
        out[_series_label(policy_spec, policy, out)] = run.total_cost
    return out


def resolve_series_labels(spec: ExperimentSpec) -> "tuple[str, ...]":
    """Build each policy and return its series label, raising on collisions.

    Useful as a cheap pre-flight before a long sweep: it surfaces label
    collisions (and bad policy parameters) without simulating anything.
    """
    taken: dict[str, bool] = {}
    for policy_spec in spec.policies:
        taken[_series_label(policy_spec, policy_spec.build(), taken)] = True
    return tuple(taken)


def _series_label(policy_spec, policy, taken) -> str:
    """The result key for one policy, guarding against silent collisions.

    Spec validation can only compare labels/kinds; two different kinds may
    still build policies reporting the same ``name`` (e.g. ``onbr`` and
    ``onbr-fixed``), which would overwrite each other's series.
    """
    label = policy_spec.label or policy.name
    if label in taken:
        raise ValueError(
            f"policies {sorted(p for p in taken)} + {policy_spec.kind!r} "
            f"collide on series label {label!r}; set PolicySpec.label to "
            "disambiguate"
        )
    return label


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute ``spec`` once (seeded by ``spec.seed``) keeping full ledgers."""
    rng = np.random.default_rng(spec.seed)
    substrate, trace, costs = _materialise(spec, rng)
    results: dict[str, RunResult] = {}
    for policy_spec in spec.policies:
        policy = policy_spec.build()
        run = simulate(
            substrate,
            policy,
            trace,
            costs,
            routing=spec.routing_strategy,
            seed=rng,
        )
        results[_series_label(policy_spec, policy, results)] = run
    return ExperimentResult(spec=spec, results=results)


class SpecReplicate:
    """The picklable replicate callable behind :func:`run_sweep`.

    Holds only the :class:`SweepSpec` (plain data), so a process-pool backend
    can ship it to workers on any start method; names re-resolve through the
    registries inside the worker.
    """

    def __init__(self, sweep: SweepSpec) -> None:
        self.sweep = sweep

    def __call__(self, x, rng: np.random.Generator) -> "dict[str, float]":
        return run_replicate(self.sweep.experiment_at(x), rng)

    def __repr__(self) -> str:
        return f"SpecReplicate({self.sweep.figure!r})"


def run_sweep(
    spec: SweepSpec, backend: "ExecutionBackend | None" = None
) -> "FigureResult":
    """Run the sweep described by ``spec`` and aggregate a figure result.

    Args:
        spec: the declarative sweep.
        backend: where replicates execute; ``None`` = serial. Serial and
            parallel backends return identical results for the same spec.
    """
    from repro.experiments.runner import sweep_experiment

    return sweep_experiment(
        figure=spec.figure,
        title=spec.resolved_title(),
        x_label=spec.resolved_x_label(),
        x_values=spec.values,
        replicate=SpecReplicate(spec),
        runs=spec.runs,
        seed=spec.seed,
        notes=spec.notes,
        backend=backend,
    )
