"""Executing declarative specs: ``run_experiment`` and ``run_sweep``.

These are the two entry points the spec layer adds on top of
:func:`repro.core.simulator.simulate` and
:func:`repro.experiments.runner.sweep_experiment`:

* :func:`run_experiment` materialises one :class:`ExperimentSpec` — build
  the substrate, generate the trace(s), run every policy — and returns the
  full per-policy :class:`~repro.core.results.RunResult` ledgers plus the
  spec's evaluated metric series.
* :func:`run_sweep` turns a :class:`SweepSpec` into a
  :class:`~repro.experiments.runner.FigureResult` via the sweep engine; pass
  an :class:`~repro.api.execution.ExecutionBackend` to parallelise the
  replicates (results are bit-identical across backends) and a
  :class:`~repro.api.cache.ResultCache` to memoize results on disk — whole
  sweeps *and* individual sweep points, so an interrupted or partially
  invalidated sweep resumes instead of restarting, and ``shard=(i, n)``
  lets N independent processes fill disjoint points of one shared cache.

Randomness follows the figure-module convention: one generator drives
topology construction, trace generation and every policy's simulation in
declaration order, so a spec plus a seed pins the exact run. With
per-policy scenario overrides, all distinct traces are generated (in
first-use order) *before* any policy simulates — the order the paper's
multi-scenario comparisons always used — and metrics evaluate strictly
after the last simulation without consuming any randomness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import t_critical
from repro.api.execution import ExecutionBackend, ReplicateTask, SerialBackend
from repro.api.metrics import MetricContext, PolicyRun, evaluate_metrics
from repro.api.specs import (
    ComparisonSpec,
    ExperimentSpec,
    ReplicationSpec,
    SweepSpec,
)
from repro.core.batch import DistanceGather, simulate_batched
from repro.core.results import RunResult
from repro.workload.base import generate_trace

# NOTE: repro.experiments.runner is imported lazily inside the functions that
# need it. The figure modules import this module at load time, so a top-level
# import here would cycle through the repro.experiments package __init__.

__all__ = [
    "ExperimentResult",
    "SpecReplicate",
    "capture_sweeps",
    "collect_point_samples",
    "refine_sweep",
    "resolve_series_labels",
    "run_experiment",
    "run_replicate",
    "run_sweep",
]


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one :func:`run_experiment` call.

    Attributes:
        spec: the executed spec (self-describing provenance).
        results: mapping policy label → full :class:`RunResult` ledger, in
            the spec's policy order.
        series: the spec's metrics evaluated over those ledgers (with the
            default ``total_cost`` metric: label → grand total).
    """

    spec: ExperimentSpec
    results: "Mapping[str, RunResult]"
    series: "Mapping[str, float]" = field(default_factory=dict)

    @property
    def total_costs(self) -> "dict[str, float]":
        """Grand total cost per policy label."""
        return {label: run.total_cost for label, run in self.results.items()}

    def to_figure_result(self) -> "FigureResult":
        """Render the metric series as a single-point :class:`FigureResult`."""
        from repro.experiments.runner import FigureResult

        series = self.series or self.total_costs
        return FigureResult(
            figure=self.spec.name or "experiment",
            title=f"{self.spec.scenario.kind} on {self.spec.topology.kind}",
            x_label="metric",
            x_values=("total cost",),
            series={name: (value,) for name, value in series.items()},
        )


def _simulate_spec(
    spec: ExperimentSpec, rng: np.random.Generator
) -> MetricContext:
    """Run every policy of ``spec`` and collect the full replicate context.

    The randomness contract (and thus bit-compatibility with the historical
    closure implementations): the substrate builds first, then one trace per
    *distinct* effective scenario in first-use order, then the policies
    simulate in declaration order — all from the single ``rng`` stream.
    Policies sharing an effective scenario share its trace.
    """
    substrate = spec.topology.build(rng)
    scenario_specs: list = []
    traces: list = []
    trace_of: list[int] = []
    for policy_spec in spec.policies:
        effective = policy_spec.scenario or spec.scenario
        for index, seen in enumerate(scenario_specs):
            if seen == effective:
                trace_of.append(index)
                break
        else:
            scenario_specs.append(effective)
            traces.append(
                generate_trace(effective.build(substrate), spec.horizon, rng)
            )
            trace_of.append(len(traces) - 1)

    runs: list[PolicyRun] = []
    taken: dict[str, bool] = {}
    # One CostModel per distinct cost spec and one DistanceGather per
    # (trace, cost model): policies sharing both (the common case — e.g.
    # the online trio of the size sweeps) then share the gathered distance
    # columns and the epoch-evaluation memo of the batched path. CostModel
    # is immutable, so sharing one instance cannot change any result.
    cost_models: list = []
    gathers: dict[tuple[int, int], DistanceGather] = {}
    for policy_spec, trace_index in zip(spec.policies, trace_of):
        policy = policy_spec.build()
        cost_spec = policy_spec.costs or spec.costs
        for seen, model in cost_models:
            if seen is cost_spec:
                costs = model
                break
        else:
            costs = cost_spec.to_cost_model()
            cost_models.append((cost_spec, costs))
        gather_key = (trace_index, id(costs))
        gather = gathers.get(gather_key)
        if gather is None:
            gather = DistanceGather(substrate, costs, traces[trace_index])
            gathers[gather_key] = gather
        run = simulate_batched(
            substrate,
            policy,
            traces[trace_index],
            costs,
            routing=spec.routing_strategy,
            seed=rng,
            gather=gather,
        )
        label = _series_label(policy_spec, policy, taken)
        taken[label] = True
        runs.append(
            PolicyRun(
                label=label,
                spec=policy_spec,
                run=run,
                trace=traces[trace_index],
                trace_index=trace_index,
                costs=costs,
                cost_spec=cost_spec,
                scenario=scenario_specs[trace_index],
            )
        )
    return MetricContext(spec=spec, substrate=substrate, runs=runs)


def run_replicate(
    spec: ExperimentSpec, rng: np.random.Generator
) -> "dict[str, float]":
    """One independent replicate of ``spec``: its metric series.

    This is the sweep-engine shape (``(x, rng) -> {series: value}`` minus
    the ``x``); :func:`run_sweep` fans it out per sweep point. With the
    default ``total_cost`` metric the output is the per-policy totals, as
    it always was.
    """
    context = _simulate_spec(spec, rng)
    return evaluate_metrics(context, spec.metrics)


def resolve_series_labels(spec: ExperimentSpec) -> "tuple[str, ...]":
    """Build each policy and return its series label, raising on collisions.

    Useful as a cheap pre-flight before a long sweep: it surfaces label
    collisions (and bad policy parameters) without simulating anything.
    Metric-derived series names depend on the simulated results and are
    validated at evaluation time instead.
    """
    taken: dict[str, bool] = {}
    for policy_spec in spec.policies:
        taken[_series_label(policy_spec, policy_spec.build(), taken)] = True
    return tuple(taken)


def _series_label(policy_spec, policy, taken) -> str:
    """The result key for one policy, guarding against silent collisions.

    Spec validation can only compare labels/kinds; two different kinds may
    still build policies reporting the same ``name`` (e.g. ``onbr`` and
    ``onbr-fixed``), which would overwrite each other's series.
    """
    label = policy_spec.label or policy.name
    if label in taken:
        raise ValueError(
            f"policies {sorted(p for p in taken)} + {policy_spec.kind!r} "
            f"collide on series label {label!r}; set PolicySpec.label to "
            "disambiguate"
        )
    return label


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute ``spec`` once (seeded by ``spec.seed``) keeping full ledgers."""
    rng = np.random.default_rng(spec.seed)
    context = _simulate_spec(spec, rng)
    return ExperimentResult(
        spec=spec,
        results={run.label: run.run for run in context.runs},
        series=evaluate_metrics(context, spec.metrics),
    )


class SpecReplicate:
    """The picklable replicate callable behind :func:`run_sweep`.

    Holds only the :class:`SweepSpec` (plain data), so a process-pool backend
    can ship it to workers on any start method; names re-resolve through the
    registries inside the worker.
    """

    def __init__(self, sweep: SweepSpec) -> None:
        self.sweep = sweep

    def __call__(self, x, rng: np.random.Generator) -> "dict[str, float]":
        return run_replicate(self.sweep.experiment_at(x), rng)

    def __repr__(self) -> str:
        return f"SpecReplicate({self.sweep.figure!r})"


def _normalize_shard(shard) -> "tuple[int, int] | None":
    """Validate a ``(index, count)`` shard selector; ``(0, 1)`` is a no-op."""
    if shard is None:
        return None
    try:
        index, count = (int(v) for v in shard)
    except (TypeError, ValueError):
        raise ValueError(
            f"shard must be an (index, count) pair, got {shard!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard index must satisfy 0 <= index < count, got {shard!r}"
        )
    if count == 1:
        return None
    return (index, count)


def _display_x(spec: SweepSpec, result: "FigureResult") -> "FigureResult":
    """Map a coupled sweep's tuple x values to the primary component."""
    if not isinstance(spec.parameter, tuple):
        return result
    return replace(
        result, x_values=tuple(spec.display_x(x) for x in result.x_values)
    )


#: Active :func:`capture_sweeps` recorders (innermost last). Every completed
#: :func:`run_sweep` appends its ``(spec, result)`` to each active recorder.
_SWEEP_OBSERVERS: "list[list]" = []


@contextmanager
def capture_sweeps():
    """Record every ``(spec, result)`` :func:`run_sweep` completes.

    Figure functions build their :class:`SweepSpec` internally and return
    only the :class:`FigureResult`; tooling that needs the *spec* that
    actually ran — the ``report`` subcommand bundling reproducible spec
    JSONs, provenance captured next to a result — wraps the call::

        with capture_sweeps() as captured:
            fig03()
        (spec, result), = captured

    The captured spec is the effective one (``replication``/``comparison``
    overrides applied), so its cache key matches the entry the run wrote.
    Recording is additive and observer-transparent: results are returned
    unchanged, nested captures each see the sweeps run inside their block.
    """
    captured: "list[tuple[SweepSpec, FigureResult]]" = []
    _SWEEP_OBSERVERS.append(captured)
    try:
        yield captured
    finally:
        _SWEEP_OBSERVERS.remove(captured)


def _record_sweep(spec: SweepSpec, result: "FigureResult") -> None:
    for captured in _SWEEP_OBSERVERS:
        captured.append((spec, result))


def run_sweep(
    spec: SweepSpec,
    backend: "ExecutionBackend | None" = None,
    cache: "ResultCache | None" = None,
    shard: "tuple[int, int] | None" = None,
    resume: bool = True,
    replication: "ReplicationSpec | None" = None,
    comparison: "ComparisonSpec | None" = None,
) -> "FigureResult":
    """Run the sweep described by ``spec`` and aggregate a figure result.

    Args:
        spec: the declarative sweep.
        backend: where replicates execute; ``None`` = serial. Serial and
            parallel backends return identical results for the same spec.
        cache: optional :class:`~repro.api.cache.ResultCache`; a hit returns
            the stored result without simulating anything, a miss stores
            the freshly computed one. Safe because the spec is the complete
            input of the computation and results are backend-independent.
        shard: optional ``(index, count)`` with ``0 <= index < count``:
            compute only the sweep points whose index modulo ``count``
            equals ``index``, storing them into ``cache`` (required). N
            processes running the N shards of one spec into one shared
            cache directory fan a sweep out without coordinating; whichever
            process finds the cache complete assembles (and stores) the
            full figure. A shard that finishes while other shards' points
            are still missing returns a *partial* result restricted to the
            available points.
        resume: probe and fill per-point cache entries (the default). A
            sweep interrupted mid-run, or invalidated for a subset of
            points, re-simulates only the missing points on the next call.
            ``False`` restores all-or-nothing caching at the sweep level.
        replication: convenience override for
            :attr:`~repro.api.specs.SweepSpec.replication` — the spec is
            replaced with this :class:`ReplicationSpec` (or spec dict)
            before anything runs, so figure functions can thread a CLI
            replication request through without rebuilding their specs.
        comparison: the same convenience override for
            :attr:`~repro.api.specs.SweepSpec.comparison` — attach paired
            contrast-vs-baseline payloads (a :class:`ComparisonSpec` or
            spec dict) without rebuilding the spec.

    With a replication spec requesting confidence intervals
    (``ci_level > 0``), the result carries per-point CI bounds and
    replicate counts; a ``target_halfwidth`` additionally turns the sweep
    adaptive — points top up replicates (cache-first, through the same
    backend/shard machinery) until their CIs meet the target or hit
    ``max_runs``. Without a replication spec the behaviour — and the
    result, bit for bit — is the historical fixed-``runs`` sweep.

    With a comparison spec the result additionally carries paired
    contrast-vs-baseline payloads computed from the very same replicate
    samples — marginal series, seeds and point cache entries are untouched
    — and an *adaptive* sweep stops topping a point up once every paired
    interval at the point meets the target (the comparison's own
    ``target_halfwidth`` when set, else the replication one), instead of
    every marginal interval. Policies sharing each replicate's trace make
    the paired intervals tighten much faster than the marginal ones, so
    paired adaptive sweeps settle the same orderings with fewer simulated
    replicates.

    Serial, process-pool and sharded execution are bit-identical: every
    task's child seed depends only on its position (see
    :func:`~repro.experiments.runner.spawn_tasks` and
    :func:`~repro.experiments.runner.spawn_point_extension_tasks`), and
    aggregation is pure arithmetic over the per-replicate samples wherever
    they came from.
    """
    if replication is not None:
        if not isinstance(replication, ReplicationSpec):
            replication = ReplicationSpec.from_dict(replication)
        spec = replace(spec, replication=replication)
    if comparison is not None:
        if not isinstance(comparison, ComparisonSpec):
            comparison = ComparisonSpec.from_dict(comparison)
        spec = replace(spec, comparison=comparison)

    result = _execute_sweep(spec, backend, cache, shard, resume)
    _record_sweep(spec, result)
    return result


def _execute_sweep(
    spec: SweepSpec,
    backend: "ExecutionBackend | None",
    cache: "ResultCache | None",
    shard: "tuple[int, int] | None",
    resume: bool,
) -> "FigureResult":
    """:func:`run_sweep` after spec normalization (observer-transparent)."""
    from repro.experiments.runner import (
        SeriesValidator,
        aggregate_samples,
        spawn_tasks,
        sweep_experiment,
    )

    shard = _normalize_shard(shard)
    if shard is not None and cache is None:
        raise ValueError(
            "sharded execution needs a shared cache: pass cache=ResultCache(...)"
        )
    if shard is not None and not resume:
        raise ValueError(
            "sharded execution requires resume=True: shards coordinate "
            "exclusively through per-point cache entries"
        )

    if cache is not None:
        cached = cache.load(spec)
        if cached is not None:
            return cached

    if spec.replication is not None and spec.replication.ci_level > 0:
        # Confidence-aware path: per-point CI annotations and (with a
        # target) adaptive replication. A replication spec with
        # ci_level=0 is a pure runs override and stays on the plain
        # paths below, whose output is bit-identical to a fixed-runs
        # sweep.
        return _run_confidence_sweep(spec, backend, cache, shard, resume)

    runs = spec.effective_runs
    if cache is None or not resume:
        # All-or-nothing path: no per-point entries to probe or fill.
        result = _display_x(
            spec,
            sweep_experiment(
                figure=spec.figure,
                title=spec.resolved_title(),
                x_label=spec.resolved_x_label(),
                x_values=spec.values,
                replicate=SpecReplicate(spec),
                runs=runs,
                seed=spec.seed,
                notes=spec.notes,
                backend=backend,
                comparison=spec.comparison,
            ),
        )
        if cache is not None:
            cache.store(spec, result)
        return result

    # Resumable path: assemble the figure from cached points plus freshly
    # computed ones, storing each fresh point as soon as its replicates are
    # in — an interruption loses at most the points still in flight.
    x_values = list(spec.values)
    tasks = spawn_tasks(x_values, runs, spec.seed)
    point_specs = [spec.experiment_at(x) for x in x_values]

    samples: "list[Mapping[str, float] | None]" = [None] * len(tasks)
    missing: "list[int]" = []
    for i in range(len(x_values)):
        cached_point = cache.load_point(point_specs[i], spec.seed, i * runs, runs)
        if cached_point is not None:
            samples[i * runs : (i + 1) * runs] = cached_point
        else:
            missing.append(i)

    mine = [
        i for i in missing if shard is None or i % shard[1] == shard[0]
    ]
    if mine:
        if backend is None:
            backend = SerialBackend()
        validator = SeriesValidator(runs)
        pending = [tasks[i * runs + j] for i in mine for j in range(runs)]

        def commit(k: int, block) -> None:
            """Publish the k-th missing point: scatter + store immediately."""
            i = mine[k]
            samples[i * runs : (i + 1) * runs] = block
            cache.store_point(point_specs[i], spec.seed, i * runs, runs, block)

        # Commit each point from the result hook the moment its last
        # replicate lands (results arrive in task order), so a crash or
        # kill mid-batch loses at most the points still in flight — the
        # next run resumes from everything committed before the interrupt.
        hook_samples: "list[Mapping[str, float]]" = []

        def on_result(index, task, sample) -> None:
            validator(index, task, sample)
            hook_samples.append(sample)
            if len(hook_samples) % runs == 0:
                k = len(hook_samples) // runs - 1
                commit(k, hook_samples[k * runs :])

        fresh = backend.run_replicates(
            SpecReplicate(spec), pending, on_result=on_result
        )
        # Backstop for backends that ignored (or only partially drove) the
        # hook: validate and commit whatever the hook did not see.
        for index in range(len(hook_samples), len(pending)):
            validator(index, pending[index], fresh[index])
        for k in range(len(hook_samples) // runs, len(mine)):
            commit(k, fresh[k * runs : (k + 1) * runs])

    # Cached and fresh samples must agree on the series key set — a cached
    # point from an older metric line-up mixed with fresh ones would
    # otherwise aggregate into misaligned series.
    check = SeriesValidator(runs)
    for index, (task, sample) in enumerate(zip(tasks, samples)):
        if sample is not None:
            check(index, task, sample)

    complete = [
        i
        for i in range(len(x_values))
        if all(samples[i * runs + j] is not None for j in range(runs))
    ]
    if len(complete) < len(x_values):
        # Only reachable in shard mode: other shards' points are not in the
        # cache yet. Return what exists — callers fan shards out in parallel
        # and let any later full run assemble the complete figure.
        partial = aggregate_samples(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=[x_values[i] for i in complete],
            samples=[
                samples[i * runs + j] for i in complete for j in range(runs)
            ],
            runs=runs,
            notes=(
                f"partial: {len(complete)}/{len(x_values)} points "
                f"(shard {shard[0] + 1}/{shard[1]}); rerun unsharded to "
                "assemble"
            ),
            comparison=spec.comparison,
        )
        return _display_x(spec, partial)

    result = _display_x(
        spec,
        aggregate_samples(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=x_values,
            samples=samples,
            runs=runs,
            notes=spec.notes,
            comparison=spec.comparison,
        ),
    )
    cache.store(spec, result)
    return result


def collect_point_samples(
    spec: SweepSpec,
    backend: "ExecutionBackend | None" = None,
    cache: "ResultCache | None" = None,
    resume: bool = True,
) -> "list[list[Mapping[str, float]]]":
    """The raw initial replicate block behind every sweep point.

    Returns, per sweep point, the point's first ``spec.effective_runs``
    replicate samples (``{series: value}`` dicts) — the same blocks
    :func:`run_sweep` simulates in its first phase, with the same flat
    seeds and the same per-point cache entries, so a call over the cache
    of a completed sweep loads everything and simulates nothing. Missing
    blocks are simulated (and stored, when ``cache`` and ``resume`` allow)
    so the result is always complete.

    This is the sample-level feed of
    :func:`repro.analysis.stats.comparison_matrix`: every-vs-every paired
    comparisons need the aligned per-replicate values, which an aggregated
    :class:`FigureResult` no longer carries.
    """
    from repro.experiments.runner import SeriesValidator, spawn_tasks

    runs = spec.effective_runs
    x_values = list(spec.values)
    point_specs = [spec.experiment_at(x) for x in x_values]
    use_points = cache is not None and resume

    samples: "list[list[Mapping[str, float]] | None]" = [None] * len(x_values)
    pending: "list[int]" = []
    for i in range(len(x_values)):
        block = (
            cache.load_point(point_specs[i], spec.seed, i * runs, runs)
            if use_points
            else None
        )
        if block is not None:
            samples[i] = list(block)
        else:
            pending.append(i)

    if pending:
        if backend is None:
            backend = SerialBackend()
        tasks = spawn_tasks(x_values, runs, spec.seed)

        def point_commit(i: int):
            def commit(block) -> None:
                samples[i] = list(block)
                if use_points:
                    cache.store_point(
                        point_specs[i], spec.seed, i * runs, runs, block
                    )

            return commit

        _run_batched(
            backend,
            SpecReplicate(spec),
            [
                (tasks[i * runs : (i + 1) * runs], point_commit(i))
                for i in pending
            ],
            SeriesValidator(runs),
        )
    return samples


def _run_batched(backend, replicate, spans, validator) -> None:
    """Run several task blocks as one backend batch, committing per block.

    ``spans`` is a list of ``(tasks, commit)`` pairs; ``commit(block)`` is
    invoked with a block's samples the moment its last replicate lands
    (results arrive in task order), so a crash mid-batch loses at most the
    blocks still in flight. Backends that ignore (or only partially drive)
    the result hook are backstopped from the returned list.
    """
    tasks = [task for block_tasks, _commit in spans for task in block_tasks]
    bounds = [0]
    for block_tasks, _commit in spans:
        bounds.append(bounds[-1] + len(block_tasks))

    seen: "list[Mapping[str, float]]" = []
    committed = 0

    def on_result(index, task, sample) -> None:
        nonlocal committed
        validator(index, task, sample)
        seen.append(sample)
        while committed < len(spans) and len(seen) >= bounds[committed + 1]:
            spans[committed][1](seen[bounds[committed] : bounds[committed + 1]])
            committed += 1

    results = backend.run_replicates(replicate, tasks, on_result=on_result)
    for index in range(len(seen), len(tasks)):
        validator(index, tasks[index], results[index])
    for k in range(committed, len(spans)):
        spans[k][1](results[bounds[k] : bounds[k + 1]])


def _run_confidence_sweep(
    spec: SweepSpec,
    backend: "ExecutionBackend | None",
    cache: "ResultCache | None",
    shard: "tuple[int, int] | None",
    resume: bool,
) -> "FigureResult":
    """The confidence-aware sweep engine behind :func:`run_sweep`.

    Phase 1 materialises every point's *initial* replicate block exactly
    like the plain resumable path — same flat task seeds, same point cache
    entries, so blocks cached by replication-unaware sweeps (or written
    before replication existed) are reused as-is. Phase 2, only under an
    adaptive replication spec, tops needy points up batch by batch:
    cache-first (point-extension entries), then the marginal seeds through
    the backend. The schedule at a point depends only on that point's
    samples, so shards never coordinate and serial, pooled and sharded
    execution stay bit-identical.
    """
    from repro.experiments.runner import (
        SeriesValidator,
        aggregate_point_summaries,
        point_meets_target,
        spawn_point_extension_tasks,
        spawn_tasks,
    )

    rep = spec.replication
    runs = spec.effective_runs
    if rep.adaptive and rep.max_runs < runs:
        raise ValueError(
            f"ReplicationSpec.max_runs ({rep.max_runs}) is below the "
            f"initial replicate count ({runs})"
        )
    if backend is None:
        backend = SerialBackend()
    x_values = list(spec.values)
    n_points = len(x_values)
    point_specs = [spec.experiment_at(x) for x in x_values]
    replicate = SpecReplicate(spec)
    validator = SeriesValidator(runs)
    use_points = cache is not None and resume

    def is_mine(i: int) -> bool:
        return shard is None or i % shard[1] == shard[0]

    # -- phase 1: initial blocks (flat seeds, plain point entries) ----------
    samples: "list[list[Mapping[str, float]] | None]" = [None] * n_points
    pending_initial: "list[int]" = []
    for i in range(n_points):
        block = (
            cache.load_point(point_specs[i], spec.seed, i * runs, runs)
            if use_points
            else None
        )
        if block is not None:
            samples[i] = list(block)
        elif is_mine(i):
            pending_initial.append(i)

    if pending_initial:
        tasks = spawn_tasks(x_values, runs, spec.seed)

        def initial_commit(i: int):
            def commit(block) -> None:
                samples[i] = list(block)
                if use_points:
                    cache.store_point(
                        point_specs[i], spec.seed, i * runs, runs, block
                    )

            return commit

        _run_batched(
            backend,
            replicate,
            [
                (tasks[i * runs : (i + 1) * runs], initial_commit(i))
                for i in pending_initial
            ],
            validator,
        )

    # -- phase 2: adaptive top-ups ------------------------------------------
    incomplete = {i for i in range(n_points) if samples[i] is None}
    if rep.adaptive:
        batch = rep.batch_size(spec.runs)
        # A point leaves `open_points` once it is terminal — target met,
        # max_runs reached, or owned by an unfinished other shard. Its
        # samples can never change after that, so re-running the CI check
        # (a full bootstrap per series under method="bootstrap") every
        # round for settled points would be pure waste.
        open_points = [i for i in range(n_points) if i not in incomplete]
        while open_points:
            spans = []
            progressed = False
            still_open = []
            for i in open_points:
                have = len(samples[i])
                if have >= rep.max_runs or point_meets_target(
                    samples[i], rep, spec.comparison
                ):
                    continue
                size = min(batch, rep.max_runs - have)
                block = (
                    cache.load_point_extension(
                        point_specs[i], spec.seed, i, have, size
                    )
                    if use_points
                    else None
                )
                if block is not None:
                    samples[i].extend(block)
                    progressed = True
                    still_open.append(i)
                elif is_mine(i):

                    def extension_commit(i=i, have=have, size=size):
                        def commit(block) -> None:
                            if use_points:
                                cache.store_point_extension(
                                    point_specs[i], spec.seed, i, have, size,
                                    block,
                                )
                            samples[i].extend(block)

                        return commit

                    spans.append(
                        (
                            spawn_point_extension_tasks(
                                x_values[i], i, have, size, spec.seed
                            ),
                            extension_commit(),
                        )
                    )
                    still_open.append(i)
                else:
                    # Another shard owns this point and has not finished
                    # its top-ups yet; leave it to them.
                    incomplete.add(i)
            open_points = still_open
            if spans:
                _run_batched(backend, replicate, spans, validator)
                progressed = True
            if not progressed:
                break

    # Cached and fresh samples must agree on the series key set — a cached
    # block from an older metric line-up mixed with fresh ones would
    # otherwise aggregate into misaligned series.
    check = SeriesValidator(runs)
    index = 0
    for i in range(n_points):
        for sample in samples[i] or ():
            check(index, ReplicateTask(x=x_values[i], seed=None), sample)
            index += 1

    complete = [i for i in range(n_points) if i not in incomplete]
    if len(complete) < n_points:
        # Only reachable in shard mode: other shards' points are missing
        # or mid-top-up. Return what is finished — callers fan shards out
        # in parallel and let any later full run assemble the figure.
        partial = aggregate_point_summaries(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=[x_values[i] for i in complete],
            point_samples=[samples[i] for i in complete],
            ci_level=rep.ci_level,
            method=rep.method,
            notes=(
                f"partial: {len(complete)}/{n_points} points "
                f"(shard {shard[0] + 1}/{shard[1]}); rerun unsharded to "
                "assemble"
            ),
            comparison=spec.comparison,
        )
        return _display_x(spec, partial)

    result = _display_x(
        spec,
        aggregate_point_summaries(
            figure=spec.figure,
            title=spec.resolved_title(),
            x_label=spec.resolved_x_label(),
            x_values=x_values,
            point_samples=samples,
            ci_level=rep.ci_level,
            method=rep.method,
            notes=spec.notes,
            comparison=spec.comparison,
        ),
    )
    if cache is not None:
        cache.store(spec, result)
    return result


# ---------------------------------------------------------------------------
# Grid refinement: bisect where confidence intervals leave orderings open
# ---------------------------------------------------------------------------


def _series_halfwidths(
    result: "FigureResult", spec: SweepSpec, level: float
) -> "dict[str, tuple]":
    """Per-series, per-point CI halfwidths of ``result``.

    Stored CI bounds are used when present — they already carry the CI
    method the spec's :class:`ReplicationSpec` declared (Student-t or BCa
    bootstrap), so no estimator is re-imposed here. Only a plain sweep
    with no CI annotations at all falls back to deriving halfwidths from
    the standard errors with a Student-t critical value at ``level``
    (every point of a plain sweep has ``spec.effective_runs`` replicates;
    stderr admits no bootstrap, so Student-t is the only estimator
    available to the fallback).
    """
    if result.has_confidence:
        return {
            name: tuple((high - low) / 2.0 for low, high in result.ci[name])
            for name in result.series_names
        }
    runs = spec.effective_runs
    if runs < 2:
        raise ValueError(
            "grid refinement needs interval estimates: run the sweep with "
            "runs >= 2 (or a ReplicationSpec) so per-point CIs exist"
        )
    critical = t_critical(level, runs - 1)
    zeros = (0.0,) * len(result.x_values)
    return {
        name: tuple(
            critical * e for e in result.errors.get(name, zeros)
        )
        for name in result.series_names
    }


def _ambiguous_intervals(
    result: "FigureResult", halfwidths: "Mapping[str, tuple]"
) -> "list[tuple]":
    """Adjacent x intervals whose policy ordering the CIs leave open.

    For every adjacent pair of sweep points (in x order) and every pair of
    series, the ordering is *settled* over the interval iff the two
    series' CIs are disjoint at both endpoints with the same sign of the
    difference. Any unsettled pair — overlapping CIs at either endpoint,
    or a sign flip (a crossing) between them — marks the interval for
    bisection. Intervals are returned in x order.
    """
    names = result.series_names
    xs = result.x_values
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    intervals = []
    for position in range(len(order) - 1):
        k0, k1 = order[position], order[position + 1]
        ambiguous = False
        for a_index in range(len(names)):
            for b_index in range(a_index + 1, len(names)):
                a, b = names[a_index], names[b_index]
                d0 = result.series[a][k0] - result.series[b][k0]
                d1 = result.series[a][k1] - result.series[b][k1]
                separated0 = abs(d0) > halfwidths[a][k0] + halfwidths[b][k0]
                separated1 = abs(d1) > halfwidths[a][k1] + halfwidths[b][k1]
                if not (separated0 and separated1 and (d0 > 0) == (d1 > 0)):
                    ambiguous = True
                    break
            if ambiguous:
                break
        if ambiguous:
            intervals.append((xs[k0], xs[k1]))
    return intervals


def _paired_ambiguous_intervals(result: "FigureResult") -> "list[tuple]":
    """Adjacent x intervals whose *paired* CIs leave an ordering open.

    The comparison-aware twin of :func:`_ambiguous_intervals`: for every
    adjacent pair of sweep points (in x order) and every attached paired
    comparison, the contrast-vs-baseline ordering is *settled* over the
    interval iff the paired CI excludes its null (0 for differences, 1
    for ratios) at both endpoints with the paired mean on the same side
    of the null. A paired CI straddling the null at either endpoint, or
    the paired mean crossing the null between the endpoints (the
    contrast's cost curve crosses the baseline's), marks the interval for
    bisection. The stored paired bounds were computed with the
    :class:`ComparisonSpec`'s own CI method and level — Student-t or BCa
    bootstrap — so that choice threads through unchanged.
    """
    xs = result.x_values
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    intervals = []
    for position in range(len(order) - 1):
        k0, k1 = order[position], order[position + 1]
        ambiguous = False
        for comparison in result.comparisons:
            null = comparison.null
            low0, high0 = comparison.ci[k0]
            low1, high1 = comparison.ci[k1]
            straddles = low0 <= null <= high0 or low1 <= null <= high1
            flips = (comparison.values[k0] > null) != (
                comparison.values[k1] > null
            )
            if straddles or flips:
                ambiguous = True
                break
        if ambiguous:
            intervals.append((xs[k0], xs[k1]))
    return intervals


def _midpoint(x0, x1, min_spacing: "float | None"):
    """The bisection point of ``[x0, x1]``, or ``None`` if too narrow.

    Integer endpoints bisect to an integer (sweep parameters like network
    size or λ are integral); a gap of < 2 cannot be bisected. Float
    endpoints bisect arithmetically. ``min_spacing`` skips intervals at or
    below that width.
    """
    if min_spacing is not None and abs(x1 - x0) <= min_spacing:
        return None
    if isinstance(x0, int) and isinstance(x1, int):
        if abs(x1 - x0) < 2:
            return None
        return (x0 + x1) // 2
    mid = (x0 + x1) / 2.0
    if mid == x0 or mid == x1:
        return None
    return mid


def _sorted_by_x(result: "FigureResult") -> "FigureResult":
    """``result`` with its points reordered by ascending x value."""
    order = sorted(range(len(result.x_values)), key=lambda i: result.x_values[i])
    if order == list(range(len(result.x_values))):
        return result

    def pick(values: tuple) -> tuple:
        return tuple(values[i] for i in order)

    return replace(
        result,
        x_values=pick(result.x_values),
        series={name: pick(v) for name, v in result.series.items()},
        errors={name: pick(v) for name, v in result.errors.items()},
        ci={name: pick(v) for name, v in result.ci.items()},
        counts=pick(result.counts) if result.counts else (),
        comparisons=tuple(
            replace(
                c,
                values=pick(c.values),
                stderr=pick(c.stderr),
                ci=pick(c.ci),
                counts=pick(c.counts),
            )
            for c in result.comparisons
        ),
    )


def _check_result_matches(spec: SweepSpec, result: "FigureResult") -> None:
    """Structurally verify that ``result`` is a complete result of ``spec``.

    Refinement decides where to spend simulation budget from ``result``'s
    intervals, so silently accepting a result computed from some *other*
    spec — a different grid, different policies, with or without paired
    comparisons — would bisect the wrong intervals while looking
    perfectly healthy. Every mismatch raises a :class:`ValueError` naming
    what disagrees.
    """
    grid = set(spec.values)
    foreign = [x for x in result.x_values if x not in grid]
    if foreign:
        raise ValueError(
            "refine_sweep got a result that does not belong to the spec: "
            f"result x values {sorted(foreign)} are not on the spec's "
            f"grid {sorted(grid)}"
        )
    if len(set(result.x_values)) < len(grid):
        raise ValueError(
            "refine_sweep needs a complete sweep result covering every "
            f"grid point ({len(set(result.x_values))}/{len(grid)} "
            "present); assemble a sharded sweep first by rerunning "
            "without shard"
        )
    if all(
        m.kind == "total_cost" and m.label is None
        for m in spec.experiment.metrics
    ):
        # With the default metric the series are exactly the policy
        # labels; metric-derived series names only exist after simulating.
        expected = set(resolve_series_labels(spec.experiment))
        if set(result.series_names) != expected:
            raise ValueError(
                "refine_sweep got a result whose series "
                f"{sorted(result.series_names)} do not match the spec's "
                f"policy labels {sorted(expected)}; the result belongs to "
                "a different experiment"
            )
    if spec.comparison is not None and not result.has_comparisons:
        raise ValueError(
            "refine_sweep got a result without paired-comparison payloads "
            "for a spec that declares a ComparisonSpec; recompute it with "
            "run_sweep(spec) so paired CIs exist to bisect on"
        )
    if spec.comparison is None and result.has_comparisons:
        raise ValueError(
            "refine_sweep got a result carrying paired comparisons for a "
            "spec without a ComparisonSpec; the result belongs to a "
            "different (comparison-bearing) spec"
        )
    if spec.comparison is not None:
        first = result.comparisons[0]
        if (
            first.baseline != spec.comparison.baseline
            or first.mode != spec.comparison.mode
        ):
            raise ValueError(
                "refine_sweep got a result whose paired comparisons "
                f"({first.contrast!r} vs {first.baseline!r}, mode "
                f"{first.mode!r}) do not match the spec's ComparisonSpec "
                f"(baseline {spec.comparison.baseline!r}, mode "
                f"{spec.comparison.mode!r})"
            )


def refine_sweep(
    spec: SweepSpec,
    result: "FigureResult | None" = None,
    backend: "ExecutionBackend | None" = None,
    cache: "ResultCache | None" = None,
    resume: bool = True,
    rounds: int = 1,
    max_new_points: int = 8,
    min_spacing: "float | None" = None,
    ci_level: float = 0.95,
) -> "tuple[SweepSpec, FigureResult]":
    """Refine a sweep's grid where CIs leave the policy ordering open.

    Paper figures ask *which policy wins where* — crossings and near-ties
    are exactly where a coarse grid misleads. ``refine_sweep`` finds every
    adjacent x interval whose endpoint confidence intervals fail to settle
    some ordering, bisects those intervals, and re-runs the sweep with the
    midpoints *appended* to the value grid. Appending keeps every existing
    point's index — hence its replicate seeds and cache entries — stable,
    so a refinement pass over a warm ``cache`` simulates **only the new
    points**; existing ones load from the per-point entries. The process
    repeats up to ``rounds`` times or until ``max_new_points`` total new
    points were added or every ordering is settled.

    Which intervals count as open depends on the spec. With a
    :class:`~repro.api.specs.ComparisonSpec` the decision uses the
    *paired* contrast-vs-baseline CIs (common random numbers — typically
    far tighter than the marginal ones): an interval is bisected iff some
    paired CI straddles its null (0 for differences, 1 for ratios) at an
    endpoint, or the paired mean crosses the null between the endpoints.
    Comparison-free sweeps fall back to the marginal criterion — series
    CIs overlapping at an endpoint, or their difference flipping sign.
    Either way the stored CI bounds carry the CI method the spec declared
    (Student-t or BCa bootstrap); nothing is re-estimated here.

    Args:
        spec: the sweep to refine; must sweep one scalar parameter over
            numeric values (coupled and single-point sweeps cannot be
            bisected).
        result: a previously computed result of exactly ``spec`` (e.g.
            from :func:`run_sweep`); computed fresh when ``None``. A
            result that does not structurally match the spec — x values
            off the grid, missing points, different series or comparison
            payloads — is rejected with a :class:`ValueError`.
        backend/cache/resume: forwarded to :func:`run_sweep`; pass the
            cache used for the original sweep to avoid recomputing it.
        rounds: refinement iterations (each re-examines the refined grid).
        max_new_points: total budget of inserted points across rounds.
        min_spacing: skip intervals at or below this width, and never
            insert a midpoint within this distance of *any* existing grid
            value (so repeated rounds cannot burn the budget on
            near-duplicate points).
        ci_level: confidence level for halfwidths derived from standard
            errors when a comparison-free ``result`` carries no CI
            annotations.

    Returns:
        ``(refined_spec, refined_result)`` — the spec with the appended
        grid (its natural cache key for future runs) and its result with
        points presented in ascending x order. With nothing to refine both
        are the inputs (result sorted).
    """
    paths = spec.parameter_paths
    if len(paths) != 1 or not isinstance(spec.parameter, str):
        raise ValueError(
            "refine_sweep needs a single swept parameter; coupled and "
            "single-point sweeps have no scalar axis to bisect"
        )
    for value in spec.values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"refine_sweep needs a numeric axis, got value {value!r}"
            )
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if max_new_points < 1:
        raise ValueError(f"max_new_points must be >= 1, got {max_new_points}")

    if result is None:
        result = run_sweep(spec, backend=backend, cache=cache, resume=resume)
    _check_result_matches(spec, result)

    added = 0
    for _round in range(rounds):
        if spec.comparison is not None:
            intervals = _paired_ambiguous_intervals(result)
        else:
            if len(result.series_names) < 2:
                break  # one series has no orderings to separate
            halfwidths = _series_halfwidths(result, spec, ci_level)
            intervals = _ambiguous_intervals(result, halfwidths)
        existing = set(spec.values)
        new_values = []
        for x0, x1 in intervals:
            if added + len(new_values) >= max_new_points:
                break
            mid = _midpoint(x0, x1, min_spacing)
            if mid is None or mid in existing:
                continue
            if min_spacing is not None and any(
                abs(mid - value) <= min_spacing for value in existing
            ):
                continue
            new_values.append(mid)
            existing.add(mid)
        if not new_values:
            break
        spec = replace(spec, values=spec.values + tuple(new_values))
        result = run_sweep(spec, backend=backend, cache=cache, resume=resume)
        added += len(new_values)

    return spec, _sorted_by_x(result)
