"""Executing declarative specs: ``run_experiment`` and ``run_sweep``.

These are the two entry points the spec layer adds on top of
:func:`repro.core.simulator.simulate` and
:func:`repro.experiments.runner.sweep_experiment`:

* :func:`run_experiment` materialises one :class:`ExperimentSpec` — build
  the substrate, generate the trace(s), run every policy — and returns the
  full per-policy :class:`~repro.core.results.RunResult` ledgers plus the
  spec's evaluated metric series.
* :func:`run_sweep` turns a :class:`SweepSpec` into a
  :class:`~repro.experiments.runner.FigureResult` via the sweep engine; pass
  an :class:`~repro.api.execution.ExecutionBackend` to parallelise the
  replicates (results are bit-identical across backends) and a
  :class:`~repro.api.cache.ResultCache` to memoize whole sweeps on disk.

Randomness follows the figure-module convention: one generator drives
topology construction, trace generation and every policy's simulation in
declaration order, so a spec plus a seed pins the exact run. With
per-policy scenario overrides, all distinct traces are generated (in
first-use order) *before* any policy simulates — the order the paper's
multi-scenario comparisons always used — and metrics evaluate strictly
after the last simulation without consuming any randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.api.execution import ExecutionBackend
from repro.api.metrics import MetricContext, PolicyRun, evaluate_metrics
from repro.api.specs import ExperimentSpec, SweepSpec
from repro.core.results import RunResult
from repro.core.simulator import simulate
from repro.workload.base import generate_trace

# NOTE: repro.experiments.runner is imported lazily inside the functions that
# need it. The figure modules import this module at load time, so a top-level
# import here would cycle through the repro.experiments package __init__.

__all__ = [
    "ExperimentResult",
    "SpecReplicate",
    "resolve_series_labels",
    "run_experiment",
    "run_replicate",
    "run_sweep",
]


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of one :func:`run_experiment` call.

    Attributes:
        spec: the executed spec (self-describing provenance).
        results: mapping policy label → full :class:`RunResult` ledger, in
            the spec's policy order.
        series: the spec's metrics evaluated over those ledgers (with the
            default ``total_cost`` metric: label → grand total).
    """

    spec: ExperimentSpec
    results: "Mapping[str, RunResult]"
    series: "Mapping[str, float]" = field(default_factory=dict)

    @property
    def total_costs(self) -> "dict[str, float]":
        """Grand total cost per policy label."""
        return {label: run.total_cost for label, run in self.results.items()}

    def to_figure_result(self) -> "FigureResult":
        """Render the metric series as a single-point :class:`FigureResult`."""
        from repro.experiments.runner import FigureResult

        series = self.series or self.total_costs
        return FigureResult(
            figure=self.spec.name or "experiment",
            title=f"{self.spec.scenario.kind} on {self.spec.topology.kind}",
            x_label="metric",
            x_values=("total cost",),
            series={name: (value,) for name, value in series.items()},
        )


def _simulate_spec(
    spec: ExperimentSpec, rng: np.random.Generator
) -> MetricContext:
    """Run every policy of ``spec`` and collect the full replicate context.

    The randomness contract (and thus bit-compatibility with the historical
    closure implementations): the substrate builds first, then one trace per
    *distinct* effective scenario in first-use order, then the policies
    simulate in declaration order — all from the single ``rng`` stream.
    Policies sharing an effective scenario share its trace.
    """
    substrate = spec.topology.build(rng)
    scenario_specs: list = []
    traces: list = []
    trace_of: list[int] = []
    for policy_spec in spec.policies:
        effective = policy_spec.scenario or spec.scenario
        for index, seen in enumerate(scenario_specs):
            if seen == effective:
                trace_of.append(index)
                break
        else:
            scenario_specs.append(effective)
            traces.append(
                generate_trace(effective.build(substrate), spec.horizon, rng)
            )
            trace_of.append(len(traces) - 1)

    runs: list[PolicyRun] = []
    taken: dict[str, bool] = {}
    for policy_spec, trace_index in zip(spec.policies, trace_of):
        policy = policy_spec.build()
        cost_spec = policy_spec.costs or spec.costs
        costs = cost_spec.to_cost_model()
        run = simulate(
            substrate,
            policy,
            traces[trace_index],
            costs,
            routing=spec.routing_strategy,
            seed=rng,
        )
        label = _series_label(policy_spec, policy, taken)
        taken[label] = True
        runs.append(
            PolicyRun(
                label=label,
                spec=policy_spec,
                run=run,
                trace=traces[trace_index],
                trace_index=trace_index,
                costs=costs,
                cost_spec=cost_spec,
                scenario=scenario_specs[trace_index],
            )
        )
    return MetricContext(spec=spec, substrate=substrate, runs=runs)


def run_replicate(
    spec: ExperimentSpec, rng: np.random.Generator
) -> "dict[str, float]":
    """One independent replicate of ``spec``: its metric series.

    This is the sweep-engine shape (``(x, rng) -> {series: value}`` minus
    the ``x``); :func:`run_sweep` fans it out per sweep point. With the
    default ``total_cost`` metric the output is the per-policy totals, as
    it always was.
    """
    context = _simulate_spec(spec, rng)
    return evaluate_metrics(context, spec.metrics)


def resolve_series_labels(spec: ExperimentSpec) -> "tuple[str, ...]":
    """Build each policy and return its series label, raising on collisions.

    Useful as a cheap pre-flight before a long sweep: it surfaces label
    collisions (and bad policy parameters) without simulating anything.
    Metric-derived series names depend on the simulated results and are
    validated at evaluation time instead.
    """
    taken: dict[str, bool] = {}
    for policy_spec in spec.policies:
        taken[_series_label(policy_spec, policy_spec.build(), taken)] = True
    return tuple(taken)


def _series_label(policy_spec, policy, taken) -> str:
    """The result key for one policy, guarding against silent collisions.

    Spec validation can only compare labels/kinds; two different kinds may
    still build policies reporting the same ``name`` (e.g. ``onbr`` and
    ``onbr-fixed``), which would overwrite each other's series.
    """
    label = policy_spec.label or policy.name
    if label in taken:
        raise ValueError(
            f"policies {sorted(p for p in taken)} + {policy_spec.kind!r} "
            f"collide on series label {label!r}; set PolicySpec.label to "
            "disambiguate"
        )
    return label


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Execute ``spec`` once (seeded by ``spec.seed``) keeping full ledgers."""
    rng = np.random.default_rng(spec.seed)
    context = _simulate_spec(spec, rng)
    return ExperimentResult(
        spec=spec,
        results={run.label: run.run for run in context.runs},
        series=evaluate_metrics(context, spec.metrics),
    )


class SpecReplicate:
    """The picklable replicate callable behind :func:`run_sweep`.

    Holds only the :class:`SweepSpec` (plain data), so a process-pool backend
    can ship it to workers on any start method; names re-resolve through the
    registries inside the worker.
    """

    def __init__(self, sweep: SweepSpec) -> None:
        self.sweep = sweep

    def __call__(self, x, rng: np.random.Generator) -> "dict[str, float]":
        return run_replicate(self.sweep.experiment_at(x), rng)

    def __repr__(self) -> str:
        return f"SpecReplicate({self.sweep.figure!r})"


def run_sweep(
    spec: SweepSpec,
    backend: "ExecutionBackend | None" = None,
    cache: "ResultCache | None" = None,
) -> "FigureResult":
    """Run the sweep described by ``spec`` and aggregate a figure result.

    Args:
        spec: the declarative sweep.
        backend: where replicates execute; ``None`` = serial. Serial and
            parallel backends return identical results for the same spec.
        cache: optional :class:`~repro.api.cache.ResultCache`; a hit returns
            the stored result without simulating anything, a miss stores
            the freshly computed one. Safe because the spec is the complete
            input of the computation and results are backend-independent.
    """
    from repro.experiments.runner import sweep_experiment

    if cache is not None:
        cached = cache.load(spec)
        if cached is not None:
            return cached

    result = sweep_experiment(
        figure=spec.figure,
        title=spec.resolved_title(),
        x_label=spec.resolved_x_label(),
        x_values=spec.values,
        replicate=SpecReplicate(spec),
        runs=spec.runs,
        seed=spec.seed,
        notes=spec.notes,
        backend=backend,
    )
    if isinstance(spec.parameter, tuple):
        # Coupled sweeps substitute value tuples; the figure plots the
        # primary (first) component on the x axis.
        result = replace(
            result, x_values=tuple(spec.display_x(x) for x in spec.values)
        )
    if cache is not None:
        cache.store(spec, result)
    return result
