"""Execution backends: where a sweep's replicates actually run.

:func:`~repro.experiments.runner.sweep_experiment` turns a sweep into a flat
list of :class:`ReplicateTask`\\ s — one per ``(sweep point, run)`` pair, each
carrying the exact ``numpy.random.SeedSequence`` child that the serial loop
would have used. A backend only chooses *where* those tasks execute:

* :class:`SerialBackend` — in-process loop, the default;
* :class:`ProcessPoolBackend` — fan-out over worker processes.

Because the child seeds are spawned up front in the parent and travel with
the tasks, a replicate sees bit-identical randomness no matter which backend
runs it: serial and parallel sweeps produce identical
:class:`~repro.experiments.runner.FigureResult`\\ s.

Replicate callables defined at module level (e.g. the spec-driven
:class:`~repro.api.experiment.SpecReplicate`) are pickled to the workers
directly. Closure replicates — the style the figure modules use — cannot be
pickled; for those the pool falls back to ``fork``-started workers that
inherit the replicate through process memory (available on POSIX). If
neither route works the backend degrades to serial execution with a warning
rather than failing the sweep.
"""

from __future__ import annotations

import abc
import functools
import multiprocessing
import os
import pickle
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "ReplicateTask",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "QueueBackend",
]

#: A replicate maps ``(x, rng) -> {series name: value}``.
Replicate = Callable[[Any, np.random.Generator], Mapping[str, float]]

#: Optional per-result hook ``(index, task, result)`` invoked as results
#: become available, in task order — raising from it aborts the batch, which
#: is how the sweep engine fails fast on malformed replicate output instead
#: of discarding a long run's remaining compute.
ResultHook = Callable[[int, "ReplicateTask", Mapping[str, float]], None]


@dataclass(frozen=True)
class ReplicateTask:
    """One unit of sweep work: a sweep-point value plus its dedicated seed."""

    x: Any
    seed: np.random.SeedSequence


def _execute(replicate: Replicate, task: ReplicateTask) -> Mapping[str, float]:
    """Run one task; the single place a task's rng is materialised."""
    return replicate(task.x, np.random.default_rng(task.seed))


class ExecutionBackend(abc.ABC):
    """Strategy for executing a batch of replicate tasks.

    Implementations must return one result per task, in task order, and must
    derive each task's generator from its own ``seed`` (use
    :func:`numpy.random.default_rng`) so results are backend-independent.
    """

    @abc.abstractmethod
    def run_replicates(
        self,
        replicate: Replicate,
        tasks: Sequence[ReplicateTask],
        on_result: "ResultHook | None" = None,
    ) -> list:
        """Execute every task and return the results in task order.

        ``on_result`` (when given) must be called with ``(index, task,
        result)`` as each result becomes available, in task order.
        """


def _collect(tasks, results, on_result) -> list:
    """Drain ``results`` (an iterable in task order) through the hook."""
    out = []
    for index, (task, result) in enumerate(zip(tasks, results)):
        if on_result is not None:
            on_result(index, task, result)
        out.append(result)
    return out


class SerialBackend(ExecutionBackend):
    """In-process, sequential execution — the reference behaviour."""

    def run_replicates(
        self,
        replicate: Replicate,
        tasks: Sequence[ReplicateTask],
        on_result: "ResultHook | None" = None,
    ) -> list:
        return _collect(
            tasks, (_execute(replicate, task) for task in tasks), on_result
        )

    def __repr__(self) -> str:
        return "SerialBackend()"


#: Work shipped to fork-started workers through inherited memory; set only
#: for the duration of one ``run_replicates`` call. The lock serialises
#: concurrent fork-path calls (e.g. from threads), which would otherwise
#: overwrite each other's state before the workers fork.
_FORK_STATE: "tuple[Replicate, list[ReplicateTask]] | None" = None
_FORK_LOCK = threading.Lock()


def _execute_forked(index: int) -> Mapping[str, float]:
    replicate, tasks = _FORK_STATE
    return _execute(replicate, tasks[index])


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class ProcessPoolBackend(ExecutionBackend):
    """Fan replicates out across worker processes.

    Args:
        workers: pool size; ``None`` uses :func:`os.cpu_count`.
    """

    def __init__(self, workers: "int | None" = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run_replicates(
        self,
        replicate: Replicate,
        tasks: Sequence[ReplicateTask],
        on_result: "ResultHook | None" = None,
    ) -> list:
        tasks = list(tasks)
        if len(tasks) <= 1 or self.workers == 1:
            return SerialBackend().run_replicates(replicate, tasks, on_result)

        workers = min(self.workers, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))

        if _is_picklable(replicate):
            execute = functools.partial(_execute, replicate)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return _collect(
                    tasks, pool.map(execute, tasks, chunksize=chunksize),
                    on_result,
                )

        if "fork" in multiprocessing.get_all_start_methods():
            global _FORK_STATE
            with _FORK_LOCK:
                _FORK_STATE = (replicate, tasks)
                try:
                    context = multiprocessing.get_context("fork")
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    ) as pool:
                        return _collect(
                            tasks,
                            pool.map(
                                _execute_forked,
                                range(len(tasks)),
                                chunksize=chunksize,
                            ),
                            on_result,
                        )
                finally:
                    _FORK_STATE = None

        warnings.warn(
            "replicate is not picklable and fork start method is unavailable; "
            "running the sweep serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return SerialBackend().run_replicates(replicate, tasks, on_result)

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(workers={self.workers})"


class QueueBackend(ExecutionBackend):
    """Fan replicates out through a :class:`repro.queue.broker.Broker`.

    Where :class:`ProcessPoolBackend` owns its workers,
    :class:`QueueBackend` publishes the batch as *block* tasks on a shared
    queue file and lets whoever is draining that queue — external
    ``repro-experiments worker`` processes, possibly on other machines
    sharing the filesystem — execute them. Each block task carries the
    pickled ``(replicate, tasks)`` chunk and returns its pickled samples
    on the task row, so the batch needs no cache and works for arbitrary
    replicates (same pickling contract as the pool; unpicklable work
    degrades to serial with the same warning).

    With ``local=True`` (the default) the backend also work-steals its own
    block tasks between polls, so a sweep makes progress even with zero
    external workers — the queue then merely *admits* helpers instead of
    requiring them.

    Results are bit-identical to serial execution: tasks carry their
    pre-spawned seeds, and chunk results are reassembled in task order.

    Args:
        queue: the queue database path, or an existing ``Broker``.
        chunk: replicate tasks per block task (larger = fewer, longer
            leases).
        poll: seconds between progress polls while waiting on external
            workers.
        ttl: lease lifetime granted to whichever worker takes a block.
        local: execute unleased blocks in-process while waiting.
        timeout: seconds before giving up on a stuck queue (``None`` =
            wait forever; abandoned leases re-serve on their own).
    """

    def __init__(
        self,
        queue,
        chunk: int = 1,
        poll: float = 0.05,
        ttl: "float | None" = None,
        local: bool = True,
        timeout: "float | None" = None,
    ) -> None:
        from repro.queue.broker import Broker

        self.broker = queue if isinstance(queue, Broker) else Broker(queue)
        chunk = int(chunk)
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk
        self.poll = float(poll)
        self.ttl = ttl
        self.local = bool(local)
        self.timeout = timeout

    def run_replicates(
        self,
        replicate: Replicate,
        tasks: Sequence[ReplicateTask],
        on_result: "ResultHook | None" = None,
    ) -> list:
        import uuid

        from repro.queue.broker import default_worker_id

        tasks = list(tasks)
        if not tasks:
            return []
        if not _is_picklable(replicate) or not _is_picklable(tasks):
            warnings.warn(
                "replicate (or its tasks) is not picklable and cannot "
                "travel through the queue; running the batch serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialBackend().run_replicates(replicate, tasks, on_result)

        chunks = [
            tasks[start : start + self.chunk]
            for start in range(0, len(tasks), self.chunk)
        ]
        job_id = f"block:{uuid.uuid4().hex}"
        self.broker.enqueue_job(
            job_id,
            "block",
            tasks=[
                (
                    "block",
                    {"chunk": k},
                    pickle.dumps(
                        (replicate, chunk), protocol=pickle.HIGHEST_PROTOCOL
                    ),
                )
                for k, chunk in enumerate(chunks)
            ],
        )
        worker = f"{default_worker_id()}:backend"
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        blocks: "list[list | None]" = [None] * len(chunks)
        delivered = 0  # chunks whose samples went through on_result
        try:
            while True:
                for row in self.broker.tasks_for(job_id):
                    if row["status"] == "failed":
                        raise RuntimeError(
                            f"queue task for chunk "
                            f"{row['payload'].get('chunk')} failed: "
                            f"{row['error']}"
                        )
                    if row["status"] == "done" and row["result"] is not None:
                        k = int(row["payload"]["chunk"])
                        if blocks[k] is None:
                            blocks[k] = pickle.loads(row["result"])
                while delivered < len(chunks) and blocks[delivered] is not None:
                    if on_result is not None:
                        base = delivered * self.chunk
                        for offset, sample in enumerate(blocks[delivered]):
                            on_result(
                                base + offset, tasks[base + offset], sample
                            )
                    delivered += 1
                if delivered == len(chunks):
                    break
                progressed = False
                if self.local:
                    lease = self.broker.lease_task(
                        worker, ttl=self.ttl, job=job_id, kinds=("block",)
                    )
                    if lease is not None:
                        chunk_replicate, chunk_tasks = pickle.loads(lease.blob)
                        samples = SerialBackend().run_replicates(
                            chunk_replicate, chunk_tasks
                        )
                        self.broker.complete(
                            lease,
                            pickle.dumps(
                                samples, protocol=pickle.HIGHEST_PROTOCOL
                            ),
                        )
                        progressed = True
                if not progressed:
                    if deadline is not None and time.monotonic() > deadline:
                        raise TimeoutError(
                            f"queue batch {job_id} incomplete after "
                            f"{self.timeout}s ({delivered}/{len(chunks)} "
                            "chunks done)"
                        )
                    time.sleep(self.poll)
        finally:
            # block jobs are transient transport, not cache: drop the rows
            # (and their pickled payloads) whatever happened
            self.broker.delete_job(job_id)
        return [sample for block in blocks for sample in block]

    def __repr__(self) -> str:
        return (
            f"QueueBackend({str(self.broker.path)!r}, chunk={self.chunk}, "
            f"local={self.local})"
        )
