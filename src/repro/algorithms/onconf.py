"""ONCONF — the generic configuration-counter online algorithm of §III.

ONCONF generalises the single-server algorithm of Bienkowski et al. [4] to
up to ``k`` servers: it maintains a counter ``C(γ)`` for every configuration
γ (every placement of 1..k active servers). Within an epoch, each round adds
to *every* counter the cost that configuration would have paid for the
round's requests (access cost plus running cost). The current configuration
γ̂ is kept until ``C(γ̂)`` reaches ``k·c``; then ONCONF switches to a
configuration chosen uniformly at random among those with ``C(γ) < k·c``.
When no such configuration remains, the epoch ends in that round: all
counters reset and the next epoch starts in the next round (no migration).

The configuration space has ``Σ_{i=1..k} C(n, i)`` elements, so — exactly as
the paper observes — the algorithm is only practical for small substrates
and small ``k``; the constructor enforces a budget. Its value here is as the
conceptual anchor (the competitive-ratio argument of §III applies to it) and
as a baseline on the 5-node OPT topologies.

Note: the paper's counter description mentions "possible creation costs";
we accumulate access + running cost only, since the creation cost a
configuration *would* pay depends on the unknown switching path. The k·c
threshold bounds the per-epoch movement cost exactly as in the analysis.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.api.registry import register_policy
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive_int

__all__ = ["OnConf"]

#: Hard budget on the enumerated configuration space.
_MAX_CONFIGURATIONS = 20_000


@register_policy("onconf")
class OnConf(AllocationPolicy):
    """Online configuration-counter algorithm (ONCONF, §III).

    Args:
        max_servers: the paper's ``k`` — configurations host 1..k active
            servers (the inactive cache is not part of ONCONF
            configurations).
        start_node: initial server location; ``None`` = network center.
        deterministic: switch to the *lowest-counter* configuration instead
            of a uniformly random eligible one (a §III-mentioned
            optimisation; used by tests for reproducibility).
    """

    def __init__(
        self,
        max_servers: int = 2,
        start_node: "int | None" = None,
        deterministic: bool = False,
    ) -> None:
        self._k = check_positive_int("max_servers", max_servers)
        self._start_node = start_node
        self._deterministic = bool(deterministic)

        self._substrate: "Substrate | None" = None
        self._costs: "CostModel | None" = None
        self._rng: "np.random.Generator | None" = None
        self._configs: list[np.ndarray] = []
        self._run_costs: "np.ndarray | None" = None
        self._counters: "np.ndarray | None" = None
        self._current = 0
        self._threshold = 0.0

    @property
    def name(self) -> str:
        return "ONCONF"

    @property
    def configuration(self) -> Configuration:
        """The policy's current configuration."""
        return Configuration(tuple(int(v) for v in self._configs[self._current]))

    @property
    def n_configurations(self) -> int:
        """Size of the enumerated configuration space."""
        return len(self._configs)

    # -- policy interface --------------------------------------------------------

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        self._substrate = substrate
        self._costs = costs
        self._rng = rng
        k = min(self._k, substrate.n)

        total = _space_size(substrate.n, k)
        if total > _MAX_CONFIGURATIONS:
            raise ValueError(
                f"ONCONF would enumerate {total} configurations "
                f"(n={substrate.n}, k={k}); the budget is {_MAX_CONFIGURATIONS}. "
                "Use ONBR/ONTH for larger instances (§III-A)."
            )

        self._configs = [
            np.asarray(combo, dtype=np.int64)
            for size in range(1, k + 1)
            for combo in combinations(range(substrate.n), size)
        ]
        self._run_costs = np.asarray(
            [costs.running_cost_counts(cfg.size) for cfg in self._configs]
        )
        self._counters = np.zeros(len(self._configs), dtype=np.float64)
        self._threshold = k * costs.creation

        start = substrate.center if self._start_node is None else int(self._start_node)
        self._current = self._index_of((start,))
        return self.configuration

    def _index_of(self, active: tuple[int, ...]) -> int:
        target = np.asarray(sorted(active), dtype=np.int64)
        for i, cfg in enumerate(self._configs):
            if cfg.size == target.size and np.array_equal(cfg, target):
                return i
        raise ValueError(f"configuration {active} not in the enumerated space")

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        self._accumulate(requests)

        if self._counters[self._current] < self._threshold:
            return self.configuration

        eligible = np.flatnonzero(self._counters < self._threshold)
        if eligible.size == 0:
            # Epoch over: reset all counters, stay put; the next epoch
            # starts with the next round.
            self._counters[:] = 0.0
            return self.configuration

        if self._deterministic:
            self._current = int(eligible[np.argmin(self._counters[eligible])])
        else:
            self._current = int(self._rng.choice(eligible))
        return self.configuration

    # -- counter update -----------------------------------------------------------

    def _accumulate(self, requests: np.ndarray) -> None:
        counters = self._counters
        counters += self._run_costs
        if requests.size == 0:
            return

        distances = self._substrate.distances[:, requests]
        strengths = self._substrate.strengths
        costs = self._costs
        invariant = (
            costs.load.assignment_invariant_for_uniform_strength
            and bool(np.all(strengths == strengths[0]))
        )
        hop = costs.wireless_hop * requests.size
        if invariant:
            uniform_load = float(
                costs.load(strengths[:1], np.asarray([requests.size])).sum()
            )
        for i, cfg in enumerate(self._configs):
            sub = distances[cfg]
            latency = float(sub.min(axis=0).sum())
            if invariant:
                load = uniform_load
            else:
                assignment = np.argmin(sub, axis=0)
                counts = np.bincount(assignment, minlength=cfg.size)
                load = float(costs.load(strengths[cfg], counts).sum())
            counters[i] += latency + hop + load


def _space_size(n: int, k: int) -> int:
    from math import comb

    return sum(comb(n, i) for i in range(1, k + 1))
