"""The per-epoch server placement program of the ILP/LP policy family.

Given a demand window (how many requests each access point produced over the
last ``W`` rounds), the current configuration and the cost model, build one
mixed-integer program choosing the next active server set for the coming
epoch of ``R`` rounds:

* binaries ``x[n]`` — open an active server at node ``n``;
* continuous ``y[p, n] ∈ [0, 1]`` — the fraction of access point ``p``'s
  demand served at ``n`` (at most one server per node and per service, the
  packing constraint of the capacitated model, is inherited from
  :class:`~repro.core.config.Configuration`: ``x`` is per node);
* objective = expected access cost (latency + wireless hop + linearised
  per-request load) over the epoch + running cost ``R·Ra·Σx`` + switching
  cost for nodes not currently occupied;
* constraints: every point fully served (``Σₙ y[p,n] = 1``), service only at
  open nodes (``y[p,n] ≤ x[n]``), per-node capacity
  (``Σₚ rate_p·y[p,n] ≤ cap[n]``, per round), fleet bounds
  (``1 ≤ Σ x ≤ max_servers``).

Two deliberate linearisations keep the model an (I)LP — both are *planning*
approximations; the adopted configuration is always re-priced exactly by the
simulator's :func:`~repro.core.transitions.price_transition`:

* the per-request load is the cost model's load at count one
  (exact for the paper's default :class:`~repro.core.load.LinearLoad`,
  optimistic for convex load);
* a node not currently occupied is charged ``min(β, c)`` to open — the
  cheapest realisation (a migration when a donor vanishes, else a
  creation); occupied nodes (active or cached inactive) reopen for free.

``relax=True`` solves the LP relaxation instead and rounds
deterministically (:func:`round_fractional`): largest fractional openings
win, ties to the lower node index, extended greedily until capacity covers
the windowed demand rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.optim.backends import Program
from repro.core.costs import CostModel
from repro.topology.substrate import Substrate

__all__ = ["PlacementModel", "build_placement", "round_fractional", "unit_loads"]


def unit_loads(substrate: Substrate, costs: CostModel) -> np.ndarray:
    """Per-node cost of serving a single request (the load linearisation)."""
    return np.asarray(
        costs.load(substrate.strengths, np.ones(substrate.n)), dtype=np.float64
    )


@dataclass(frozen=True)
class PlacementModel:
    """One built placement program plus what is needed to read it back."""

    program: Program
    #: column index of ``x[n]`` per substrate node
    x_index: np.ndarray
    #: distinct demand points (access-point node indices)
    points: np.ndarray
    #: per-round demand rate of each point over the window
    rates: np.ndarray
    #: effective per-round node capacities (``None`` = uncapacitated)
    capacities: "np.ndarray | None"
    max_servers: "int | None"

    def active_from(self, values: np.ndarray, relax: bool) -> "tuple[int, ...]":
        """The chosen active set: threshold (MILP) or round (LP) the ``x``."""
        x = values[self.x_index]
        if not relax:
            return tuple(int(n) for n in np.flatnonzero(x > 0.5))
        return round_fractional(
            x, self.capacities, float(self.rates.sum()), self.max_servers
        )


def build_placement(
    substrate: Substrate,
    costs: CostModel,
    demand: np.ndarray,
    window_rounds: int,
    epoch_rounds: int,
    occupied: "frozenset[int] | set[int]",
    capacities: "np.ndarray | None" = None,
    max_servers: "int | None" = None,
) -> PlacementModel:
    """Build the epoch placement program for a windowed demand histogram.

    Args:
        substrate: the substrate network.
        costs: cost model (β, c, Ra, load, wireless hop).
        demand: concatenated access-point indices of the window's requests.
        window_rounds: rounds the window spans (normalises demand to rates).
        epoch_rounds: rounds the plan will be held for (scales recurring
            costs so switching is weighed against a whole epoch's savings).
        occupied: nodes currently holding a server (active or cached
            inactive) — they reopen for free.
        capacities: per-round per-node capacities, or ``None``.
        max_servers: optional fleet-size bound ``Σ x ≤ k``.
    """
    n = substrate.n
    demand = np.asarray(demand, dtype=np.int64)
    points, counts = np.unique(demand, return_counts=True)
    rates = counts.astype(np.float64) / float(max(window_rounds, 1))

    program = Program()
    open_cost = min(costs.migration, costs.creation)
    x_index = np.empty(n, dtype=np.int64)
    for node in range(n):
        coefficient = costs.run_active * epoch_rounds
        if node not in occupied:
            coefficient += open_cost
        x_index[node] = program.variable(coefficient, integer=True)

    per_request = unit_loads(substrate, costs) + costs.wireless_hop
    y_index = np.empty((points.size, n), dtype=np.int64)
    for p, point in enumerate(points.tolist()):
        served_weight = rates[p] * epoch_rounds
        for node in range(n):
            cost = served_weight * (
                substrate.distances[point, node] + per_request[node]
            )
            y_index[p, node] = program.variable(cost)
        program.constrain(
            [(int(y_index[p, node]), 1.0) for node in range(n)], lo=1.0, hi=1.0
        )
        for node in range(n):
            # service only at open nodes (per-pair: tight LP relaxation)
            program.constrain(
                [(int(y_index[p, node]), 1.0), (int(x_index[node]), -1.0)],
                hi=0.0,
            )

    if capacities is not None:
        for node in range(n):
            terms = [
                (int(y_index[p, node]), float(rates[p]))
                for p in range(points.size)
            ]
            if terms:
                program.constrain(terms, hi=float(capacities[node]))

    fleet = [(int(x_index[node]), 1.0) for node in range(n)]
    program.constrain(fleet, lo=1.0)
    if max_servers is not None:
        program.constrain(fleet, hi=float(max_servers))

    return PlacementModel(
        program=program,
        x_index=x_index,
        points=points,
        rates=rates,
        capacities=capacities,
        max_servers=max_servers,
    )


def round_fractional(
    x: np.ndarray,
    capacities: "np.ndarray | None",
    total_rate: float,
    max_servers: "int | None",
) -> "tuple[int, ...]":
    """Deterministically round a fractional LP opening vector.

    Open ``k = clip(round(Σx), 1, max_servers)`` nodes, largest fractional
    value first (ties to the lower index), then keep extending in the same
    order until the opened per-round capacity covers the windowed demand
    rate.  Pure arithmetic on the LP solution — no RNG — so LP-relaxation
    policies stay bit-reproducible and CRN-safe.
    """
    n = x.size
    order = np.lexsort((np.arange(n), -x))
    k = int(np.clip(np.rint(x.sum()), 1, max_servers if max_servers else n))
    chosen = list(order[:k].tolist())
    if capacities is not None:
        while (
            sum(float(capacities[node]) for node in chosen) < total_rate
            and len(chosen) < n
        ):
            chosen.append(int(order[len(chosen)]))
    return tuple(sorted(int(node) for node in chosen))
