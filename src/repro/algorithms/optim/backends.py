"""Solver backends for the optimizer-backed policy family.

The placement models of this package are ordinary mixed-integer linear
programs.  Two interchangeable backends solve them:

* ``"scipy"`` — :func:`scipy.optimize.milp` (the HiGHS solver scipy already
  ships); always available, the default.  The MIP gap is pinned to zero so
  tiny instances are solved to *proven* optimality — the differential tests
  against brute-force enumeration rely on that.
* ``"pulp"`` — the `PuLP <https://coin-or.github.io/pulp/>`_ modeller with
  its bundled CBC solver, behind the optional ``[opt]`` extra
  (``pip install 'repro-flexible-server-allocation[opt]'``).  Selecting it
  without the extra raises a graceful :class:`ImportError` naming the
  install command instead of a bare module-not-found deep inside a sweep.
* ``"auto"`` — ``pulp`` when importable, else ``scipy``.  Note that cache
  keys fold in the *requested* backend string, so ``auto`` specs hit the
  same cache entries on machines with and without the extra; both backends
  solve the same program to optimality, making the results agree (tested
  where pulp is installed).

Programs are built once through the tiny :class:`Program` accumulator and
handed to whichever backend was requested; ``relax=True`` drops every
integrality marker, turning the MILP into its LP relaxation (whose optimum
lower-bounds the MILP optimum — a tested invariant).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

__all__ = [
    "BACKENDS",
    "InfeasibleProblemError",
    "Program",
    "Solution",
    "have_pulp",
    "resolve_backend",
]

#: Recognised values for the ``backend`` solver knob.
BACKENDS = ("scipy", "pulp", "auto")

#: The graceful message pointing at the optional extra.
_PULP_HINT = (
    "the 'pulp' solver backend is not installed; install the optional "
    "extra with  pip install 'repro-flexible-server-allocation[opt]'  "
    "(or keep backend='scipy', which needs only the base install)"
)


class InfeasibleProblemError(RuntimeError):
    """The placement program has no feasible solution (or the solver failed)."""


def have_pulp() -> bool:
    """Whether the optional ``pulp`` backend is importable."""
    try:
        import pulp  # noqa: F401  (availability probe only)
    except ImportError:
        return False
    return True  # pragma: no cover - requires the [opt] extra


def _import_pulp():
    try:
        import pulp
    except ImportError as error:
        raise ImportError(_PULP_HINT) from error
    return pulp  # pragma: no cover - requires the [opt] extra


def resolve_backend(backend: str) -> str:
    """Validate ``backend`` and resolve ``"auto"`` to a concrete solver.

    Raises:
        ValueError: unknown backend name.
        ImportError: ``"pulp"`` requested without the ``[opt]`` extra
            installed (the message names the install command).
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "auto":
        return "pulp" if have_pulp() else "scipy"
    if backend == "pulp":
        _import_pulp()  # fail fast, gracefully, at construction time
    return backend


@dataclass(frozen=True)
class Solution:
    """An optimal solution: objective value and one value per variable."""

    objective: float
    values: np.ndarray
    backend: str


@dataclass
class Program:
    """A minimisation MILP accumulated variable by variable, row by row.

    ``min cᵀx`` subject to two-sided linear rows ``lo ≤ Ax ≤ hi`` and
    variable bounds; variables flagged ``integer`` are integral unless the
    solve relaxes them.  Deliberately tiny: just enough structure for the
    placement models, mapped 1:1 onto either backend.
    """

    _obj: list = field(default_factory=list)
    _lb: list = field(default_factory=list)
    _ub: list = field(default_factory=list)
    _int: list = field(default_factory=list)
    #: rows as (variable indices, coefficients, lo, hi)
    _rows: list = field(default_factory=list)

    def variable(
        self,
        objective: float = 0.0,
        lb: float = 0.0,
        ub: float = 1.0,
        integer: bool = False,
    ) -> int:
        """Add one variable; returns its column index."""
        self._obj.append(float(objective))
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._int.append(bool(integer))
        return len(self._obj) - 1

    def constrain(
        self,
        terms: "list[tuple[int, float]]",
        lo: float = -np.inf,
        hi: float = np.inf,
    ) -> None:
        """Add the row ``lo ≤ Σ coef·x[idx] ≤ hi``."""
        if not terms:
            raise ValueError("a constraint needs at least one term")
        idx, coef = zip(*terms)
        self._rows.append(
            (np.asarray(idx, dtype=np.int64),
             np.asarray(coef, dtype=np.float64),
             float(lo), float(hi))
        )

    @property
    def n_variables(self) -> int:
        return len(self._obj)

    @property
    def n_constraints(self) -> int:
        return len(self._rows)

    # -- solving ----------------------------------------------------------------

    def solve(
        self,
        backend: str = "scipy",
        relax: bool = False,
        time_limit: "float | None" = None,
    ) -> Solution:
        """Solve to proven optimality; ``relax`` drops all integrality.

        Raises :class:`InfeasibleProblemError` when no feasible point
        exists (or the solver gives up within ``time_limit``).
        """
        backend = resolve_backend(backend)
        if self.n_variables == 0:
            return Solution(0.0, np.zeros(0), backend)
        if backend == "pulp":
            return self._solve_pulp(relax, time_limit)  # pragma: no cover
        return self._solve_scipy(relax, time_limit)

    def _constraint_matrix(self) -> "tuple[sparse.csr_matrix, np.ndarray, np.ndarray]":
        rows_idx, cols, vals = [], [], []
        lows = np.empty(len(self._rows))
        highs = np.empty(len(self._rows))
        for r, (idx, coef, lo, hi) in enumerate(self._rows):
            rows_idx.extend([r] * idx.size)
            cols.extend(idx.tolist())
            vals.extend(coef.tolist())
            lows[r] = lo
            highs[r] = hi
        matrix = sparse.csr_matrix(
            (vals, (rows_idx, cols)),
            shape=(len(self._rows), self.n_variables),
        )
        return matrix, lows, highs

    def _solve_scipy(self, relax: bool, time_limit: "float | None") -> Solution:
        integrality = np.zeros(self.n_variables, dtype=np.int64)
        if not relax:
            integrality[np.asarray(self._int, dtype=bool)] = 1
        constraints = []
        if self._rows:
            matrix, lows, highs = self._constraint_matrix()
            constraints.append(LinearConstraint(matrix, lows, highs))
        # mip_rel_gap=0: solve to *proven* optimality — the differential
        # tests compare against brute-force enumeration bit-for-bit, so the
        # default 1e-4 gap (good enough but not optimal) is not acceptable.
        options: dict = {"mip_rel_gap": 0.0}
        if time_limit is not None:
            options["time_limit"] = float(time_limit)
        result = milp(
            c=np.asarray(self._obj, dtype=np.float64),
            constraints=constraints,
            integrality=integrality,
            bounds=Bounds(
                np.asarray(self._lb, dtype=np.float64),
                np.asarray(self._ub, dtype=np.float64),
            ),
            options=options,
        )
        if not result.success or result.x is None:
            raise InfeasibleProblemError(
                f"placement program has no optimal solution: {result.message}"
            )
        return Solution(float(result.fun), np.asarray(result.x), "scipy")

    # Only exercised with the [opt] extra installed; the coverage job
    # measures the base install, where the agreement tests auto-skip.
    def _solve_pulp(  # pragma: no cover
        self, relax: bool, time_limit: "float | None"
    ) -> Solution:
        pulp = _import_pulp()
        problem = pulp.LpProblem("placement", pulp.LpMinimize)
        variables = [
            pulp.LpVariable(
                f"v{i}",
                lowBound=self._lb[i],
                upBound=self._ub[i],
                cat=(
                    pulp.LpInteger
                    if self._int[i] and not relax
                    else pulp.LpContinuous
                ),
            )
            for i in range(self.n_variables)
        ]
        problem += pulp.lpSum(
            coef * variables[i]
            for i, coef in enumerate(self._obj)
            if coef != 0.0
        )
        for idx, coef, lo, hi in self._rows:
            expr = pulp.lpSum(
                float(c) * variables[int(i)] for i, c in zip(idx, coef)
            )
            if lo == hi:
                problem += expr == lo
            else:
                if np.isfinite(hi):
                    problem += expr <= hi
                if np.isfinite(lo):
                    problem += expr >= lo
        solver = pulp.PULP_CBC_CMD(
            msg=0,
            timeLimit=time_limit,
            gapRel=0.0,  # proven optimality, matching the scipy backend
        )
        status = problem.solve(solver)
        if pulp.LpStatus[status] != "Optimal":
            raise InfeasibleProblemError(
                "placement program has no optimal solution: "
                f"{pulp.LpStatus[status]}"
            )
        values = np.array(
            [float(v.varValue or 0.0) for v in variables], dtype=np.float64
        )
        return Solution(float(pulp.value(problem.objective)), values, "pulp")
