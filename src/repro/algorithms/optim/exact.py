"""An exact tiny-instance MILP optimum, independent of the OPT dynamic program.

:class:`MilpOpt` encodes the full §II-E game over the whole horizon as one
time-expanded mixed-integer program — a *second, independent* optimum used
by the differential test harness against both brute-force enumeration and
:class:`~repro.algorithms.opt.Opt` (which shares no code with this module:
the DP works on bitmask state spaces, this on LP matrices).

Variables per round ``t`` and node ``n``:

* ``a[t,n]``, ``i[t,n]`` — binary active/inactive server indicators with
  ``a + i ≤ 1`` (at most one server per node, §II-B packing);
* ``y[t,p,n]`` — fraction of round ``t``'s demand at access point ``p``
  served by node ``n``, allowed only where ``a[t-1,n] = 1``: round ``t`` is
  served by the configuration left after round ``t-1``, exactly the
  simulator's accounting;
* ``arr[t,n]`` / ``van[t,n]`` / ``m[t]`` — linearised §II-E transition
  pricing: arrivals ``arr ≥ Δoccupancy``, vanishes bounded by
  ``van ≤ o[t-1]`` and ``van ≤ 1 - o[t]``, migrations
  ``m ≤ Σ arr, m ≤ Σ van`` priced ``β·m + c·(Σ arr - m)`` when ``β ≤ c``
  and ``c·Σ arr`` with ``m = 0`` otherwise — the exact rule of
  :func:`~repro.core.transitions.price_transition`.

The optimum equals the true simulated optimum when request routing is
assignment-invariant — the paper's default of linear load with uniform node
strengths, where nearest routing is also cost-minimal routing.  The
returned cost is therefore the *replayed* plan priced with the simulator's
own scalar primitives (:func:`plan_cost`) so that, on tiny instances, it is
bit-for-bit identical to brute-force enumeration.  With binding per-node
``capacities`` the solver objective is returned instead (nearest replay
ignores capacity); it lower-bounds every capacity-feasible strategy and is
itself lower-bounded by the uncapacitated optimum — both tested.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.optim.backends import Program
from repro.algorithms.optim.placement import unit_loads
from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import OfflinePolicy
from repro.core.routing import RoutingResult, route_requests
from repro.core.transitions import price_transition
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive
from repro.workload.base import Trace, as_trace

__all__ = ["MilpOpt", "plan_cost"]

#: Variable-count guard: the time-expanded program is for differential-test
#: sized instances, not production sweeps (use Opt/BeamOpt there).
_DEFAULT_MAX_VARIABLES = 20_000


def plan_cost(
    substrate: Substrate,
    trace: Trace,
    costs: CostModel,
    plan: "list[Configuration]",
    start_node: "int | None" = None,
) -> float:
    """Replay ``plan`` through the simulator's scalar pricing primitives.

    Identical accounting (and float summation order) to the brute-force
    differential enumeration: round ``t``'s requests are served by the
    configuration left after round ``t-1``, then the transition and the new
    configuration's running cost are paid.
    """
    if len(plan) != len(trace):
        raise ValueError(
            f"plan length {len(plan)} does not match horizon {len(trace)}"
        )
    start = substrate.center if start_node is None else int(start_node)
    previous = Configuration.single(start)
    total = 0.0
    for t in range(len(trace)):
        access = route_requests(
            substrate,
            np.asarray(previous.active, dtype=np.int64),
            trace[t],
            costs,
        ).access_cost
        outcome = price_transition(previous, plan[t], costs)
        transition = outcome.migration_cost + outcome.creation_cost
        total += access + transition + costs.running_cost(plan[t])
        previous = plan[t]
    return total


@register_policy("milp-opt", aliases=("ilp-opt",))
class MilpOpt(OfflinePolicy):
    """Offline optimum via one time-expanded MILP (tiny instances).

    Args:
        max_servers: optional bound on occupied (active + inactive) nodes.
        start_node: initial server location (default: the network center).
        require_active: keep ≥ 1 active server every round (OPT's default).
        backend: ``"scipy"`` / ``"pulp"`` / ``"auto"`` (see the backends
            module; pulp needs the ``[opt]`` extra).
        time_limit: per-solve wall-clock limit in seconds.
        node_capacity: uniform per-round per-node capacity when the
            substrate carries no capacity vector.
        max_variables: refuse programs larger than this many variables.
    """

    def __init__(
        self,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        require_active: bool = True,
        backend: str = "scipy",
        time_limit: "float | None" = None,
        node_capacity: "float | None" = None,
        max_variables: int = _DEFAULT_MAX_VARIABLES,
    ) -> None:
        if max_servers is not None and max_servers < 1:
            raise ValueError(f"max_servers must be >= 1, got {max_servers}")
        self._k = max_servers
        self._start_node = start_node
        self._require_active = bool(require_active)
        self._backend = backend
        self._time_limit = (
            None if time_limit is None
            else check_positive("time_limit", time_limit)
        )
        self._node_capacity = (
            None if node_capacity is None
            else check_positive("node_capacity", node_capacity)
        )
        self._max_variables = int(max_variables)

        self._trace: "Trace | None" = None
        self._plan: "list[Configuration] | None" = None
        self._objective: "float | None" = None

    @property
    def name(self) -> str:
        return "MILP-OPT"

    @property
    def solver_objective(self) -> float:
        """The MILP objective value (available after solving)."""
        if self._objective is None:
            raise RuntimeError("MilpOpt has not been solved yet")
        return self._objective

    @property
    def plan(self) -> "list[Configuration]":
        """The optimal configuration per round (after solving)."""
        if self._plan is None:
            raise RuntimeError("MilpOpt has not been solved yet")
        return list(self._plan)

    # -- offline interface -------------------------------------------------------

    def prepare(self, trace: Trace) -> None:
        self._trace = as_trace(trace)
        self._plan = None
        self._objective = None

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        if self._trace is None:
            raise RuntimeError("MilpOpt.prepare(trace) must be called before reset")
        start = (
            substrate.center if self._start_node is None
            else int(self._start_node)
        )
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._solve(substrate, costs, start)
        return Configuration.single(start)

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        return self._plan[t]

    # -- the time-expanded program ----------------------------------------------

    def _capacities(self, substrate: Substrate) -> "np.ndarray | None":
        if substrate.capacities is not None:
            return substrate.capacities
        if self._node_capacity is not None:
            return np.full(substrate.n, self._node_capacity, dtype=np.float64)
        return None

    def _solve(self, substrate: Substrate, costs: CostModel, start: int) -> None:
        if costs.migration_matrix is not None:
            raise NotImplementedError(
                "MilpOpt prices switching with the constant-β model; "
                "migration matrices are not supported"
            )
        trace = self._trace
        n = substrate.n
        horizon = len(trace)
        if horizon == 0:
            self._plan, self._objective = [], 0.0
            return
        capacities = self._capacities(substrate)
        rounds = [np.asarray(trace[t], dtype=np.int64) for t in range(horizon)]

        program = Program()
        # a[t,n], i[t,n]: binary occupancy after round t's decision.
        a = np.empty((horizon, n), dtype=np.int64)
        i = np.empty((horizon, n), dtype=np.int64)
        for t in range(horizon):
            for node in range(n):
                a[t, node] = program.variable(
                    costs.run_active, integer=True
                )
                i[t, node] = program.variable(
                    costs.run_inactive, integer=True
                )
                program.constrain(
                    [(int(a[t, node]), 1.0), (int(i[t, node]), 1.0)], hi=1.0
                )
            serves_next = t + 1 < horizon and rounds[t + 1].size > 0
            if self._require_active or serves_next:
                program.constrain(
                    [(int(a[t, node]), 1.0) for node in range(n)], lo=1.0
                )
            if self._k is not None:
                program.constrain(
                    [(int(a[t, node]), 1.0) for node in range(n)]
                    + [(int(i[t, node]), 1.0) for node in range(n)],
                    hi=float(self._k),
                )

        # Transition pricing between consecutive occupancies (§II-E rules).
        start_occupancy = np.zeros(n)
        start_occupancy[start] = 1.0
        use_migration = costs.migration <= costs.creation
        for t in range(horizon):
            arrival_terms = []
            vanish_terms = []
            for node in range(n):
                arr = program.variable(costs.creation)
                arrival_terms.append((arr, 1.0))
                current = [(int(a[t, node]), 1.0), (int(i[t, node]), 1.0)]
                if t == 0:
                    # previous occupancy is the fixed start configuration
                    program.constrain(
                        [(arr, 1.0)] + [(v, -c) for v, c in current],
                        lo=-float(start_occupancy[node]),
                    )
                else:
                    previous = [
                        (int(a[t - 1, node]), 1.0), (int(i[t - 1, node]), 1.0)
                    ]
                    program.constrain(
                        [(arr, 1.0)]
                        + [(v, -c) for v, c in current]
                        + [(v, c) for v, c in previous],
                        lo=0.0,
                    )
                if use_migration:
                    van = program.variable(0.0)
                    vanish_terms.append((van, 1.0))
                    # van ≤ previous occupancy
                    if t == 0:
                        program.constrain(
                            [(van, 1.0)], hi=float(start_occupancy[node])
                        )
                    else:
                        program.constrain(
                            [(van, 1.0)]
                            + [(int(a[t - 1, node]), -1.0),
                               (int(i[t - 1, node]), -1.0)],
                            hi=0.0,
                        )
                    # van ≤ 1 − current occupancy
                    program.constrain(
                        [(van, 1.0)] + current, hi=1.0
                    )
            if use_migration:
                # m[t] ≤ Σ arr, m[t] ≤ Σ van; objective (β − c)·m rewards
                # matching each arrival with a vanishing donor at β instead
                # of a fresh creation at c — exactly min(arrivals, vanished).
                m = program.variable(
                    costs.migration - costs.creation, ub=float(n)
                )
                program.constrain(
                    [(m, 1.0)] + [(v, -c) for v, c in arrival_terms], hi=0.0
                )
                program.constrain(
                    [(m, 1.0)] + [(v, -c) for v, c in vanish_terms], hi=0.0
                )

        # Access: round t served by the active set left after round t-1.
        per_request = unit_loads(substrate, costs) + costs.wireless_hop
        for t in range(horizon):
            if rounds[t].size == 0:
                continue
            points, counts = np.unique(rounds[t], return_counts=True)
            servers = [start] if t == 0 else list(range(n))
            load_terms: "dict[int, list]" = {node: [] for node in servers}
            for p, point in enumerate(points.tolist()):
                weight = float(counts[p])
                row = []
                for node in servers:
                    y = program.variable(
                        weight * (
                            substrate.distances[point, node]
                            + per_request[node]
                        )
                    )
                    row.append((y, 1.0))
                    load_terms[node].append((y, weight))
                    if t > 0:
                        program.constrain(
                            [(y, 1.0), (int(a[t - 1, node]), -1.0)], hi=0.0
                        )
                program.constrain(row, lo=1.0, hi=1.0)
            if capacities is not None:
                for node in servers:
                    program.constrain(
                        load_terms[node], hi=float(capacities[node])
                    )

        if program.n_variables > self._max_variables:
            raise ValueError(
                f"time-expanded MILP has {program.n_variables} variables "
                f"(limit {self._max_variables}); MilpOpt is for tiny "
                "differential-test instances — use Opt or BeamOpt instead"
            )
        solution = program.solve(
            backend=self._backend, time_limit=self._time_limit
        )
        self._objective = solution.objective
        self._plan = []
        for t in range(horizon):
            active = tuple(
                node for node in range(n) if solution.values[a[t, node]] > 0.5
            )
            inactive = tuple(
                node for node in range(n) if solution.values[i[t, node]] > 0.5
            )
            self._plan.append(Configuration(active, inactive))

    @classmethod
    def solve(
        cls,
        substrate: Substrate,
        trace: Trace,
        costs: "CostModel | None" = None,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        require_active: bool = True,
        backend: str = "scipy",
        time_limit: "float | None" = None,
        node_capacity: "float | None" = None,
    ) -> "tuple[float, list[Configuration]]":
        """Solve an instance and return ``(cost, plan)``.

        Uncapacitated, the cost is the plan *replayed* through the
        simulator's pricing (:func:`plan_cost`) — bit-for-bit comparable to
        brute-force enumeration.  With capacities (on the substrate or via
        ``node_capacity``) the MILP objective is returned instead: the
        capacity-feasible optimum that nearest-routing replay cannot price.
        """
        costs = costs if costs is not None else CostModel.paper_default()
        policy = cls(
            max_servers=max_servers,
            start_node=start_node,
            require_active=require_active,
            backend=backend,
            time_limit=time_limit,
            node_capacity=node_capacity,
        )
        policy.prepare(trace)
        start = substrate.center if start_node is None else int(start_node)
        policy._solve(substrate, costs, start)
        capacitated = (
            substrate.capacities is not None or node_capacity is not None
        )
        if capacitated:
            return policy.solver_objective, policy.plan
        cost = plan_cost(
            substrate, policy._trace, costs, policy.plan, start_node=start
        )
        return cost, policy.plan
