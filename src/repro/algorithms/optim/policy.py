"""ILP/LP placement as an ordinary online :class:`AllocationPolicy`.

:class:`IlpPlacement` is the periodic re-solve strategy of the related work
(Stillwell et al.'s LP/MILP allocation; the ``replacement_interval``
re-solve idiom): it accumulates a demand window and, at every epoch
boundary, solves the placement program of
:mod:`repro.algorithms.optim.placement` for the next active server set —
then *replays* that solution as a plain configuration decision, so it drops
into every sweep, figure, queue and batched path unchanged, and every
adopted transition is priced exactly by the simulator
(:func:`~repro.core.transitions.price_transition`), not by the model's
planning approximation.

Deactivated servers enter the same bounded FIFO
:class:`~repro.core.servercache.InactiveServerCache` the paper's ONBR/ONTH
use (§III), so an oscillating optimum re-activates cached servers for free
instead of paying β/c every epoch.

Solver knobs (``epoch``, ``window``, ``relax``, ``time_limit``,
``backend``) are ordinary constructor parameters, which makes them
:class:`~repro.api.specs.PolicySpec` params — they fold into sweep cache
keys automatically.  The policy consumes no randomness: same spec + seed
give bit-identical ledgers, and paired (CRN) comparisons stay valid.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.algorithms.optim.backends import resolve_backend
from repro.algorithms.optim.placement import build_placement
from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.core.servercache import InactiveServerCache
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive, check_positive_int

__all__ = ["IlpPlacement"]


@register_policy("ilp", aliases=("optim", "lp"))
class IlpPlacement(AllocationPolicy):
    """Periodic re-solve ILP (or LP-relaxation) placement.

    Args:
        epoch: re-solve every ``epoch`` rounds (the paper's epoch idiom).
        window: demand window in rounds fed to each solve; ``None`` uses
            exactly the rounds since the previous solve.
        relax: solve the LP relaxation and round deterministically instead
            of the integer program (faster; a lower-bound-guided heuristic).
        time_limit: per-solve wall-clock limit in seconds (``None`` = none).
        backend: ``"scipy"`` (built-in), ``"pulp"`` (the ``[opt]`` extra) or
            ``"auto"``; an unavailable ``"pulp"`` raises a graceful
            :class:`ImportError` at construction naming the extra.
        max_servers: optional fleet-size bound per solve.
        start_node: initial server location (default: the network center).
        cache_size: inactive-server FIFO capacity (§III; default 3).
        cache_expiry: epochs before a cached server expires (default 20).
        node_capacity: uniform per-round per-node capacity used when the
            substrate itself carries no capacity vector (lets spec-driven
            sweeps exercise capacitated placement on any topology).
    """

    def __init__(
        self,
        epoch: int = 20,
        window: "int | None" = None,
        relax: bool = False,
        time_limit: "float | None" = None,
        backend: str = "scipy",
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        cache_size: int = 3,
        cache_expiry: int = 20,
        node_capacity: "float | None" = None,
    ) -> None:
        self._epoch = check_positive_int("epoch", epoch)
        self._window = (
            None if window is None else check_positive_int("window", window)
        )
        self._relax = bool(relax)
        self._time_limit = (
            None if time_limit is None
            else check_positive("time_limit", time_limit)
        )
        self._backend = backend
        resolve_backend(backend)  # graceful ImportError / ValueError now
        if max_servers is not None and max_servers < 1:
            raise ValueError(f"max_servers must be >= 1, got {max_servers}")
        self._max_servers = max_servers
        self._start_node = start_node
        self._cache_size = check_positive_int("cache_size", cache_size)
        self._cache_expiry = check_positive_int("cache_expiry", cache_expiry)
        self._node_capacity = (
            None if node_capacity is None
            else check_positive("node_capacity", node_capacity)
        )

        self._substrate: "Substrate | None" = None
        self._costs: "CostModel | None" = None
        self._config: "Configuration | None" = None
        self._cache: "InactiveServerCache | None" = None
        self._history: "deque[np.ndarray] | None" = None
        self._rounds_in_epoch = 0
        self._capacities: "np.ndarray | None" = None

    @property
    def name(self) -> str:
        return "LP" if self._relax else "ILP"

    # -- policy interface --------------------------------------------------------

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        if costs.migration_matrix is not None:
            raise NotImplementedError(
                "IlpPlacement prices switching with the constant-β model; "
                "migration matrices are not supported"
            )
        start = (
            substrate.center if self._start_node is None
            else int(self._start_node)
        )
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._substrate = substrate
        self._costs = costs
        self._capacities = self._resolve_capacities(substrate)
        self._cache = InactiveServerCache(self._cache_size, self._cache_expiry)
        self._history = deque(maxlen=self._window or self._epoch)
        self._rounds_in_epoch = 0
        self._config = Configuration.single(start)
        return self._config

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        self._history.append(np.asarray(requests, dtype=np.int64).copy())
        self._rounds_in_epoch += 1
        if self._rounds_in_epoch < self._epoch:
            return self._config
        self._rounds_in_epoch = 0
        self._end_epoch()
        if self._window is None:
            self._history.clear()
        return self._config

    # -- the epoch solve ---------------------------------------------------------

    def _resolve_capacities(self, substrate: Substrate) -> "np.ndarray | None":
        if substrate.capacities is not None:
            return substrate.capacities
        if self._node_capacity is not None:
            return np.full(substrate.n, self._node_capacity, dtype=np.float64)
        return None

    def _end_epoch(self) -> None:
        cache = self._cache
        cache.tick_epoch()  # expired servers simply leave use
        demand = (
            np.concatenate(list(self._history))
            if self._history else np.zeros(0, dtype=np.int64)
        )
        if demand.size == 0:
            # nothing observed: keep the fleet, just age the cache
            self._config = Configuration(self._config.active, cache.nodes)
            return

        occupied = frozenset(self._config.active) | frozenset(cache.nodes)
        model = build_placement(
            self._substrate,
            self._costs,
            demand,
            window_rounds=len(self._history),
            epoch_rounds=self._epoch,
            occupied=occupied,
            capacities=self._capacities,
            max_servers=self._max_servers,
        )
        solution = model.program.solve(
            backend=self._backend,
            relax=self._relax,
            time_limit=self._time_limit,
        )
        new_active = model.active_from(solution.values, self._relax)

        for node in new_active:
            cache.remove(node)  # re-activating a cached server is free
        for node in self._config.active:
            if node not in new_active:
                cache.push(node)  # deactivate into the FIFO (may evict)
        self._config = Configuration(new_active, cache.nodes)
