"""Optimizer-backed placement policies (ILP/LP) — the related-work strategies.

The paper's own policies are threshold/work-function heuristics; the related
work (Stillwell et al.'s LP/MILP virtual-cluster allocation, Stolyar's
placement under packing constraints) solves placement as a mathematical
program instead.  This package brings that family into the reproduction:

* :class:`~repro.algorithms.optim.policy.IlpPlacement` (registered as
  ``ilp``, aliases ``optim``/``lp``) — an *online* periodic re-solve
  policy: every ``epoch`` rounds it solves one capacitated placement MILP
  (or its LP relaxation with ``relax=True``) over a demand window and
  replays the solution as an ordinary configuration decision;
* :class:`~repro.algorithms.optim.exact.MilpOpt` (registered as
  ``milp-opt``) — an *offline* exact optimum over the whole horizon as a
  single time-expanded MILP, the independent second optimum the
  differential test harness compares against brute force and the OPT DP.

Solving runs on :func:`scipy.optimize.milp` (HiGHS) out of the box; the
optional ``[opt]`` extra (``pip install
'repro-flexible-server-allocation[opt]'``) adds a `PuLP
<https://coin-or.github.io/pulp/>`_/CBC backend selected with
``backend="pulp"`` — without the extra that selection raises a graceful
:class:`ImportError` naming the install command.
"""

from repro.algorithms.optim.backends import (
    BACKENDS,
    InfeasibleProblemError,
    Program,
    Solution,
    have_pulp,
    resolve_backend,
)
from repro.algorithms.optim.exact import MilpOpt, plan_cost
from repro.algorithms.optim.placement import (
    PlacementModel,
    build_placement,
    round_fractional,
    unit_loads,
)
from repro.algorithms.optim.policy import IlpPlacement

__all__ = [
    "BACKENDS",
    "IlpPlacement",
    "InfeasibleProblemError",
    "MilpOpt",
    "PlacementModel",
    "Program",
    "Solution",
    "build_placement",
    "have_pulp",
    "plan_cost",
    "resolve_backend",
    "round_fractional",
    "unit_loads",
]
