"""Beam-search offline planner — the "sampling heuristic" OPT of §IV-B.

The exact dynamic program of :class:`~repro.algorithms.opt.Opt` enumerates
all ``3^n`` configurations, which the paper concedes limits it to small
(line) graphs: "clustering or sampling heuristics may be used to speed up
the computations (which may come at a loss of allocation quality)".

:class:`BeamOpt` is that heuristic, made concrete: the same round-by-round
recurrence, but instead of the full state space it keeps only the
``beam_width`` cheapest states per round, and instead of all placements it
considers a *generated* candidate pool around the surviving states — stay,
single-server moves to the round's demand hot nodes, activations,
deactivations and single creations. Properties:

* with a wide enough beam on a small graph it recovers the exact optimum
  (tested against :class:`Opt`);
* its cost is always an upper bound on OPT and a valid offline comparator
  for OFFSTAT-style studies on graphs far beyond OPT's reach (hundreds of
  nodes).
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import OfflinePolicy
from repro.core.routing import RoutingResult, route_requests
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive_int

__all__ = ["BeamOpt"]

#: Demand hot nodes considered as migration/creation targets per round.
_TARGETS_PER_ROUND = 6
#: Migration sources considered per target (farthest-first).
_MOVE_SOURCES = 3


@register_policy("beamopt")
class BeamOpt(OfflinePolicy):
    """Offline beam-search allocation planner (§IV-B sampling heuristic).

    Args:
        beam_width: states kept per round; larger = closer to OPT, slower.
        max_servers: optional cap on simultaneous in-use servers.
        start_node: initial server location (``None`` = network center).
    """

    def __init__(
        self,
        beam_width: int = 64,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
    ) -> None:
        self._beam_width = check_positive_int("beam_width", beam_width)
        if max_servers is not None:
            max_servers = check_positive_int("max_servers", max_servers)
        self._k = max_servers
        self._start_node = start_node
        self._trace: "Trace | None" = None
        self._plan: "list[Configuration] | None" = None
        self._planned_cost: "float | None" = None

    @property
    def name(self) -> str:
        return f"BEAM-OPT({self._beam_width})"

    @property
    def planned_cost(self) -> float:
        """The planner's cost estimate (equals the simulated total; tested)."""
        if self._planned_cost is None:
            raise RuntimeError("BeamOpt has not been solved yet")
        return self._planned_cost

    @property
    def plan(self) -> list[Configuration]:
        """Chosen configuration per round (after solving)."""
        if self._plan is None:
            raise RuntimeError("BeamOpt has not been solved yet")
        return list(self._plan)

    # -- offline interface -----------------------------------------------------

    def prepare(self, trace: Trace) -> None:
        self._trace = trace
        self._plan = None
        self._planned_cost = None

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        if self._trace is None:
            raise RuntimeError("BeamOpt.prepare(trace) must be called before reset")
        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._solve(substrate, costs, start)
        return Configuration.single(start)

    def decide(
        self, t: int, requests: np.ndarray, routing: RoutingResult
    ) -> Configuration:
        return self._plan[t]

    # -- the beam search -----------------------------------------------------

    def _solve(self, substrate: Substrate, costs: CostModel, start: int) -> None:
        # States are (active frozenset, inactive frozenset) — the FIFO order
        # of the cache is irrelevant to planning costs, and lightweight
        # frozensets keep the inner loop free of Configuration validation.
        gamma0 = (frozenset((start,)), frozenset())
        beam: dict[tuple, float] = {gamma0: 0.0}
        parents: list[dict[tuple, tuple]] = []
        # Offline privilege: the whole trace's busiest nodes are standing
        # move/create targets, so the beam can also build the strong static
        # fleets OFFSTAT would pick when flexibility does not pay.
        global_hot = self._global_hot_nodes(substrate)
        run_a, run_i = costs.run_active, costs.run_inactive

        for t, requests in enumerate(self._trace):
            access = {
                state: self._access(substrate, costs, state[0], requests)
                for state in beam
            }
            candidates: dict[tuple, tuple[float, tuple]] = {}
            round_hot = self._hot_nodes(substrate, requests)
            targets = list(dict.fromkeys(round_hot + global_hot))
            for state, sunk in beam.items():
                served = sunk + access[state]
                if not np.isfinite(served):
                    continue
                act, inact = state
                # Each successor carries the §II-C delta cost of its single
                # change (stay/activate/deactivate/drop = 0, migrate =
                # min(β, c), create = c) — cheaper than re-deriving it from
                # set differences for every candidate.
                for nxt_act, nxt_inact, delta in self._successors(
                    substrate, costs, act, inact, targets
                ):
                    cost = (
                        served + delta
                        + run_a * len(nxt_act) + run_i * len(nxt_inact)
                    )
                    key = (nxt_act, nxt_inact)
                    best = candidates.get(key)
                    if best is None or cost < best[0]:
                        candidates[key] = (cost, state)
            if not candidates:
                raise RuntimeError(
                    f"beam died at round {t} (no feasible successor)"
                )
            kept = self._select(candidates)
            beam = {state: cost for state, (cost, _parent) in kept}
            parents.append({state: parent for state, (_cost, parent) in kept})

        final = min(beam, key=beam.get)
        self._planned_cost = float(beam[final])

        states: list[tuple] = [final]
        for t in range(len(self._trace) - 1, 0, -1):
            states.append(parents[t][states[-1]])
        states.reverse()
        self._plan = [
            Configuration(tuple(sorted(act)), tuple(sorted(inact)))
            for act, inact in states
        ]

    def _select(
        self, candidates: dict
    ) -> list[tuple[tuple, tuple[float, tuple]]]:
        """Stratified beam cut: reserve slots per fleet size, then top up.

        A plain top-``beam_width`` cut starves growth: a configuration that
        just paid a creation cost is dominated for many rounds before its
        access savings accrue, so it would be evicted and the beam could
        never discover larger fleets. Keeping the best few states of *every*
        fleet size preserves those paths at negligible extra width.
        """
        ranked = sorted(candidates.items(), key=lambda item: item[1][0])
        by_size: dict[int, list] = {}
        for item in ranked:
            by_size.setdefault(len(item[0][0]), []).append(item)

        per_stratum = max(2, self._beam_width // max(len(by_size), 1))
        kept = []
        chosen = set()
        for size_rank in by_size.values():
            for item in size_rank[:per_stratum]:
                kept.append(item)
                chosen.add(item[0])
        for item in ranked:  # fill remaining slots by global rank
            if len(kept) >= self._beam_width:
                break
            if item[0] not in chosen:
                kept.append(item)
                chosen.add(item[0])
        return kept[: max(self._beam_width, len(by_size) * 2)]

    @staticmethod
    def _access(
        substrate: Substrate,
        costs: CostModel,
        active: frozenset,
        requests: np.ndarray,
    ) -> float:
        if requests.size == 0:
            return 0.0
        if not active:
            return float("inf")
        return route_requests(
            substrate, np.fromiter(active, dtype=np.int64), requests, costs
        ).access_cost

    @staticmethod
    def _hot_nodes(substrate: Substrate, requests: np.ndarray) -> list[int]:
        """The round's busiest access nodes — natural move/create targets."""
        if requests.size == 0:
            return []
        counts = np.bincount(requests, minlength=substrate.n)
        hot = np.argsort(counts, kind="stable")[::-1]
        hot = hot[counts[hot] > 0][:_TARGETS_PER_ROUND]
        return [int(v) for v in hot]

    def _global_hot_nodes(self, substrate: Substrate) -> list[int]:
        """The trace's busiest access nodes overall (standing targets)."""
        histogram = self._trace.node_histogram(substrate.n)
        hot = np.argsort(histogram, kind="stable")[::-1]
        hot = hot[histogram[hot] > 0][:_TARGETS_PER_ROUND]
        return [int(v) for v in hot]

    def _successors(
        self,
        substrate: Substrate,
        costs: CostModel,
        act: frozenset,
        inact: frozenset,
        targets: list[int],
    ) -> list[tuple[frozenset, frozenset, float]]:
        """Single-change neighbourhood of a state, with per-change cost.

        Yields ``(new_active, new_inactive, transition_cost)`` triples; the
        costs follow §II-C exactly because every successor differs by one
        priced operation (verified against ``price_transition`` in tests).
        """
        move_cost = min(costs.migration, costs.creation)
        create_cost = costs.creation
        out = [(act, inact, 0.0)]
        occupied = act | inact
        free_targets = [u for u in targets if u not in occupied]
        limit = self._k if self._k is not None else substrate.n

        distances = substrate.distances
        for u in free_targets:
            target_set = frozenset((u,))
            # Moving *which* server matters less than moving *to* u (the
            # fleet is interchangeable except for coverage); consider the
            # few servers farthest from u — the likeliest to be redundant
            # there — to keep the branching factor independent of k.
            if len(act) > _MOVE_SOURCES:
                sources = sorted(
                    act, key=lambda s: -distances[s, u]
                )[:_MOVE_SOURCES]
            else:
                sources = act
            for src_node in sources:
                out.append((act - {src_node} | target_set, inact, move_cost))
            if len(act) + len(inact) < limit:
                out.append((act | target_set, inact, create_cost))

        for node in inact:  # activate a cached server in place (free)
            out.append((act | {node}, inact - {node}, 0.0))

        if len(act) >= 2:
            for node in act:  # deactivate into the cache / drop entirely
                remaining = act - {node}
                out.append((remaining, inact | {node}, 0.0))
                out.append((remaining, inact, 0.0))
        return out
