"""Allocation strategies: the online algorithms of §III and offline of §IV.

Online (no knowledge of future requests):

* :class:`OnConf` — configuration counters, the generic/conceptual
  algorithm (exponential configuration space; small instances only);
* :class:`OnBR` — sequential best-response on an epoch threshold θ, with
  the "fixed" (θ = 2c) and "dyn" (θ = 2c/ℓ) variants of §V-B;
* :class:`OnTH` — the two-threshold algorithm (small epochs migrate or
  deactivate, large epochs add servers);
* :class:`IlpPlacement` — optimizer-backed periodic re-solve placement
  (ILP or LP relaxation; the related work's strategy family, §VI).

* :class:`WorkFunctionPolicy` — the metrical-task-system work function
  algorithm (§VI related work), the theory-grade online comparator.

Offline (full request sequence known ahead of time):

* :class:`Opt` — the exact dynamic program over configurations;
* :class:`MilpOpt` — the same optimum as one time-expanded MILP (tiny
  instances; the differential harness's independent second optimum);
* :class:`BeamOpt` — the §IV-B sampling heuristic (beam search) for graphs
  beyond OPT's exponential state space;
* :class:`OffBR` / :class:`OffTH` — best-response on the *upcoming* epoch;
* :class:`OffStat` — best static placement and fleet size (no flexibility);
* :class:`StaticPolicy` — any fixed configuration as a baseline.
"""

from repro.algorithms.beamopt import BeamOpt
from repro.algorithms.offline_br import OffBR, OffTH
from repro.algorithms.offstat import OffStat
from repro.algorithms.onbr import OnBR
from repro.algorithms.onconf import OnConf
from repro.algorithms.onth import OnTH
from repro.algorithms.opt import Opt, per_round_access_costs
from repro.algorithms.optim import IlpPlacement, MilpOpt
from repro.algorithms.static import StaticPolicy
from repro.algorithms.workfunction import WorkFunctionPolicy

__all__ = [
    "OnConf",
    "OnBR",
    "OnTH",
    "IlpPlacement",
    "WorkFunctionPolicy",
    "Opt",
    "MilpOpt",
    "BeamOpt",
    "OffBR",
    "OffTH",
    "OffStat",
    "StaticPolicy",
    "per_round_access_costs",
]
