"""ONTH — the two-level threshold online algorithm of §III-A.

ONTH removes ONBR's main tuning knob by splitting decisions across two
epoch granularities:

* a **small epoch** ends when the cost accumulated in the current
  configuration reaches ``y·β`` (y = 2 in the paper's simulations). At the
  boundary ONTH takes the cheapest of: (1) no change, (2) migrating one
  server, (3) deactivating one server — evaluated on the passed small
  epoch including access, migration and running costs. Servers are *never
  added* here.
* a **large epoch** ends when access cost outgrows running cost; the
  paper's concrete trigger is ``Costacc/(kcur + 1) − Costrun > c`` over the
  accumulated large-epoch costs, with ``kcur`` the current number of active
  servers. Then a new server is activated at the position that is optimal
  for the access cost of the passed large epoch.

Inactive servers use the same FIFO cache as ONBR (size 3); entries expire
after ``x = 20`` small epochs. With constant demand both triggers eventually
stop firing, so ONTH converges to a stable configuration.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._families import (
    apply_choice,
    best_choice,
    enumerate_choices,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.api.registry import register_policy
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.core.servercache import InactiveServerCache
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive, check_positive_int

__all__ = ["OnTH"]


@register_policy("onth")
class OnTH(AllocationPolicy):
    """Online two-threshold allocation (ONTH, §III-A).

    Args:
        small_epoch_factor: y in the small-epoch threshold ``y·β``
            (paper: 2).
        cache_size: capacity of the inactive-server FIFO cache.
        cache_expiry: cache entries expire after this many small epochs (x).
        start_node: initial server location; ``None`` = network center.
        max_servers: optional cap ``k`` on active servers; the large-epoch
            trigger is suppressed at the cap.
    """

    def __init__(
        self,
        small_epoch_factor: float = 2.0,
        cache_size: int = 3,
        cache_expiry: int = 20,
        start_node: "int | None" = None,
        max_servers: "int | None" = None,
    ) -> None:
        self._small_factor = check_positive("small_epoch_factor", small_epoch_factor)
        self._cache_size = check_positive_int("cache_size", cache_size)
        self._cache_expiry = check_positive_int("cache_expiry", cache_expiry)
        self._start_node = start_node
        if max_servers is not None:
            max_servers = check_positive_int("max_servers", max_servers)
        self._max_servers = max_servers

        self._substrate: "Substrate | None" = None
        self._costs: "CostModel | None" = None
        self._config = Configuration.empty()
        self._cache = InactiveServerCache(cache_size, cache_expiry)
        self._small_batch: "RequestBatch | None" = None
        self._large_batch: "RequestBatch | None" = None
        self._gather = None  # DistanceGather bound for a batched run
        self._small_cost = 0.0
        self._large_access = 0.0
        self._large_running = 0.0
        self._current_round = -1

    @property
    def name(self) -> str:
        return "ONTH"

    @property
    def configuration(self) -> Configuration:
        """The policy's current configuration (for inspection/tests)."""
        return self._config

    # -- policy interface --------------------------------------------------------

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        self._substrate = substrate
        self._costs = costs
        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._config = Configuration.single(start)
        self._cache = InactiveServerCache(self._cache_size, self._cache_expiry)
        if self._gather is not None and self._gather.matches(substrate, costs):
            self._small_batch = self._gather.new_window()
            self._large_batch = self._gather.new_window()
        else:
            self._small_batch = RequestBatch(substrate, costs)
            self._large_batch = RequestBatch(substrate, costs)
        self._small_cost = 0.0
        self._large_access = 0.0
        self._large_running = 0.0
        self._current_round = -1
        return self._config

    def bind_batch_gather(self, gather) -> bool:
        # Exact-type guard: OFFTH subclasses this policy with lookahead
        # windows the gather cannot serve, so only plain ONTH opts in.
        # ONTH consumes no randomness.
        if type(self) is not OnTH:
            return False
        self._gather = gather
        return True

    def unbind_batch_gather(self) -> None:
        self._gather = None

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        self._current_round = t
        running = self._costs.running_cost(self._config)
        self._small_batch.add_round(requests)
        self._large_batch.add_round(requests)
        self._small_cost += routing.access_cost + running
        self._large_access += routing.access_cost
        self._large_running += running

        if self._large_epoch_triggered():
            self._end_large_epoch()
            return self._config

        if self._small_cost >= self._small_factor * self._costs.migration:
            self._end_small_epoch()
        return self._config

    # -- large epochs: when to add a server ---------------------------------------

    def _large_epoch_triggered(self) -> bool:
        if self._max_servers is not None and self._config.n_active >= self._max_servers:
            return False
        if self._config.n_active >= self._substrate.n:
            return False
        k_cur = self._config.n_active
        return (
            self._large_access / (k_cur + 1) - self._large_running
            > self._costs.creation
        )

    def _large_decision_batch(self) -> RequestBatch:
        """Window used to position the new server (OFFTH overrides: §IV-B)."""
        return self._large_batch

    def _end_large_epoch(self) -> None:
        """Activate one more server at the access-optimal position (§III-A)."""
        choices = [
            ch
            for ch in enumerate_choices(
                self._large_decision_batch(),
                self._config,
                self._cache,
                self._costs,
                allow_migrate=False,
                allow_deactivate=False,
            )
            if ch.kind in ("activate", "create")
        ]
        if choices:
            chosen = min(choices, key=lambda ch: (ch.access, ch.priority, ch.target))
            self._config = apply_choice(chosen, self._config, self._cache)
        self._large_batch.clear()
        self._large_access = 0.0
        self._large_running = 0.0
        # The configuration changed; restart the small epoch as well so its
        # accumulated cost refers to one configuration, as §III-A assumes.
        self._small_batch.clear()
        self._small_cost = 0.0

    # -- small epochs: migrate / deactivate ----------------------------------------

    def _small_decision_batch(self) -> RequestBatch:
        """Window the small-epoch best response evaluates (OFFTH overrides)."""
        return self._small_batch

    def _end_small_epoch(self) -> None:
        batch = self._small_decision_batch()
        choices = enumerate_choices(
            batch,
            self._config,
            self._cache,
            self._costs,
            allow_add=False,
        )
        chosen = best_choice(choices, batch.n_rounds)
        self._config = apply_choice(chosen, self._config, self._cache)

        expired = self._cache.tick_epoch()
        if expired:
            self._config = self._config.replace_inactive(self._cache.nodes)

        self._small_batch.clear()
        self._small_cost = 0.0
