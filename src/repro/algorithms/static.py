"""Static allocation baseline: a fixed configuration for the whole run.

The paper's central question is the *benefit of flexibility*: how much worse
is a system that never migrates or reallocates? :class:`StaticPolicy` wraps
any fixed placement so it can run through the same simulator and ledger as
the adaptive strategies. OFFSTAT (§V-B) builds on this: it chooses the best
static placement offline (see :mod:`repro.algorithms.offstat`).

The policy starts at ``start`` (default: one server at the network center,
like the online algorithms) and switches to its target configuration in the
first round, paying the corresponding creation/migration costs — so static
provisioning is charged for building its fleet, consistent with the online
algorithms that pay ``c`` per server they add.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.topology.substrate import Substrate

__all__ = ["StaticPolicy"]


@register_policy("static")
class StaticPolicy(AllocationPolicy):
    """Serve every round from one fixed configuration.

    Args:
        target: the static configuration to hold for the entire run.
        start: initial configuration ``γ0``; ``None`` places one active
            server at the network center. Pass ``start=target`` to model a
            pre-provisioned fleet whose build-out is not charged.
        label: optional display name (e.g. ``"OFFSTAT"``).
    """

    def __init__(
        self,
        target: Configuration,
        start: "Configuration | None" = None,
        label: "str | None" = None,
    ) -> None:
        if target.n_active < 1:
            raise ValueError("a static configuration needs at least one active server")
        self._target = target
        self._start = start
        self._label = label

    @property
    def name(self) -> str:
        return self._label or "STATIC"

    @property
    def target(self) -> Configuration:
        """The held configuration."""
        return self._target

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        for node in self._target.occupied:
            if node >= substrate.n:
                raise ValueError(
                    f"static configuration references node {node} outside the substrate"
                )
        if self._start is not None:
            return self._start
        return Configuration.single(substrate.center)

    def bind_batch_gather(self, gather) -> bool:
        # Stateless: the policy keeps no request window, so there is nothing
        # to bind — opting in simply tells the batched simulator the decide
        # loop is rng-free. Subclasses may override decide, so only the
        # exact type opts in.
        return type(self) is StaticPolicy

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        return self._target
