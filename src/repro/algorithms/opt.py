"""OPT — the optimal offline dynamic program of §IV-A.

OPT fills the matrix ``opt[time][configuration]``: the cheapest cost of any
migration/allocation path that serves the requests of rounds ``0..t`` and
leaves the system in configuration γ after round ``t``. The recurrence uses
the optimal-substructure property stated in the paper:

    opt[t][γ] = min over γ' of
        opt[t-1][γ'] + Costacc(σt, γ') + Cost(γ' → γ) + Costrun(γ)

(with our simulator's exact ordering: round ``t``'s requests are served by
the configuration left at the end of round ``t-1``, then the system
transitions and pays running costs — see :mod:`repro.core.simulator`).
``opt[-1]`` is 0 at the fixed start configuration γ0 and ∞ elsewhere; the
optimal strategy is recovered by backtracking argmins from the cheapest
final configuration.

The state space is every assignment of {not-in-use, inactive, active} to
the ``n`` nodes with at most ``k`` servers in use — ``3^n`` states when k is
unbounded — which is why the paper "constrains itself to line graphs" (small
``n``) for OPT experiments. States are bit-mask encoded and both the
``S × S`` transition-cost matrix and the per-round access vectors are built
with vectorised numpy (``bitwise_count`` popcounts), so a 5-node, 200-round
instance solves in milliseconds.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

import numpy as np

from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import OfflinePolicy
from repro.core.routing import RoutingResult
from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = ["Opt", "per_round_access_costs"]

#: Hard cap on enumerated states; 3^7 = 2187 states → a 2187² float64
#: transition matrix (~38 MB) is the largest we allow by default.
_DEFAULT_MAX_STATES = 2500


def per_round_access_costs(
    substrate: Substrate,
    costs: CostModel,
    trace: Trace,
    active: np.ndarray,
) -> np.ndarray:
    """Access cost of every round of ``trace`` under fixed ``active`` servers.

    Vectorised over the whole trace (nearest routing, exact per-round
    loads). Rounds with requests cost ``+inf`` when ``active`` is empty;
    empty rounds cost 0.
    """
    n_rounds = len(trace)
    sizes = trace.requests_per_round()
    result = np.zeros(n_rounds, dtype=np.float64)
    if active.size == 0:
        result[sizes > 0] = np.inf
        return result
    flat = (
        np.concatenate(list(trace.rounds))
        if n_rounds
        else np.zeros(0, dtype=np.int64)
    )
    if flat.size == 0:
        return result

    round_ids = np.repeat(np.arange(n_rounds), sizes)
    distances = substrate.distances[np.ix_(active, flat)]
    assignment = np.argmin(distances, axis=0)
    per_request = distances[assignment, np.arange(flat.size)]
    latency = np.bincount(round_ids, weights=per_request, minlength=n_rounds)

    counts = np.zeros((n_rounds, active.size), dtype=np.int64)
    np.add.at(counts, (round_ids, assignment), 1)
    loads = costs.load(substrate.strengths[active], counts).sum(axis=1)

    return latency + loads + costs.wireless_hop * sizes


@lru_cache(maxsize=32)
def _state_space(n: int, k: "int | None") -> tuple[np.ndarray, np.ndarray]:
    """All (active-mask, inactive-mask) states with at most ``k`` servers."""
    act_masks, inact_masks = [], []
    limit = n if k is None else min(k, n)
    for assignment in product((0, 1, 2), repeat=n):
        servers = sum(1 for s in assignment if s != 0)
        if servers > limit:
            continue
        act = sum(1 << i for i, s in enumerate(assignment) if s == 2)
        inact = sum(1 << i for i, s in enumerate(assignment) if s == 1)
        act_masks.append(act)
        inact_masks.append(inact)
    return (
        np.asarray(act_masks, dtype=np.uint32),
        np.asarray(inact_masks, dtype=np.uint32),
    )


def _transition_matrix(
    act: np.ndarray, inact: np.ndarray, beta: float, creation: float
) -> np.ndarray:
    """Vectorised ``Cost(γ_i → γ_j)`` for all state pairs (constant β)."""
    occ = act | inact
    # Broadcasting: rows = source state i, columns = target state j.
    # bitwise_count yields uint8 — promote before arithmetic. Fresh inactive
    # nodes join the donor matching (migrate-then-deactivate is legal and
    # free beyond β), mirroring price_transition.
    arrivals = np.bitwise_count((act | inact)[None, :] & ~occ[:, None]).astype(np.int64)
    vanished = np.bitwise_count(occ[:, None] & ~(occ[None, :])).astype(np.int64)
    if beta <= creation:
        migrations = np.minimum(arrivals, vanished)
    else:
        migrations = np.zeros_like(arrivals)
    creations = arrivals - migrations
    return beta * migrations + creation * creations


def _mask_to_nodes(mask: int) -> tuple[int, ...]:
    return tuple(i for i in range(mask.bit_length()) if mask >> i & 1)


@register_policy("opt")
class Opt(OfflinePolicy):
    """Optimal offline allocation via dynamic programming (OPT, §IV-A).

    Args:
        max_servers: the paper's ``k`` (at most this many servers in use,
            active plus inactive); ``None`` = unbounded (up to ``n``).
        start_node: location of the single initial active server (γ0);
            ``None`` = network center.
        max_states: guard on the enumerated state-space size.
        allow_inactive: if ``False``, restrict states to active-only
            configurations (2^n instead of 3^n) — a documented speed/quality
            trade-off useful on slightly larger graphs.
        require_active: keep at least one *active* server in every round
            (default). The service must stay deployed — otherwise OPT would
            shave one round of running cost by dropping the fleet after the
            final request, which no online policy may mirror.
    """

    def __init__(
        self,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        max_states: int = _DEFAULT_MAX_STATES,
        allow_inactive: bool = True,
        require_active: bool = True,
    ) -> None:
        if max_servers is not None and max_servers < 1:
            raise ValueError(f"max_servers must be >= 1, got {max_servers}")
        self._k = max_servers
        self._start_node = start_node
        self._max_states = max_states
        self._allow_inactive = bool(allow_inactive)
        self._require_active = bool(require_active)

        self._trace: "Trace | None" = None
        self._plan: "list[Configuration] | None" = None
        self._optimal_cost: "float | None" = None

    @property
    def name(self) -> str:
        return "OPT"

    @property
    def optimal_cost(self) -> float:
        """The DP's total cost (available after the plan is computed)."""
        if self._optimal_cost is None:
            raise RuntimeError("OPT has not been solved yet (run reset/simulate first)")
        return self._optimal_cost

    @property
    def plan(self) -> list[Configuration]:
        """The optimal configuration per round (after solving)."""
        if self._plan is None:
            raise RuntimeError("OPT has not been solved yet (run reset/simulate first)")
        return list(self._plan)

    # -- offline interface -----------------------------------------------------

    def prepare(self, trace: Trace) -> None:
        self._trace = trace
        self._plan = None
        self._optimal_cost = None

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        if self._trace is None:
            raise RuntimeError("OPT.prepare(trace) must be called before reset")
        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._solve(substrate, costs, start)
        return Configuration.single(start)

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        return self._plan[t]

    # -- the dynamic program -----------------------------------------------------

    def _solve(self, substrate: Substrate, costs: CostModel, start: int) -> None:
        if costs.migration_matrix is not None:
            raise NotImplementedError(
                "OPT currently supports the paper's constant-β migration model"
            )
        act, inact = _state_space(substrate.n, self._k)
        if not self._allow_inactive:
            keep = inact == 0
            act, inact = act[keep], inact[keep]
        if self._require_active:
            keep = act != 0
            act, inact = act[keep], inact[keep]
        n_states = act.size
        if n_states > self._max_states:
            raise ValueError(
                f"OPT state space has {n_states} states for n={substrate.n}, "
                f"k={self._k or substrate.n}; limit is {self._max_states}. "
                "The paper runs OPT on small (line) graphs only (§V-A)."
            )

        transition = _transition_matrix(act, inact, costs.migration, costs.creation)
        run = (
            costs.run_active * np.bitwise_count(act)
            + costs.run_inactive * np.bitwise_count(inact)
        ).astype(np.float64)

        # Per-round access cost for every state, via its active set.
        trace = self._trace
        n_rounds = len(trace)
        unique_act, act_index = np.unique(act, return_inverse=True)
        access_by_mask = np.empty((n_rounds, unique_act.size), dtype=np.float64)
        for m, mask in enumerate(unique_act.tolist()):
            nodes = np.asarray(_mask_to_nodes(mask), dtype=np.int64)
            access_by_mask[:, m] = per_round_access_costs(
                substrate, costs, trace, nodes
            )
        access = access_by_mask[:, act_index]  # (rounds, states)

        start_state = self._find_state(act, inact, start)
        value = np.full(n_states, np.inf)
        value[start_state] = 0.0
        parents = np.empty((n_rounds, n_states), dtype=np.int32)

        for t in range(n_rounds):
            served = value + access[t]  # pay round t with the previous state
            reachable = served[:, None] + transition
            parents[t] = np.argmin(reachable, axis=0)
            value = reachable[parents[t], np.arange(n_states)] + run

        final = int(np.argmin(value))
        self._optimal_cost = float(value[final])
        if not np.isfinite(self._optimal_cost):
            raise RuntimeError(
                "OPT found no feasible plan (every path has infinite cost)"
            )

        # Backtrack the optimal configuration sequence.
        plan_states = np.empty(n_rounds, dtype=np.int64)
        state = final
        for t in range(n_rounds - 1, -1, -1):
            plan_states[t] = state
            state = int(parents[t, state])
        self._plan = [
            Configuration(
                _mask_to_nodes(int(act[s])), _mask_to_nodes(int(inact[s]))
            )
            for s in plan_states
        ]

    @staticmethod
    def _find_state(act: np.ndarray, inact: np.ndarray, start: int) -> int:
        mask = np.uint32(1 << start)
        matches = np.flatnonzero((act == mask) & (inact == 0))
        if matches.size != 1:
            raise RuntimeError(f"start state for node {start} not found")
        return int(matches[0])

    @classmethod
    def solve(
        cls,
        substrate: Substrate,
        trace: Trace,
        costs: "CostModel | None" = None,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        allow_inactive: bool = True,
        max_states: int = _DEFAULT_MAX_STATES,
        require_active: bool = True,
    ) -> tuple[float, list[Configuration]]:
        """Convenience: solve an instance and return ``(cost, plan)``.

        Equivalent to running the policy through the simulator (the DP value
        equals the simulated ledger total — tested), but without building
        the ledger. Streaming input is materialised first — the DP needs the
        full sequence, the cost ``requires_full_trace`` declares.
        """
        from repro.workload.base import as_trace

        costs = costs if costs is not None else CostModel.paper_default()
        policy = cls(
            max_servers=max_servers,
            start_node=start_node,
            max_states=max_states,
            allow_inactive=allow_inactive,
            require_active=require_active,
        )
        policy.prepare(as_trace(trace))
        start = substrate.center if start_node is None else int(start_node)
        policy._solve(substrate, costs, start)
        return policy.optimal_cost, policy.plan
