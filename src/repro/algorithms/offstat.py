"""OFFSTAT — the optimal *static* offline baseline of §V-B.

OFFSTAT answers "how well can you do **without** flexibility?": it sees the
whole request sequence σ and picks one fixed set of servers for the entire
run. For each candidate fleet size ``i ∈ {1..k}`` it places servers
greedily — server ``j`` goes to the location minimising the total cost of σ
given servers ``1..j-1`` — and defines ``kopt`` as the size with minimal
total cost (Figure 12 plots exactly this curve). The ratio between OFFSTAT
and OPT is the paper's measure of the *benefit of dynamic allocation*
(Figures 15-19).

Total cost of a candidate fleet = access cost of σ + running costs over the
horizon + the build-out (creation/migration from the initial single-server
configuration), so the static baseline pays for its servers exactly like
the adaptive algorithms do.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.policy import OfflinePolicy
from repro.core.routing import RoutingResult
from repro.core.transitions import price_transition
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive_int

__all__ = ["OffStat"]

#: Stop growing the fleet after the cost curve rose this many times in a row.
_PATIENCE = 3


@register_policy("offstat")
class OffStat(OfflinePolicy):
    """Greedy static placement with optimal fleet size (OFFSTAT, §V-B).

    Args:
        max_servers: upper bound ``k`` on the fleet size to consider;
            ``None`` = up to ``n`` (with early stopping once the cost curve
            keeps rising).
        start_node: initial configuration's server location (``None`` =
            network center); the build-out is priced from there.
        charge_build: include creation/migration costs of the fleet in the
            size selection (and pay them in the simulated run). Disable to
            model a pre-provisioned static system.
    """

    def __init__(
        self,
        max_servers: "int | None" = None,
        start_node: "int | None" = None,
        charge_build: bool = True,
    ) -> None:
        if max_servers is not None:
            max_servers = check_positive_int("max_servers", max_servers)
        self._k = max_servers
        self._start_node = start_node
        self._charge_build = bool(charge_build)

        self._trace: "Trace | None" = None
        self._target: "Configuration | None" = None
        self._cost_curve: "np.ndarray | None" = None
        self._placements: "list[tuple[int, ...]] | None" = None

    @property
    def name(self) -> str:
        return "OFFSTAT"

    @property
    def kopt(self) -> int:
        """The chosen fleet size."""
        self._require_solved()
        return self._target.n_active

    @property
    def target(self) -> Configuration:
        """The chosen static configuration."""
        self._require_solved()
        return self._target

    @property
    def cost_curve(self) -> np.ndarray:
        """Total cost per evaluated fleet size (``curve[i-1]`` for size i).

        This is the curve of Figure 12; its argmin is ``kopt``.
        """
        self._require_solved()
        return self._cost_curve.copy()

    @property
    def placements(self) -> list[tuple[int, ...]]:
        """Greedy server locations per evaluated fleet size."""
        self._require_solved()
        return [tuple(p) for p in self._placements]

    def _require_solved(self) -> None:
        if self._target is None:
            raise RuntimeError(
                "OFFSTAT has not been solved yet (run reset/simulate first)"
            )

    # -- offline interface -----------------------------------------------------

    def prepare(self, trace: Trace) -> None:
        self._trace = trace
        self._target = None
        self._cost_curve = None
        self._placements = None

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        if self._trace is None:
            raise RuntimeError("OFFSTAT.prepare(trace) must be called before reset")
        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._solve(substrate, costs, start)
        if self._charge_build:
            return Configuration.single(start)
        return self._target

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        return self._target

    # -- the greedy optimisation -----------------------------------------------------

    def _solve(self, substrate: Substrate, costs: CostModel, start: int) -> None:
        batch = RequestBatch(substrate, costs, list(self._trace.rounds))
        horizon = len(self._trace)
        limit = substrate.n if self._k is None else min(self._k, substrate.n)
        gamma0 = Configuration.single(start)

        placed: list[int] = []
        curve: list[float] = []
        placements: list[tuple[int, ...]] = []
        best_cost, best_placement = np.inf, None
        rises = 0

        for size in range(1, limit + 1):
            scores = batch.addition_costs(np.asarray(placed, dtype=np.int64))
            scores = scores.copy()
            if placed:
                scores[np.asarray(placed)] = np.inf
            placed.append(int(np.argmin(scores)))

            total = self._fleet_cost(batch, costs, placed, horizon, gamma0)
            curve.append(total)
            placements.append(tuple(placed))
            if total < best_cost:
                best_cost, best_placement = total, tuple(placed)
                rises = 0
            else:
                rises += 1
                if rises >= _PATIENCE and self._k is None:
                    break

        self._cost_curve = np.asarray(curve, dtype=np.float64)
        self._placements = placements
        self._target = Configuration(best_placement)

    def _fleet_cost(
        self,
        batch: RequestBatch,
        costs: CostModel,
        placed: list[int],
        horizon: int,
        gamma0: Configuration,
    ) -> float:
        active = np.asarray(placed, dtype=np.int64)
        total = batch.exact_access_cost(active)
        total += costs.running_cost_counts(len(placed)) * horizon
        if self._charge_build:
            total += price_transition(gamma0, Configuration(tuple(placed)), costs).cost
        return float(total)
