"""The Work Function Algorithm as an online baseline (§VI related work).

The paper situates its problem among *metrical task systems* (Borodin,
Linial, Saks): states are server configurations, task costs are the round's
access + running costs, and the transition metric is the §II-C
migration/creation pricing. For MTS the classic deterministic strategy is
the **work function algorithm** (WFA): maintain

    w_t(γ) = min over γ' of [ w_{t-1}(γ') + task_t(γ') + d(γ', γ) ]

— the cheapest cost of any schedule that serves rounds ``0..t`` and ends in
γ — and after each round move to the configuration minimising
``w_t(γ) + d(current, γ)``.

Like ONCONF, WFA's state space is every placement of ``1..k`` active
servers, so it is exponential in ``k`` and practical only on small
substrates; it exists here as the theory-grade online comparator for ONBR
and ONTH (the ablation benchmark pits all three against OPT). The inner
recurrence is one vectorised ``|Γ|²`` broadcast per round.

Note the difference to :class:`~repro.algorithms.opt.Opt`: WFA *is* an
online algorithm — ``w_t`` only looks backwards — while OPT additionally
backtracks the globally optimal path at hindsight.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.api.registry import register_policy
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.core.transitions import price_transition
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive_int

__all__ = ["WorkFunctionPolicy"]

#: Hard budget on the enumerated configuration space (as for ONCONF).
_MAX_CONFIGURATIONS = 5_000


@register_policy("workfunction", aliases=("wfa",))
class WorkFunctionPolicy(AllocationPolicy):
    """Online allocation via the MTS work function algorithm.

    Args:
        max_servers: the ``k`` bounding enumerated fleet sizes.
        start_node: initial server location (``None`` = network center).
    """

    def __init__(
        self, max_servers: int = 2, start_node: "int | None" = None
    ) -> None:
        self._k = check_positive_int("max_servers", max_servers)
        self._start_node = start_node

        self._substrate: "Substrate | None" = None
        self._costs: "CostModel | None" = None
        self._configs: list[np.ndarray] = []
        self._distance: "np.ndarray | None" = None
        self._run_costs: "np.ndarray | None" = None
        self._work: "np.ndarray | None" = None
        self._current = 0

    @property
    def name(self) -> str:
        return "WFA"

    @property
    def configuration(self) -> Configuration:
        """The policy's current configuration."""
        return Configuration(tuple(int(v) for v in self._configs[self._current]))

    @property
    def n_configurations(self) -> int:
        """Size of the enumerated configuration space."""
        return len(self._configs)

    @property
    def work_function(self) -> np.ndarray:
        """The current work-function values (copy, aligned with the space)."""
        return np.array(self._work)

    # -- policy interface --------------------------------------------------------

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        self._substrate = substrate
        self._costs = costs
        k = min(self._k, substrate.n)

        total = sum(
            _n_choose(substrate.n, size) for size in range(1, k + 1)
        )
        if total > _MAX_CONFIGURATIONS:
            raise ValueError(
                f"WFA would enumerate {total} configurations "
                f"(n={substrate.n}, k={k}); the budget is {_MAX_CONFIGURATIONS}. "
                "Use ONBR/ONTH for larger instances."
            )

        self._configs = [
            np.asarray(combo, dtype=np.int64)
            for size in range(1, k + 1)
            for combo in combinations(range(substrate.n), size)
        ]
        self._run_costs = np.asarray(
            [costs.running_cost_counts(cfg.size) for cfg in self._configs]
        )
        self._distance = self._pairwise_distances()

        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._current = self._index_of((start,))
        self._work = self._distance[self._current].copy()
        return self.configuration

    def _pairwise_distances(self) -> np.ndarray:
        size = len(self._configs)
        wrapped = [
            Configuration(tuple(int(v) for v in cfg)) for cfg in self._configs
        ]
        matrix = np.zeros((size, size), dtype=np.float64)
        for i, a in enumerate(wrapped):
            for j, b in enumerate(wrapped):
                if i != j:
                    matrix[i, j] = price_transition(a, b, self._costs).cost
        return matrix

    def _index_of(self, active: tuple[int, ...]) -> int:
        target = np.asarray(sorted(active), dtype=np.int64)
        for i, cfg in enumerate(self._configs):
            if cfg.size == target.size and np.array_equal(cfg, target):
                return i
        raise ValueError(f"configuration {active} not in the enumerated space")

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        task = self._task_costs(requests)
        # w_t(γ) = min_γ' [ w_{t-1}(γ') + task(γ') + d(γ', γ) ]
        served = self._work + task
        self._work = (served[:, None] + self._distance).min(axis=0)
        # WFA move rule: argmin of w_t(γ) + d(current, γ). Ties are broken
        # toward the smaller work-function value: staying put always scores
        # w(γ̂) ≤ w(γ) + d(γ, γ̂), so exact ties are systematic and a naive
        # argmin would never move off a demand-starved state.
        scores = self._work + self._distance[self._current]
        rounded = np.round(scores, 9)
        self._current = int(np.lexsort((self._work, rounded))[0])
        return self.configuration

    def _task_costs(self, requests: np.ndarray) -> np.ndarray:
        """Round cost of every configuration: access + running."""
        task = self._run_costs.copy()
        if requests.size == 0:
            return task
        distances = self._substrate.distances[:, requests]
        strengths = self._substrate.strengths
        costs = self._costs
        invariant = (
            costs.load.assignment_invariant_for_uniform_strength
            and bool(np.all(strengths == strengths[0]))
        )
        hop = costs.wireless_hop * requests.size
        if invariant:
            uniform_load = float(
                costs.load(strengths[:1], np.asarray([requests.size])).sum()
            )
        for i, cfg in enumerate(self._configs):
            sub = distances[cfg]
            latency = float(sub.min(axis=0).sum())
            if invariant:
                load = uniform_load
            else:
                assignment = np.argmin(sub, axis=0)
                counts = np.bincount(assignment, minlength=cfg.size)
                load = float(costs.load(strengths[cfg], counts).sum())
            task[i] += latency + hop + load
        return task


def _n_choose(n: int, k: int) -> int:
    from math import comb

    return comb(n, k)
