"""OFFBR and OFFTH — the look-ahead best-response variants of §IV-B.

The paper's "interesting and natural adaption": keep the epoch mechanics of
ONBR/ONTH, but at each decision point switch to the configuration of lowest
cost *in the upcoming epoch* rather than the passed one. These run in the
same simulator as their online counterparts; the only change is the request
window handed to the best-response step.

The upcoming epoch is identified exactly how the live epoch would end: we
scan forward from the next round, accumulating the access + running cost
the *current* configuration would pay, until the epoch threshold is reached
(θ for OFFBR, y·β for OFFTH's small epochs) or the trace ends. OFFTH's
large-epoch server placement looks ahead over a window as long as the large
epoch that just ended (the demand's natural decision horizon), capped at
the end of the trace.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_policy
from repro.algorithms.onbr import OnBR
from repro.algorithms.onth import OnTH
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.policy import OfflinePolicy
from repro.core.routing import route_requests
from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = ["OffBR", "OffTH"]


def _lookahead_rounds(
    substrate: Substrate,
    costs: CostModel,
    trace: Trace,
    start_round: int,
    config: Configuration,
    threshold: float,
) -> list[np.ndarray]:
    """The upcoming epoch: rounds until staying in ``config`` costs ``threshold``.

    Returns at least one round when any future round exists, so a decision
    always has a non-empty window to evaluate.
    """
    rounds: list[np.ndarray] = []
    accumulated = 0.0
    running = costs.running_cost(config)
    active = np.asarray(config.active, dtype=np.int64)
    for t in range(start_round, len(trace)):
        requests = trace[t]
        routed = route_requests(substrate, active, requests, costs)
        accumulated += routed.access_cost + running
        rounds.append(requests)
        if accumulated >= threshold:
            break
    return rounds


@register_policy("offbr")
class OffBR(OnBR, OfflinePolicy):
    """Offline best-response (OFFBR, §IV-B): ONBR deciding on the next epoch."""

    @property
    def name(self) -> str:
        return "OFFBR-dyn" if self._dynamic else "OFFBR"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._trace: "Trace | None" = None

    def prepare(self, trace: Trace) -> None:
        self._trace = trace

    def reset(self, substrate, costs, rng) -> Configuration:
        if self._trace is None:
            raise RuntimeError("OFFBR.prepare(trace) must be called before reset")
        return super().reset(substrate, costs, rng)

    def _decision_batch(self) -> RequestBatch:
        upcoming = _lookahead_rounds(
            self._substrate,
            self._costs,
            self._trace,
            self._current_round + 1,
            self._config,
            self._threshold(),
        )
        if not upcoming:  # at the end of the trace: fall back to the past epoch
            return self._batch
        return RequestBatch(self._substrate, self._costs, upcoming)


@register_policy("offth")
class OffTH(OnTH, OfflinePolicy):
    """Offline two-threshold (OFFTH, §IV-B): ONTH deciding on upcoming windows."""

    @property
    def name(self) -> str:
        return "OFFTH"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._trace: "Trace | None" = None

    def prepare(self, trace: Trace) -> None:
        self._trace = trace

    def reset(self, substrate, costs, rng) -> Configuration:
        if self._trace is None:
            raise RuntimeError("OFFTH.prepare(trace) must be called before reset")
        return super().reset(substrate, costs, rng)

    def _small_decision_batch(self) -> RequestBatch:
        upcoming = _lookahead_rounds(
            self._substrate,
            self._costs,
            self._trace,
            self._current_round + 1,
            self._config,
            self._small_factor * self._costs.migration,
        )
        if not upcoming:
            return self._small_batch
        return RequestBatch(self._substrate, self._costs, upcoming)

    def _large_decision_batch(self) -> RequestBatch:
        window = max(self._large_batch.n_rounds, 1)
        start = self._current_round + 1
        upcoming = [
            self._trace[t]
            for t in range(start, min(start + window, len(self._trace)))
        ]
        if not upcoming:
            return self._large_batch
        return RequestBatch(self._substrate, self._costs, upcoming)
