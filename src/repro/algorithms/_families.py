"""Shared best-response step for ONBR/ONTH (and their offline variants).

At an epoch boundary the algorithms of §III-A pick the cheapest
configuration among a small set of *single-change families* relative to the
current configuration γ:

* ``stay``       — keep γ;
* ``migrate``    — one active server moves to another node (cost β);
* ``deactivate`` — one active server enters the inactive cache (free);
* ``activate``   — a cached inactive server is switched on in place (free);
* ``create``     — a new active server appears at an empty node: the oldest
  cache entry is migrated there when one exists (β), otherwise the server
  is created from scratch (c) — the §III-A queue rule.

Each family's access cost over the epoch window comes from the vectorised
:class:`~repro.core.evaluation.RequestBatch` primitives, so evaluating all
``O(k·n)`` concrete candidates costs ``O(k)`` numpy broadcasts. A family is
summarised by the best concrete candidate inside it; applying a choice
updates the policy's configuration and inactive-server cache consistently
with how :func:`~repro.core.transitions.price_transition` will charge it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.servercache import InactiveServerCache

__all__ = ["Choice", "enumerate_choices", "apply_choice", "best_choice"]

#: Tie-break order between families with equal total cost: prefer doing
#: nothing, then free changes, then priced ones.
_KIND_PRIORITY = {"stay": 0, "deactivate": 1, "activate": 2, "migrate": 3, "create": 4}


@dataclass(frozen=True)
class Choice:
    """The best concrete candidate of one family.

    Attributes:
        kind: family name (see module docstring).
        access: window access cost of the candidate placement.
        run_per_round: running cost per round of the candidate configuration.
        transition_cost: what :func:`price_transition` will charge.
        server: index into the current active tuple (migrate/deactivate).
        target: destination node (migrate/activate/create).
    """

    kind: str
    access: float
    run_per_round: float
    transition_cost: float
    server: int = -1
    target: int = -1

    def total(self, n_rounds: int) -> float:
        """Window cost: access + running over the window + transition."""
        return self.access + self.run_per_round * max(n_rounds, 1) + self.transition_cost

    @property
    def priority(self) -> int:
        """Tie-break rank (lower wins)."""
        return _KIND_PRIORITY[self.kind]


def enumerate_choices(
    batch: RequestBatch,
    config: Configuration,
    cache: InactiveServerCache,
    costs: CostModel,
    allow_migrate: bool = True,
    allow_deactivate: bool = True,
    allow_add: bool = True,
) -> list[Choice]:
    """All family representatives for the current (config, cache) state.

    ONBR enumerates every family; ONTH's small epochs exclude additions
    (``allow_add=False``) because servers are only added at large-epoch
    boundaries (§III-A).
    """
    active = np.asarray(config.active, dtype=np.int64)
    queue_nodes = cache.nodes
    k_active, k_inactive = active.size, len(queue_nodes)
    run = costs.running_cost_counts

    choices: list[Choice] = []

    stay_access = float(batch.exact_access_cost(active)) if active.size else 0.0
    choices.append(
        Choice("stay", stay_access, run(k_active, k_inactive), 0.0)
    )

    if allow_migrate and active.size:
        choices.extend(_migration_choices(batch, config, cache, costs))

    if allow_deactivate and k_active >= 2:
        removal = batch.removal_costs(active)
        best = int(np.argmin(removal))
        if np.isfinite(removal[best]):
            # Deactivation is free; a full cache evicts its oldest entry.
            new_inactive = min(k_inactive + 1, cache.max_size)
            choices.append(
                Choice(
                    "deactivate",
                    float(removal[best]),
                    run(k_active - 1, new_inactive),
                    0.0,
                    server=best,
                )
            )

    if allow_add:
        choices.extend(_addition_choices(batch, config, cache, costs))

    return choices


def _migration_choices(
    batch: RequestBatch,
    config: Configuration,
    cache: InactiveServerCache,
    costs: CostModel,
) -> list[Choice]:
    """Best migration target for each active server (plain §II-C move).

    The server leaves its origin empty and reappears at the target; the
    inactive cache is untouched. Targets hosting any server are excluded
    (one server per node).
    """
    active = np.asarray(config.active, dtype=np.int64)
    occupied = np.asarray(sorted(config.occupied), dtype=np.int64)
    run = costs.running_cost_counts(config.n_active, len(cache))
    choices = []
    # One bulk call for all k families: batched windows serve every row
    # from a single stacked pass; row-wise argmin matches the former
    # per-server scans exactly.
    access_all = batch.migration_costs_all(active)
    access_all[:, occupied] = np.inf
    targets = np.argmin(access_all, axis=1)
    for i in range(active.size):
        target = int(targets[i])
        if not np.isfinite(access_all[i, target]):
            continue
        src = int(active[i])
        # The pricer always takes the cheaper of moving a vanished server
        # (β) and creating from scratch (c), so predict the same.
        move_cost = min(costs.migration_cost(src, target), costs.creation)
        choices.append(
            Choice(
                "migrate",
                float(access_all[i, target]),
                run,
                move_cost,
                server=i,
                target=target,
            )
        )
    return choices


def _addition_choices(
    batch: RequestBatch,
    config: Configuration,
    cache: InactiveServerCache,
    costs: CostModel,
) -> list[Choice]:
    """Best in-place activation and best creation-at-empty-node."""
    active = np.asarray(config.active, dtype=np.int64)
    addition = batch.addition_costs(active)
    run = costs.running_cost_counts
    k_active, k_inactive = config.n_active, len(cache)
    choices = []

    queue_nodes = np.asarray(cache.nodes, dtype=np.int64)
    if queue_nodes.size:
        local = int(np.argmin(addition[queue_nodes]))
        target = int(queue_nodes[local])
        choices.append(
            Choice(
                "activate",
                float(addition[target]),
                run(k_active + 1, k_inactive - 1),
                0.0,
                target=target,
            )
        )

    empty_costs = addition.copy()
    occupied = np.asarray(sorted(config.occupied), dtype=np.int64)
    if occupied.size:
        empty_costs[occupied] = np.inf
    target = int(np.argmin(empty_costs))
    if np.isfinite(empty_costs[target]):
        if queue_nodes.size:
            # §III-A: the oldest cached server is migrated to the new node
            # (the pricer takes the cheaper of migration and creation).
            donor = int(queue_nodes[0])
            transition = min(costs.migration_cost(donor, target), costs.creation)
            new_inactive = k_inactive - 1
        else:
            transition = costs.creation
            new_inactive = k_inactive
        choices.append(
            Choice(
                "create",
                float(empty_costs[target]),
                run(k_active + 1, new_inactive),
                transition,
                target=target,
            )
        )
    return choices


def best_choice(choices: list[Choice], n_rounds: int) -> Choice:
    """The cheapest choice; ties resolved by :data:`_KIND_PRIORITY`."""
    if not choices:
        raise ValueError("no choices to select from")
    return min(choices, key=lambda ch: (ch.total(n_rounds), ch.priority, ch.target))


def apply_choice(
    choice: Choice,
    config: Configuration,
    cache: InactiveServerCache,
) -> Configuration:
    """Mutate ``cache`` and return the new configuration for ``choice``.

    The cache operations mirror exactly what the transition pricer assumes:
    a deactivated server is pushed (possibly evicting the oldest entry), an
    activation consumes its cache entry, a creation consumes the oldest
    entry as migration donor when one exists.
    """
    if choice.kind == "stay":
        return config.replace_inactive(cache.nodes)

    if choice.kind == "migrate":
        src = config.active[choice.server]
        new_config = config.move_active(src, choice.target)
        return new_config.replace_inactive(cache.nodes)

    if choice.kind == "deactivate":
        node = config.active[choice.server]
        cache.push(node)  # eviction (if any) silently leaves use
        return Configuration(
            tuple(v for v in config.active if v != node), cache.nodes
        )

    if choice.kind == "activate":
        if not cache.remove(choice.target):
            raise RuntimeError(f"activation target {choice.target} not in cache")
        return Configuration(config.active + (choice.target,), cache.nodes)

    if choice.kind == "create":
        cache.pop_oldest()  # donor for the β-migration (None when empty: creation)
        return Configuration(config.active + (choice.target,), cache.nodes)

    raise ValueError(f"unknown choice kind {choice.kind!r}")
