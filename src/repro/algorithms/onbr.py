"""ONBR — the sequential best-response online algorithm of §III-A.

ONBR starts with one server at the network center. Time is divided into
epochs; an epoch ends when the cost accumulated in the current configuration
(access plus running cost) reaches a threshold θ. At the boundary, ONBR
switches to the cheapest configuration — evaluated against the *passed*
epoch, including access, migration, running and creation costs — among:

1. no change,
2. one server migrated to a different location,
3. one server deactivated into the inactive cache,
4. one cached server activated in place, or a new server created at an
   empty node (migrating the oldest cache entry there when one exists).

Inactive servers live in a FIFO cache of constant size (3 in the paper's
simulations) and expire after ``x = 20`` epochs.

Two threshold variants from §V-B:

* **fixed** — θ = 2c;
* **dyn** — θ = 2c/ℓ where ℓ is the length (rounds) of the preceding
  epoch: short epochs mean fast-changing demand, so the system re-decides
  sooner. The first epoch uses the fixed threshold.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms._families import apply_choice, best_choice, enumerate_choices
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.api.registry import register_policy
from repro.core.policy import AllocationPolicy
from repro.core.routing import RoutingResult
from repro.core.servercache import InactiveServerCache
from repro.topology.substrate import Substrate
from repro.util.validation import check_positive, check_positive_int

__all__ = ["OnBR"]


@register_policy("onbr", aliases=("onbr-fixed",))
class OnBR(AllocationPolicy):
    """Online best-response allocation (ONBR, §III-A).

    Args:
        threshold_factor: θ in units of the creation cost (θ = factor · c);
            the paper uses 2.
        dynamic_threshold: enable the "dyn" variant θ = 2c/ℓ.
        cache_size: capacity of the inactive-server FIFO cache.
        cache_expiry: cache entries expire after this many epochs (x).
        start_node: initial server location; ``None`` = network center.
    """

    def __init__(
        self,
        threshold_factor: float = 2.0,
        dynamic_threshold: bool = False,
        cache_size: int = 3,
        cache_expiry: int = 20,
        start_node: "int | None" = None,
    ) -> None:
        self._threshold_factor = check_positive("threshold_factor", threshold_factor)
        self._dynamic = bool(dynamic_threshold)
        self._cache_size = check_positive_int("cache_size", cache_size)
        self._cache_expiry = check_positive_int("cache_expiry", cache_expiry)
        self._start_node = start_node
        # Bound at reset:
        self._substrate: "Substrate | None" = None
        self._costs: "CostModel | None" = None
        self._config = Configuration.empty()
        self._cache = InactiveServerCache(cache_size, cache_expiry)
        self._batch: "RequestBatch | None" = None
        self._gather = None  # DistanceGather bound for a batched run
        self._epoch_cost = 0.0
        self._epoch_rounds = 0
        self._previous_epoch_rounds: "int | None" = None
        self._current_round = -1

    @property
    def name(self) -> str:
        return "ONBR-dyn" if self._dynamic else "ONBR"

    @property
    def configuration(self) -> Configuration:
        """The policy's current configuration (for inspection/tests)."""
        return self._config

    # -- policy interface --------------------------------------------------------

    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        self._substrate = substrate
        self._costs = costs
        start = substrate.center if self._start_node is None else int(self._start_node)
        if not 0 <= start < substrate.n:
            raise ValueError(f"start node {start} outside the substrate")
        self._config = Configuration.single(start)
        self._cache = InactiveServerCache(self._cache_size, self._cache_expiry)
        if self._gather is not None and self._gather.matches(substrate, costs):
            self._batch = self._gather.new_window()
        else:
            self._batch = RequestBatch(substrate, costs)
        self._epoch_cost = 0.0
        self._epoch_rounds = 0
        self._previous_epoch_rounds = None
        self._current_round = -1
        return self._config

    def bind_batch_gather(self, gather) -> bool:
        # Exact-type guard: OFFBR subclasses this policy and evaluates a
        # *different* window (the upcoming epoch) that the gather cannot
        # serve, so only plain ONBR opts in. ONBR consumes no randomness.
        if type(self) is not OnBR:
            return False
        self._gather = gather
        return True

    def unbind_batch_gather(self) -> None:
        self._gather = None

    def _threshold(self) -> float:
        base = self._threshold_factor * self._costs.creation
        if self._dynamic and self._previous_epoch_rounds:
            return base / self._previous_epoch_rounds
        return base

    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        self._current_round = t
        self._batch.add_round(requests)
        self._epoch_rounds += 1
        self._epoch_cost += routing.access_cost + self._costs.running_cost(self._config)

        if self._epoch_cost < self._threshold():
            return self._config

        self._end_epoch()
        return self._config

    # -- epoch machinery -----------------------------------------------------------

    def _decision_batch(self) -> RequestBatch:
        """The request window the best-response step evaluates against.

        ONBR decides on the *passed* epoch; the offline variant OFFBR
        overrides this with the upcoming epoch (§IV-B).
        """
        return self._batch

    def _end_epoch(self) -> None:
        batch = self._decision_batch()
        choices = enumerate_choices(
            batch, self._config, self._cache, self._costs
        )
        chosen = best_choice(choices, batch.n_rounds)
        self._config = apply_choice(chosen, self._config, self._cache)

        expired = self._cache.tick_epoch()
        if expired:
            self._config = self._config.replace_inactive(self._cache.nodes)

        self._previous_epoch_rounds = self._epoch_rounds
        self._epoch_rounds = 0
        self._epoch_cost = 0.0
        self._batch.clear()


@register_policy("onbr-dyn")
def onbr_dyn(**kwargs) -> OnBR:
    """The "dyn" variant θ = 2c/ℓ as a registry factory (§V-B)."""
    return OnBR(dynamic_threshold=True, **kwargs)
