"""Batched execution of the simulation core over replicate blocks.

A sweep point runs the same (policy, scenario) pair over many replicates,
and the scalar round loop of :mod:`repro.core.simulator` re-gathers the
same distance columns over and over: once per round for routing, and once
per candidate family per epoch for the best-response scan. This module
removes that redundancy without changing a single ledger bit:

* :func:`stack_traces` stacks the per-replicate traces of one sweep point
  into a padded ``(replicates, rounds, max_requests)`` int64 tensor with
  per-round length masks, validating node bounds (including the negative
  indices numpy fancy indexing would silently wrap) in one pass;
* :class:`DistanceGather` gathers the substrate's distance columns for a
  whole trace **once** (``distances[:, flat]``); every per-round routing
  block and every epoch-window candidate matrix is then a cheap slice of
  that gather instead of a fresh fancy-indexed copy;
* :class:`GatherWindow` is a drop-in :class:`~repro.core.evaluation.RequestBatch`
  whose ``add_round``/``clear`` just move window pointers over the gather.
  Policies opt in through
  :meth:`~repro.core.policy.AllocationPolicy.bind_batch_gather`; their
  epoch logic runs completely unchanged, which is what makes bit-identity
  to the scalar path hold *by construction* — the windows produce the same
  float values from the same reduction orders, only sourced from the
  shared gather;
* :func:`simulate_batched` drives the round loop against the gather
  (vectorised nearest routing from column slices, a column-preallocated
  ledger) and transparently falls back to the scalar
  :func:`~repro.core.simulator.simulate` for policies that do not opt in;
* :func:`simulate_block` runs a whole replicate block of one sweep point.

Bit-identity ground rules (why these transformations are safe): numpy's
pairwise summation is a pure function of the summand sequence, so every sum
here runs over the exact slice the scalar path sums (never padded, never
transposed); ``min``/``argmin``/gathers are exact, so leave-one-out bases
may be composed from prefix/suffix minima; integer ``bincount`` equals
``np.add.at`` counts, so derived load floats are identical. Algebraic
shortcuts that change float values in ULPs are deliberately avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.policy import AllocationPolicy, OfflinePolicy
from repro.core.results import RunResult
from repro.core.routing import RoutingResult, RoutingStrategy, route_requests
from repro.core.simulator import _check_config, simulate
from repro.core.transitions import _NO_CHANGE, price_transition
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.rng import ensure_rng

__all__ = [
    "TraceBlock",
    "stack_traces",
    "DistanceGather",
    "GatherWindow",
    "simulate_batched",
    "simulate_block",
]

#: Cap on the stacked ``(k, n, requests)`` candidate broadcast; above this
#: the memoised migration scan falls back to per-server rows (identical
#: values, lower peak memory).
_STACK_ELEMS_MAX = 1 << 24

#: How many rounds the batched round loop routes per argmin while the
#: active set is unchanged. Rebuilt early whenever the policy moves a
#: server, so larger spans only pay off across stable epochs.
_SPAN_ROUNDS = 16


# ---------------------------------------------------------------------------
# Trace stacking


@dataclass(frozen=True)
class TraceBlock:
    """The traces of one sweep-point replicate block, stacked and padded.

    Attributes:
        tensor: ``(replicates, max_rounds, max_requests)`` int64 tensor of
            node indices, zero-padded past each round's length.
        lengths: ``(replicates, max_rounds)`` int64 per-round request counts
            (zero-padded past each trace's horizon).
        n_rounds: ``(replicates,)`` int64 horizon of each trace.
        traces: the stacked traces themselves, in block order.
    """

    tensor: np.ndarray
    lengths: np.ndarray
    n_rounds: np.ndarray
    traces: tuple[Trace, ...]

    @property
    def replicates(self) -> int:
        """Number of stacked traces."""
        return len(self.traces)

    @property
    def mask(self) -> np.ndarray:
        """Boolean validity mask aligned with :attr:`tensor`."""
        return (
            np.arange(self.tensor.shape[2], dtype=np.int64)
            < self.lengths[:, :, None]
        )


def stack_traces(
    traces: Sequence[Trace],
    n_nodes: "int | None" = None,
) -> TraceBlock:
    """Stack one sweep point's replicate traces into a :class:`TraceBlock`.

    Validates every node index in one pass: negative indices and (when
    ``n_nodes`` is given) indices beyond the substrate raise ``ValueError``
    instead of silently wrapping through numpy fancy indexing later.
    """
    if not traces:
        raise ValueError("cannot stack an empty replicate block")
    traces = tuple(traces)
    n_rounds = np.asarray([len(t.rounds) for t in traces], dtype=np.int64)
    max_rounds = int(n_rounds.max())
    max_requests = max(
        (int(r.size) for t in traces for r in t.rounds), default=0
    )
    tensor = np.zeros((len(traces), max_rounds, max_requests), dtype=np.int64)
    lengths = np.zeros((len(traces), max_rounds), dtype=np.int64)
    for i, trace in enumerate(traces):
        for t, requests in enumerate(trace.rounds):
            size = int(requests.size)
            lengths[i, t] = size
            if size:
                tensor[i, t, :size] = requests
    _validate_block(tensor, lengths, n_nodes)
    return TraceBlock(
        tensor=tensor, lengths=lengths, n_rounds=n_rounds, traces=traces
    )


def _validate_block(
    tensor: np.ndarray, lengths: np.ndarray, n_nodes: "int | None"
) -> None:
    mask = (
        np.arange(tensor.shape[2], dtype=np.int64) < lengths[:, :, None]
    )
    if not mask.any():
        return
    values = tensor[mask]
    lo, hi = int(values.min()), int(values.max())
    if lo < 0:
        raise ValueError(f"trace references negative node {lo}")
    if n_nodes is not None and hi >= n_nodes:
        raise ValueError(
            f"trace references node {hi} but substrate has {n_nodes} nodes"
        )


# ---------------------------------------------------------------------------
# Distance gather


class DistanceGather:
    """Distance columns of one trace, gathered once and sliced thereafter.

    ``columns[v, j]`` is the distance from node ``v`` to the ``j``-th
    request of the flattened trace — so routing round ``t`` needs only the
    contiguous column range ``offsets[t]:offsets[t+1]``, and any epoch
    window of a policy is likewise a column range. The gather itself is
    lazy: a policy that declines the batched path never pays for it.
    """

    def __init__(
        self,
        substrate: Substrate,
        costs: CostModel,
        trace: "Trace | Sequence[np.ndarray]",
    ) -> None:
        self.substrate = substrate
        self.costs = costs
        rounds = trace.rounds if isinstance(trace, Trace) else tuple(
            np.asarray(r, dtype=np.int64) for r in trace
        )
        self._rounds = rounds
        self.sizes = np.asarray([r.size for r in rounds], dtype=np.int64)
        self.offsets = np.zeros(len(rounds) + 1, dtype=np.int64)
        np.cumsum(self.sizes, out=self.offsets[1:])
        self.flat = (
            np.concatenate(rounds)
            if self.offsets[-1]
            else np.zeros(0, dtype=np.int64)
        )
        if self.flat.size:
            lo, hi = int(self.flat.min()), int(self.flat.max())
            if lo < 0:
                raise ValueError(f"trace references negative node {lo}")
            if hi >= substrate.n:
                raise ValueError(
                    f"trace references node {hi} but substrate has "
                    f"{substrate.n} nodes"
                )
        self._columns: "np.ndarray | None" = None
        self._row_of: "np.ndarray | None" = None
        self._sizes_f64: "np.ndarray | None" = None
        self._arange: "np.ndarray | None" = None
        # Epoch-evaluation memo shared by every window over this gather:
        # keyed (kind, t0, t1, active-bytes). Policies running over the same
        # trace (ONBR fixed/dyn especially) evaluate many identical windows;
        # the cached latency arrays are pure functions of the key.
        self._memo: dict = {}

    def arange(self, size: int) -> np.ndarray:
        """``np.arange(size)`` served from one preallocated buffer."""
        if self._arange is None or self._arange.size < size:
            self._arange = np.arange(
                max(size, int(self.sizes.max(initial=0))), dtype=np.int64
            )
        return self._arange[:size]

    def memo_get(self, key):
        """Cached epoch-evaluation artefact for ``key`` (or ``None``)."""
        return self._memo.get(key)

    def memo_put(self, key, value) -> None:
        """Cache an epoch-evaluation artefact (bounded)."""
        if len(self._memo) >= 32768:
            self._memo.clear()
        self._memo[key] = value

    @property
    def n_rounds(self) -> int:
        """Number of rounds covered by the gather."""
        return len(self._rounds)

    @property
    def has_columns(self) -> bool:
        """Whether the full column gather has been materialised."""
        return self._columns is not None

    @property
    def columns(self) -> np.ndarray:
        """``(n, total_requests)`` distance gather (computed on first use)."""
        if self._columns is None:
            # Must be the same gather op the scalar RequestBatch uses: a
            # column fancy-index yields a Fortran-ordered array, and numpy's
            # axis-1 reductions are only bitwise-reproducible when the
            # operand layout matches (np.take would give C order and shift
            # the pairwise summation order by a ULP on fractional weights).
            self._columns = self.substrate.distances[:, self.flat]
        return self._columns

    @property
    def row_of(self) -> np.ndarray:
        """Round index of each flattened request."""
        if self._row_of is None:
            self._row_of = np.repeat(
                np.arange(len(self._rounds), dtype=np.int64), self.sizes
            )
        return self._row_of

    @property
    def sizes_f64(self) -> np.ndarray:
        """Per-round request counts as float64 (for load bounds)."""
        if self._sizes_f64 is None:
            self._sizes_f64 = self.sizes.astype(np.float64)
        return self._sizes_f64

    def matches(self, substrate: Substrate, costs: CostModel) -> bool:
        """Whether the gather was built for exactly this substrate/costs."""
        return substrate is self.substrate and costs is self.costs

    def new_window(self) -> "GatherWindow":
        """A fresh empty request window over this gather (at round 0)."""
        return GatherWindow(self)


class GatherWindow(RequestBatch):
    """A :class:`RequestBatch` served from a :class:`DistanceGather`.

    ``add_round``/``clear`` move ``[t0, t1)`` pointers instead of copying
    request arrays; ``flat``/``round_ids``/``round_sizes`` and the distance
    accessors are slices of the gather. All candidate-evaluation methods of
    the base class therefore see byte-identical inputs in the same shapes
    and reduction orders as a freshly built scalar window — the outputs are
    bit-identical, just cheaper to produce.
    """

    def __init__(self, gather: DistanceGather) -> None:
        self._substrate = gather.substrate
        self._costs = gather.costs
        self._gather = gather
        self._t0 = 0
        self._t1 = 0
        self._invariant: "bool | None" = None
        self._inv_key: "tuple[int, int] | None" = None
        self._inv_load_value = 0.0

    # -- window pointers --------------------------------------------------------

    def add_round(self, requests: np.ndarray) -> None:
        gather = self._gather
        t = self._t1
        if t >= gather.n_rounds or np.asarray(requests).size != int(
            gather.sizes[t]
        ):
            raise RuntimeError(
                "gather window out of sync: fed a round that does not match "
                "the gathered trace"
            )
        self._t1 = t + 1

    def clear(self) -> None:
        self._t0 = self._t1

    @property
    def n_rounds(self) -> int:
        return self._t1 - self._t0

    @property
    def _c0(self) -> int:
        return int(self._gather.offsets[self._t0])

    @property
    def _c1(self) -> int:
        return int(self._gather.offsets[self._t1])

    @property
    def flat(self) -> np.ndarray:
        return self._gather.flat[self._c0 : self._c1]

    @property
    def round_ids(self) -> np.ndarray:
        return self._gather.row_of[self._c0 : self._c1] - self._t0

    @property
    def round_sizes(self) -> np.ndarray:
        return self._gather.sizes_f64[self._t0 : self._t1]

    def _invariant_load(self) -> float:
        # The base-class memo invalidates in add_round/clear, which here
        # only move pointers — key the memo on the window range instead.
        key = (self._t0, self._t1)
        if self._inv_key != key:
            sizes = self.round_sizes
            strength = float(self._substrate.strengths[0])
            self._inv_load_value = float(
                self._costs.load(np.full(sizes.shape, strength), sizes).sum()
            )
            self._inv_key = key
        return self._inv_load_value

    # -- distance access --------------------------------------------------------

    def _distance_block(self, rows: np.ndarray) -> np.ndarray:
        return self._gather.columns[rows, self._c0 : self._c1]

    def _candidate_matrix(self) -> np.ndarray:
        return self._gather.columns[:, self._c0 : self._c1]

    def _active_block(self, active: np.ndarray) -> np.ndarray:
        """Memoised ``_distance_block(active)`` — several cost methods of one
        epoch evaluation (and sibling policies on shared windows) read the
        same block; consumers must treat it as read-only."""
        key = ("blk", self._t0, self._t1, active.tobytes())
        block = self._gather.memo_get(key)
        if block is None:
            block = self._gather.columns[active, self._c0 : self._c1]
            self._gather.memo_put(key, block)
        return block

    def base_latency(self, active: "np.ndarray | tuple[int, ...]") -> np.ndarray:
        active = np.asarray(active, dtype=np.int64)
        if self.flat.size == 0:
            return np.zeros(0, dtype=np.float64)
        if active.size == 0:
            return np.full(self.flat.size, np.inf)
        return self._active_block(active).min(axis=0)

    # -- fast exact costs -------------------------------------------------------
    #
    # Every override below produces the same floats as the base class from
    # the same reduction orders; the wins are (a) slicing the shared gather
    # instead of re-gathering distance columns, (b) fusing per-server scans
    # into stacked passes, and (c) memoising per-(window, placement)
    # artefacts on the gather so sibling policies over the same trace
    # (ONBR fixed vs dyn especially) reuse each other's epoch evaluations.

    def exact_access_cost(self, active: "np.ndarray | tuple[int, ...]") -> float:
        active = np.asarray(active, dtype=np.int64)
        flat = self.flat
        if flat.size == 0:
            return 0.0
        if active.size == 0:
            raise ValueError("cannot evaluate a window against zero active servers")

        key = ("exact", self._t0, self._t1, active.tobytes())
        cached = self._gather.memo_get(key)
        if cached is not None:
            return cached

        distances = self._active_block(active)
        assignment = np.argmin(distances, axis=0)
        latency = float(distances[assignment, self._gather.arange(flat.size)].sum())
        latency += self._costs.wireless_hop * flat.size

        # Same integer counts as the base class's np.add.at scatter, via one
        # bincount over combined (round, server) keys — identical ints give
        # identical load floats.
        k = active.size
        counts = np.bincount(
            self.round_ids * k + assignment, minlength=self.n_rounds * k
        ).reshape(self.n_rounds, k)
        strengths = self._substrate.strengths[active]
        load = float(self._costs.load(strengths, counts).sum())
        result = latency + load
        self._gather.memo_put(key, result)
        return result

    def removal_costs(
        self, active: "np.ndarray | tuple[int, ...]"
    ) -> np.ndarray:
        active = np.asarray(active, dtype=np.int64)
        k = active.size
        if k <= 1:
            return np.full(k, np.inf)
        flat = self.flat
        if flat.size == 0:
            return np.zeros(k, dtype=np.float64)

        key = ("rem", self._t0, self._t1, active.tobytes())
        cached = self._gather.memo_get(key)
        if cached is not None:
            return cached.copy()

        # All k leave-one-out placements in one fused pass. Row set i is
        # exactly np.delete(active, i) in order, so per-column argmin
        # indices, counts and loads coincide with the base class's k
        # separate exact_access_cost calls.
        m = flat.size
        n_rounds = self.n_rounds
        block = self._active_block(active)
        rows = np.arange(k, dtype=np.int64)
        index = np.empty((k, k - 1), dtype=np.int64)
        for i in range(k):
            index[i, :i] = rows[:i]
            index[i, i:] = rows[i + 1 :]
        blocks = block[index]  # (k, k-1, m)
        assignment = blocks.argmin(axis=1)  # (k, m)
        latency = blocks.min(axis=1).sum(axis=1)  # same elements as the argmin gather
        latency += self._costs.wireless_hop * m

        keys = (
            rows[:, None] * (n_rounds * (k - 1))
            + self.round_ids[None, :] * (k - 1)
            + assignment
        )
        counts = np.bincount(
            keys.ravel(), minlength=k * n_rounds * (k - 1)
        ).reshape(k, n_rounds, k - 1)
        strengths = self._substrate.strengths[active][index]  # (k, k-1)
        loads = self._costs.load(strengths[:, None, :], counts)
        result = latency + loads.reshape(k, -1).sum(axis=1)
        self._gather.memo_put(key, result)
        return result.copy()

    def addition_costs(
        self, active: "np.ndarray | tuple[int, ...]",
        base: "np.ndarray | None" = None,
    ) -> np.ndarray:
        if base is not None:
            return super().addition_costs(active, base)
        active = np.asarray(active, dtype=np.int64)
        flat = self.flat
        if flat.size == 0:
            return np.zeros(self._substrate.n, dtype=np.float64)

        key = ("add", self._t0, self._t1, active.tobytes())
        latency = self._gather.memo_get(key)
        if latency is None:
            computed = self.base_latency(active)
            latency = np.minimum(self._candidate_matrix(), computed).sum(axis=1)
            latency += self._costs.wireless_hop * flat.size
            self._gather.memo_put(key, latency)

        if self._load_is_invariant():
            return latency + self._invariant_load()
        return self._with_exact_shortlist(latency, active)

    def migration_costs(
        self, active: "np.ndarray | tuple[int, ...]", server_index: int
    ) -> np.ndarray:
        active = np.asarray(active, dtype=np.int64)
        if not 0 <= server_index < active.size:
            raise IndexError(f"server index {server_index} out of range")
        if self.flat.size == 0:
            return np.zeros(self._substrate.n, dtype=np.float64)
        if not self._load_is_invariant():
            return super().migration_costs(active, server_index)

        latencies = self._migration_latencies(active)
        result = latencies[server_index] + self._invariant_load()
        result[active] = np.inf
        return result

    def migration_costs_all(
        self, active: "np.ndarray | tuple[int, ...]"
    ) -> np.ndarray:
        active = np.asarray(active, dtype=np.int64)
        if self.flat.size == 0:
            return np.zeros((active.size, self._substrate.n), dtype=np.float64)
        if not self._load_is_invariant():
            return super().migration_costs_all(active)
        result = self._migration_latencies(active) + self._invariant_load()
        result[:, active] = np.inf
        return result

    def _migration_latencies(self, active: np.ndarray) -> np.ndarray:
        key = ("mig", self._t0, self._t1, active.tobytes())
        cached = self._gather.memo_get(key)
        if cached is not None:
            return cached

        candidates = self._candidate_matrix()
        block = self._active_block(active)
        k, m = block.shape
        # Leave-one-out base latencies from prefix/suffix minima — min is
        # exact, so composing it this way is bitwise identical to the
        # scalar path's direct min over the k-1 remaining rows.
        bases = np.empty((k, m), dtype=np.float64)
        if k == 1:
            bases[0] = np.inf
        else:
            prefix = np.minimum.accumulate(block, axis=0)
            suffix = np.minimum.accumulate(block[::-1], axis=0)[::-1]
            bases[0] = suffix[1]
            bases[-1] = prefix[-2]
            for i in range(1, k - 1):
                np.minimum(prefix[i - 1], suffix[i + 1], out=bases[i])

        n = self._substrate.n
        if k * n * m <= _STACK_ELEMS_MAX:
            stacked = np.minimum(candidates[None, :, :], bases[:, None, :])
            latencies = stacked.sum(axis=2)
        else:
            latencies = np.empty((k, n), dtype=np.float64)
            for i in range(k):
                latencies[i] = np.minimum(candidates, bases[i]).sum(axis=1)
        latencies += self._costs.wireless_hop * m

        self._gather.memo_put(key, latencies)
        return latencies


# ---------------------------------------------------------------------------
# Batched round loop


def simulate_batched(
    substrate: Substrate,
    policy: AllocationPolicy,
    trace: "Trace | Iterable[np.ndarray]",
    costs: "CostModel | None" = None,
    routing: RoutingStrategy = RoutingStrategy.NEAREST,
    seed: "int | np.random.Generator | None" = None,
    max_servers: "int | None" = None,
    gather: "DistanceGather | None" = None,
) -> RunResult:
    """Run one replicate through the batched path when the policy opts in.

    Drop-in for :func:`~repro.core.simulator.simulate` with an identical
    ledger: policies that do not implement the batched ``decide`` protocol
    — and non-materialised (streaming) traces, whose O(round) memory
    profile the scalar loop preserves — fall back to ``simulate``
    transparently.
    """
    costs = costs if costs is not None else CostModel.paper_default()
    rng = ensure_rng(seed)

    if not isinstance(trace, Trace) or isinstance(policy, OfflinePolicy):
        return simulate(substrate, policy, trace, costs, routing, rng, max_servers)
    if costs.migration_matrix is not None and costs.migration_matrix.shape[0] != substrate.n:
        raise ValueError(
            f"migration_matrix is {costs.migration_matrix.shape[0]}x"
            f"{costs.migration_matrix.shape[1]} but substrate has {substrate.n} nodes"
        )

    if gather is None:
        gather = DistanceGather(substrate, costs, trace)
    elif not gather.matches(substrate, costs):
        raise ValueError("gather was built for a different substrate/cost model")

    if not policy.bind_batch_gather(gather):
        return simulate(substrate, policy, trace, costs, routing, rng, max_servers)
    try:
        return _run_gathered(
            substrate, policy, trace, costs, routing, rng, max_servers, gather
        )
    finally:
        policy.unbind_batch_gather()


def _run_gathered(
    substrate: Substrate,
    policy: AllocationPolicy,
    trace: Trace,
    costs: CostModel,
    routing: RoutingStrategy,
    rng: np.random.Generator,
    max_servers: "int | None",
    gather: DistanceGather,
) -> RunResult:
    config = policy.reset(substrate, costs, rng)
    _check_config(config, substrate, max_servers, t=-1)

    n_rounds = len(trace.rounds)
    columns = {
        name: np.zeros(n_rounds, dtype=np.float64)
        for name in (
            "latency_cost", "load_cost", "running_cost",
            "migration_cost", "creation_cost",
        )
    }
    columns.update(
        (name, np.zeros(n_rounds, dtype=np.int64))
        for name in ("migrations", "creations", "n_active", "n_inactive")
    )
    columns["n_requests"] = gather.sizes.copy()

    fast_nearest = routing is RoutingStrategy.NEAREST
    offsets = gather.offsets
    flat = gather.flat
    strengths = substrate.strengths
    hop = costs.wireless_hop
    # Span router state: while the active set is value-unchanged (threshold
    # policies hold their placement across whole epochs, and even "stay"
    # decisions rebuild the tuple object), nearest assignments for the next
    # _SPAN_ROUNDS rounds are computed in one argmin. Per-round latencies
    # are then sums over contiguous slices of the span gather — the same
    # summand sequences as per-round scalar routing, hence bit-identical.
    span_active: "tuple[int, ...] | None" = None
    span_end = 0  # first round NOT covered by the current span arrays
    span_c0 = 0
    span_assign = np.zeros(0, dtype=np.int64)
    span_values = np.zeros(0, dtype=np.float64)
    active_arr = np.zeros(0, dtype=np.int64)
    active_strengths = np.zeros(0, dtype=np.float64)
    # Per-configuration-object caches for the ledger columns.
    costed_config: "object | None" = None
    run_cost = 0.0
    n_active = n_inactive = 0

    for t, requests in enumerate(trace.rounds):
        size = int(requests.size)
        if size == 0:
            routed = RoutingResult(
                latency_cost=0.0,
                load_cost=0.0,
                counts=np.zeros(len(config.active), dtype=np.int64),
                assignment=np.zeros(0, dtype=np.int64),
            )
        elif fast_nearest:
            if t >= span_end or config.active != span_active:
                span_active = config.active
                active_arr = config.active_array
                if active_arr.size == 0:
                    raise ValueError("cannot route requests: no active servers")
                active_strengths = strengths[active_arr]
                span_end = min(n_rounds, t + _SPAN_ROUNDS)
                span_c0 = int(offsets[t])
                span_c1 = int(offsets[span_end])
                if gather.has_columns:
                    block = gather.columns[active_arr, span_c0:span_c1]
                else:
                    # Policies that never scan candidates (stateless family)
                    # should not pay for the full (n, requests) gather; the
                    # span block is the same values either way.
                    block = substrate.distances[
                        np.ix_(active_arr, flat[span_c0:span_c1])
                    ]
                span_assign = np.argmin(block, axis=0)
                span_values = block[
                    span_assign, gather.arange(span_assign.size)
                ]
            lo = int(offsets[t]) - span_c0
            hi = int(offsets[t + 1]) - span_c0
            assignment = span_assign[lo:hi]
            latency = span_values[lo:hi].sum() + hop * size
            counts = np.bincount(assignment, minlength=active_arr.size)
            load = costs.load(active_strengths, counts).sum()
            routed = RoutingResult(float(latency), float(load), counts, assignment)
        else:
            routed = route_requests(
                substrate, config.active_array, requests, costs, routing
            )

        new_config = policy.decide(t, requests, routed)
        if new_config is config:
            # Same object ⇒ already validated, and the transition pricer
            # would short-circuit on equality anyway.
            outcome = _NO_CHANGE
        else:
            _check_config(new_config, substrate, max_servers, t)
            outcome = price_transition(config, new_config, costs)
            config = new_config

        if config is not costed_config:
            costed_config = config
            run_cost = costs.running_cost(config)
            n_active = config.n_active
            n_inactive = config.n_inactive

        columns["latency_cost"][t] = routed.latency_cost
        columns["load_cost"][t] = routed.load_cost
        columns["running_cost"][t] = run_cost
        columns["migration_cost"][t] = outcome.migration_cost
        columns["creation_cost"][t] = outcome.creation_cost
        columns["migrations"][t] = outcome.migrations
        columns["creations"][t] = outcome.creations
        columns["n_active"][t] = n_active
        columns["n_inactive"][t] = n_inactive

    for arr in columns.values():
        arr.flags.writeable = False
    return RunResult(
        policy_name=policy.name,
        scenario_name=getattr(trace, "scenario_name", ""),
        **columns,
    )


# ---------------------------------------------------------------------------
# Replicate blocks


def simulate_block(
    substrates: "Substrate | Sequence[Substrate]",
    policy: "AllocationPolicy | Callable[[], AllocationPolicy]",
    traces: "TraceBlock | Sequence[Trace]",
    costs: "CostModel | None" = None,
    routing: RoutingStrategy = RoutingStrategy.NEAREST,
    seeds: "Sequence[int | np.random.Generator | None] | None" = None,
    max_servers: "int | None" = None,
) -> list[RunResult]:
    """Simulate a whole replicate block of one sweep point, batched.

    Args:
        substrates: the block's substrate — one shared instance or one per
            replicate (sweep replicates draw independent topologies).
        policy: a policy instance (reset between replicates, like repeated
            scalar ``simulate`` calls) or a zero-argument factory.
        traces: the replicate traces, pre-stacked or as a sequence (stacked
            — and bounds-validated — here).
        costs: cost model; defaults to the paper's.
        routing: request-to-server assignment strategy.
        seeds: per-replicate policy randomness, aligned with ``traces``.
        max_servers: optional cap on simultaneous in-use servers.

    Returns:
        One :class:`~repro.core.results.RunResult` per replicate, in order —
        bit-identical to running scalar ``simulate`` per replicate.
    """
    costs = costs if costs is not None else CostModel.paper_default()
    if isinstance(traces, TraceBlock):
        block = traces
    else:
        n_nodes = (
            substrates.n
            if isinstance(substrates, Substrate)
            else min(s.n for s in substrates)
        )
        block = stack_traces(traces, n_nodes)
    replicates = block.replicates
    if isinstance(substrates, Substrate):
        substrate_list = [substrates] * replicates
    else:
        substrate_list = list(substrates)
        if len(substrate_list) != replicates:
            raise ValueError(
                f"{len(substrate_list)} substrates for {replicates} traces"
            )
    if seeds is None:
        seeds = [None] * replicates
    elif len(seeds) != replicates:
        raise ValueError(f"{len(seeds)} seeds for {replicates} traces")

    results = []
    for i in range(replicates):
        run_policy = policy() if callable(policy) else policy
        results.append(
            simulate_batched(
                substrate_list[i],
                run_policy,
                block.traces[i],
                costs,
                routing,
                seeds[i],
                max_servers,
            )
        )
    return results
