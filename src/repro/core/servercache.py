"""The inactive-server cache of §III: a bounded FIFO queue with expiry.

ONBR and ONTH manage deactivated servers in a constant-size queue (size 3 in
the paper's simulations): the oldest inactive server is replaced first, an
inactive server expires after ``x`` epochs (x = 20 in the paper), and when a
new server is needed at an empty node the oldest cache entry is the donor
that gets migrated there.

The cache tracks (node, age) pairs; ageing is driven by the owning policy
calling :meth:`tick_epoch` at its epoch boundaries.
"""

from __future__ import annotations

from repro.util.validation import check_positive_int

__all__ = ["InactiveServerCache"]


class InactiveServerCache:
    """Bounded FIFO cache of inactive servers with epoch-based expiry.

    Args:
        max_size: queue capacity; pushing to a full queue drops the oldest
            entry (that server leaves use).
        expiry_epochs: entries older than this many epochs are dropped by
            :meth:`tick_epoch`.
    """

    def __init__(self, max_size: int = 3, expiry_epochs: int = 20) -> None:
        self._max_size = check_positive_int("max_size", max_size)
        self._expiry = check_positive_int("expiry_epochs", expiry_epochs)
        self._entries: list[tuple[int, int]] = []  # (node, age), oldest first

    # -- queries ----------------------------------------------------------------

    @property
    def max_size(self) -> int:
        """Queue capacity."""
        return self._max_size

    @property
    def expiry_epochs(self) -> int:
        """Number of epochs after which an entry expires."""
        return self._expiry

    @property
    def nodes(self) -> tuple[int, ...]:
        """Cached server nodes, oldest first (the FIFO order)."""
        return tuple(node for node, _age in self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node: int) -> bool:
        return any(node == entry for entry, _age in self._entries)

    # -- mutations ----------------------------------------------------------------

    def push(self, node: int) -> "int | None":
        """Add a freshly deactivated server at ``node``.

        Returns the node of the *evicted* oldest entry when the queue was
        full, else ``None``. Pushing a node already cached is rejected: a
        node hosts at most one server.
        """
        if node in self:
            raise ValueError(f"node {node} is already in the inactive cache")
        evicted = None
        if len(self._entries) >= self._max_size:
            evicted, _age = self._entries.pop(0)
        self._entries.append((int(node), 0))
        return evicted

    def pop_oldest(self) -> "int | None":
        """Remove and return the oldest cached node (migration donor), or None."""
        if not self._entries:
            return None
        node, _age = self._entries.pop(0)
        return node

    def remove(self, node: int) -> bool:
        """Consume the entry at ``node`` (in-place activation). True if found."""
        for i, (entry, _age) in enumerate(self._entries):
            if entry == node:
                del self._entries[i]
                return True
        return False

    def tick_epoch(self) -> list[int]:
        """Age every entry by one epoch; return the nodes that expired."""
        aged = [(node, age + 1) for node, age in self._entries]
        expired = [node for node, age in aged if age >= self._expiry]
        self._entries = [(node, age) for node, age in aged if age < self._expiry]
        return expired

    def clear(self) -> None:
        """Drop every entry (all cached servers leave use)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InactiveServerCache(nodes={list(self.nodes)}, max_size={self._max_size})"
