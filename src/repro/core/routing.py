"""Request routing: "requests are routed to the server of minimal access costs" (§II-B).

Given the active server locations and the round's request multiset (an array
of access-point node indices), routing produces

* an assignment of each request to a server,
* the latency part of the access cost: shortest-path latency per request
  (plus the constant first wireless hop), and
* the load part: ``Σ_v load(v, t)`` from the per-server request counts.

Two strategies are provided:

* :attr:`RoutingStrategy.NEAREST` sends every request to its
  latency-closest active server. For the paper's linear load model with
  uniform node strengths this is exactly optimal — the summed load is
  assignment-invariant there — and it vectorises to one ``argmin`` over a
  distance slice, which is what makes the 1000-node sweeps feasible.
* :attr:`RoutingStrategy.LOAD_AWARE` assigns requests sequentially, each to
  the server with the smallest *marginal* access cost (latency plus load
  increase). This matters for convex load functions (quadratic model of
  Figures 1–2), where piling requests on one server is super-linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.costs import CostModel
from repro.topology.substrate import Substrate

__all__ = ["RoutingStrategy", "RoutingResult", "route_requests", "nearest_latency_cost"]


class RoutingStrategy(Enum):
    """How requests pick their serving server."""

    NEAREST = "nearest"
    LOAD_AWARE = "load_aware"


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of routing one round's requests.

    Attributes:
        latency_cost: ``Σ delay(r)`` including the wireless first hop.
        load_cost: ``Σ_v load(v, t)`` under the cost model's load function.
        counts: per-server request counts, aligned with the ``servers``
            argument order of :func:`route_requests`.
        assignment: per-request index into the ``servers`` argument.
    """

    latency_cost: float
    load_cost: float
    counts: np.ndarray
    assignment: np.ndarray

    @property
    def access_cost(self) -> float:
        """Total access cost ``Costacc`` of the round (latency + load)."""
        return self.latency_cost + self.load_cost


def route_requests(
    substrate: Substrate,
    servers: "np.ndarray | tuple[int, ...]",
    requests: np.ndarray,
    costs: CostModel,
    strategy: RoutingStrategy = RoutingStrategy.NEAREST,
) -> RoutingResult:
    """Route ``requests`` (access-point indices) to active ``servers``.

    Args:
        substrate: the substrate network.
        servers: node indices of *active* servers (at least one unless the
            round is empty).
        requests: int array of access-point node indices, one per request;
            duplicates express the multiset σt.
        costs: cost model providing the load function and wireless hop.
        strategy: assignment strategy, see :class:`RoutingStrategy`.

    Returns:
        A :class:`RoutingResult`; zero-valued for an empty round.

    Raises:
        ValueError: when requests exist but no server is active, or when a
            request or server carries a negative node index (which would
            otherwise wrap via numpy fancy indexing and silently route to
            the substrate's last node).
    """
    servers = np.asarray(servers, dtype=np.int64)
    requests = np.asarray(requests, dtype=np.int64)

    if requests.size == 0:
        return RoutingResult(
            latency_cost=0.0,
            load_cost=0.0,
            counts=np.zeros(servers.size, dtype=np.int64),
            assignment=np.zeros(0, dtype=np.int64),
        )
    if servers.size == 0:
        raise ValueError("cannot route requests: no active servers")
    if int(requests.min()) < 0:
        raise ValueError(
            f"cannot route requests: negative node index {int(requests.min())}"
        )
    if servers.size and int(servers.min()) < 0:
        raise ValueError(
            f"cannot route requests: negative server node {int(servers.min())}"
        )

    if strategy is RoutingStrategy.NEAREST:
        return _route_nearest(substrate, servers, requests, costs)
    if strategy is RoutingStrategy.LOAD_AWARE:
        return _route_load_aware(substrate, servers, requests, costs)
    raise ValueError(f"unknown routing strategy: {strategy!r}")


def _route_nearest(
    substrate: Substrate,
    servers: np.ndarray,
    requests: np.ndarray,
    costs: CostModel,
) -> RoutingResult:
    distances = substrate.distances[np.ix_(servers, requests)]
    assignment = np.argmin(distances, axis=0)
    latency = distances[assignment, np.arange(requests.size)].sum()
    latency += costs.wireless_hop * requests.size
    counts = np.bincount(assignment, minlength=servers.size)
    load = costs.load(substrate.strengths[servers], counts).sum()
    return RoutingResult(float(latency), float(load), counts, assignment)


def _route_load_aware(
    substrate: Substrate,
    servers: np.ndarray,
    requests: np.ndarray,
    costs: CostModel,
) -> RoutingResult:
    strengths = substrate.strengths[servers]
    distances = substrate.distances[np.ix_(servers, requests)]
    counts = np.zeros(servers.size, dtype=np.int64)
    assignment = np.empty(requests.size, dtype=np.int64)
    latency = 0.0

    current_load = costs.load(strengths, counts)
    for i in range(requests.size):
        bumped = costs.load(strengths, counts + 1)
        marginal = distances[:, i] + (bumped - current_load)
        choice = int(np.argmin(marginal))
        assignment[i] = choice
        latency += float(distances[choice, i])
        counts[choice] += 1
        current_load[choice] = bumped[choice]

    latency += costs.wireless_hop * requests.size
    load = costs.load(strengths, counts).sum()
    return RoutingResult(float(latency), float(load), counts, assignment)


def nearest_latency_cost(
    substrate: Substrate,
    servers: "np.ndarray | tuple[int, ...]",
    requests: np.ndarray,
) -> float:
    """Latency part of the access cost under nearest routing (no load, no hop).

    The vectorised primitive used by candidate evaluation: a single
    ``min``-reduction over a distance slice.
    """
    requests = np.asarray(requests, dtype=np.int64)
    if requests.size == 0:
        return 0.0
    servers = np.asarray(servers, dtype=np.int64)
    if servers.size == 0:
        raise ValueError("cannot route requests: no active servers")
    return float(substrate.distances[np.ix_(servers, requests)].min(axis=0).sum())
