"""Server load functions ``load(v, t) = f(ω(v), η(v, t))`` (§II-B).

The access cost of a round is the sum of request latencies *plus* the load
of every node: the load captures the latency contribution of a busy server.
The paper's examples are the linear model ``η/ω`` and — in the motivating
Figure 1/2 experiments — a quadratic model where the marginal cost of a
request grows with the queue, pushing the algorithms to allocate more
servers.

A load function maps (``strengths``, ``request counts``) arrays to per-node
load values; all implementations are vectorised over nodes. Custom shapes
can be supplied with :class:`CallableLoad`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

__all__ = ["LoadFunction", "LinearLoad", "QuadraticLoad", "PowerLoad", "CallableLoad"]


@runtime_checkable
class LoadFunction(Protocol):
    """Protocol for load models: per-node load from strength and demand."""

    #: True when total load depends only on the *total* number of requests
    #: (not on how they are split across servers) under uniform strengths.
    #: The candidate evaluators exploit this to rank configurations by
    #: latency alone (see DESIGN.md §3).
    assignment_invariant_for_uniform_strength: bool

    def __call__(self, strengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Per-node load values for ``counts`` requests on nodes of ``strengths``."""


@dataclass(frozen=True)
class LinearLoad:
    """The paper's simple model ``load = η(v, t) / ω(v)``.

    With uniform strengths the summed load equals ``Σ η / ω`` — a constant
    for a fixed request set — so the split across servers does not matter,
    which is why this is the cheap default for large-network sweeps.
    """

    assignment_invariant_for_uniform_strength: bool = True

    def __call__(self, strengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
        return np.asarray(counts, dtype=np.float64) / np.asarray(strengths, dtype=np.float64)


@dataclass(frozen=True)
class QuadraticLoad:
    """Quadratic congestion model ``load = (η(v, t) / ω(v))²``.

    Used by the paper's Figure 1/2 motivation: steeper load functions make
    ONTH allocate more servers to balance the per-server queue.
    """

    assignment_invariant_for_uniform_strength: bool = False

    def __call__(self, strengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
        ratio = np.asarray(counts, dtype=np.float64) / np.asarray(strengths, dtype=np.float64)
        return ratio * ratio


@dataclass(frozen=True)
class PowerLoad:
    """General monomial model ``load = (η/ω)^exponent`` for ablations.

    ``exponent=1`` reproduces :class:`LinearLoad`, ``exponent=2``
    :class:`QuadraticLoad`; intermediate exponents let the ablation bench
    sweep the congestion sensitivity continuously.
    """

    exponent: float = 1.0

    def __post_init__(self) -> None:
        if not self.exponent >= 1.0:
            raise ValueError(f"exponent must be >= 1 (convex load), got {self.exponent}")

    @property
    def assignment_invariant_for_uniform_strength(self) -> bool:
        return self.exponent == 1.0

    def __call__(self, strengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
        ratio = np.asarray(counts, dtype=np.float64) / np.asarray(strengths, dtype=np.float64)
        return np.power(ratio, self.exponent)


@dataclass(frozen=True)
class CallableLoad:
    """Adapter wrapping an arbitrary ``f(ω, η) -> load`` vectorised callable."""

    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    assignment_invariant_for_uniform_strength: bool = False

    def __call__(self, strengths: np.ndarray, counts: np.ndarray) -> np.ndarray:
        result = np.asarray(self.fn(strengths, counts), dtype=np.float64)
        if result.shape != np.asarray(counts).shape:
            raise ValueError(
                f"load callable returned shape {result.shape}, expected {np.asarray(counts).shape}"
            )
        return result
