"""Allocation-policy interface: the decision maker of the online game (§II-E).

Every strategy — online (§III) or offline (§IV) — is an
:class:`AllocationPolicy`. The simulator drives the synchronous game:

1. the round's requests arrive,
2. the policy's *current* configuration pays the access cost,
3. the policy returns the next configuration and the simulator prices the
   transition (running + migration + creation costs).

Offline strategies additionally implement :class:`OfflinePolicy` and receive
the entire trace before the run starts — the paper's "demand known ahead of
time" standpoint. They still run through the same simulator so that their
ledgers are produced by exactly the same accounting code as the online
algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.routing import RoutingResult
from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = ["AllocationPolicy", "OfflinePolicy"]


class AllocationPolicy(ABC):
    """Base class for server allocation strategies."""

    #: Whether the policy must see the complete trace before the run. Online
    #: policies leave this ``False`` and the simulator feeds them rounds from
    #: any round-iterable — including lazily generated
    #: :class:`~repro.traces.streaming.StreamingTrace` streams — in O(round)
    #: memory. :class:`OfflinePolicy` overrides it to ``True``, making the
    #: simulator materialise streaming input before :meth:`~OfflinePolicy.prepare`.
    requires_full_trace: bool = False

    @property
    def name(self) -> str:
        """Display name used in ledgers and reports."""
        return type(self).__name__

    @abstractmethod
    def reset(
        self,
        substrate: Substrate,
        costs: CostModel,
        rng: np.random.Generator,
    ) -> Configuration:
        """Bind to a substrate and return the initial configuration ``γ0``.

        Called once per run before any request arrives; implementations must
        clear all epoch state so a policy object can be reused across runs.
        The returned configuration is *not* charged (the system starts there,
        as in OPT's ``opt[0]`` base case).
        """

    @abstractmethod
    def decide(
        self,
        t: int,
        requests: np.ndarray,
        routing: RoutingResult,
    ) -> Configuration:
        """Choose the configuration for the end of round ``t``.

        Args:
            t: round index.
            requests: the round's request multiset (access-point indices).
            routing: how those requests were served by the *current*
                configuration, including the access cost just paid.

        Returns:
            The next configuration; returning the current one means "no
            change" and is free.
        """

    # -- batched execution protocol ---------------------------------------------

    def bind_batch_gather(self, gather) -> bool:
        """Offer a precomputed distance gather for the next run.

        The batched simulator (:mod:`repro.core.batch`) calls this right
        before :meth:`reset` with a
        :class:`~repro.core.batch.DistanceGather` covering the run's full
        trace. A policy that can serve its request windows from the gather
        stores it and returns ``True``. Opting in is a contract:

        * ``reset`` and ``decide`` consume **no randomness** — a sibling
          policy falling back to the scalar path must observe an identical
          rng stream either way;
        * every round is fed, in order, to windows created from the gather
          (``gather.new_window()``), exactly once per window per round.

        The default declines, which routes the policy through the scalar
        :func:`~repro.core.simulator.simulate` unchanged.
        """
        return False

    def unbind_batch_gather(self) -> None:
        """Drop a previously bound gather (called after a batched run)."""


class OfflinePolicy(AllocationPolicy):
    """A policy that sees the full request sequence before the run."""

    requires_full_trace: bool = True

    @abstractmethod
    def prepare(self, trace: Trace) -> None:
        """Receive the complete trace ahead of time (called before reset).

        Declaring ``requires_full_trace`` means ``trace`` is always a fully
        materialised :class:`~repro.workload.base.Trace`: the simulator (and
        ``Opt.solve``) run streaming input through
        :func:`~repro.workload.base.as_trace` first, which is exactly the
        O(trace)-memory cost an offline policy's lookahead implies.
        Implementations may therefore index and re-iterate ``trace`` freely.
        """
