"""Vectorised evaluation of candidate configurations over request batches.

The best-response steps of ONBR/ONTH (§III-A) and the greedy placement of
OFFSTAT (§V-B) all answer the same question: *given the requests of some
window (an epoch, or the whole trace), how much access cost would a
candidate server placement have incurred?* This module provides that
primitive, engineered so that scanning all ``O(n)`` single-change candidates
costs a handful of numpy broadcasts instead of ``O(n · |σ|)`` Python work:

* the window's requests are flattened into one index array with per-round
  offsets (:class:`RequestBatch`);
* per-request *base* latencies under the current placement are computed
  once; adding a candidate server ``u`` then costs one
  ``minimum(D[u], base)`` reduction, and the whole candidate family is a
  single ``(n × R)`` broadcast;
* the load term is added exactly. For assignment-invariant load models
  (linear load, uniform strengths — the paper's default) it is a constant
  across candidates; otherwise the family is ranked by latency and a
  shortlist is re-scored exactly, including per-round loads.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostModel
from repro.topology.substrate import Substrate

__all__ = ["RequestBatch"]

#: How many latency-best candidates are re-scored exactly when the load
#: model is not assignment-invariant.
_SHORTLIST_SIZE = 8


class RequestBatch:
    """A window of request rounds, flattened for vectorised evaluation.

    Args:
        substrate: the substrate network (provides distances/strengths).
        costs: the cost model (load function and wireless hop).
        rounds: list of per-round request arrays; may be empty.
    """

    def __init__(
        self,
        substrate: Substrate,
        costs: CostModel,
        rounds: "list[np.ndarray] | tuple[np.ndarray, ...]" = (),
    ) -> None:
        self._substrate = substrate
        self._costs = costs
        self._rounds: list[np.ndarray] = []
        self._flat: "np.ndarray | None" = None
        self._round_ids: "np.ndarray | None" = None
        self._sizes: "np.ndarray | None" = None
        self._invariant: "bool | None" = None
        self._inv_load: "float | None" = None
        for arr in rounds:
            self.add_round(arr)

    # -- accumulation -----------------------------------------------------------

    def add_round(self, requests: np.ndarray) -> None:
        """Append one round's request multiset to the window."""
        self._rounds.append(np.asarray(requests, dtype=np.int64))
        self._flat = None
        self._round_ids = None
        self._sizes = None
        self._inv_load = None

    def clear(self) -> None:
        """Empty the window (start of a new epoch)."""
        self._rounds.clear()
        self._flat = None
        self._round_ids = None
        self._sizes = None
        self._inv_load = None

    @property
    def n_rounds(self) -> int:
        """Number of rounds in the window."""
        return len(self._rounds)

    @property
    def total_requests(self) -> int:
        """Number of requests in the window."""
        return int(self.flat.size)

    @property
    def flat(self) -> np.ndarray:
        """All requests of the window, concatenated."""
        if self._flat is None:
            self._flat = (
                np.concatenate(self._rounds)
                if self._rounds
                else np.zeros(0, dtype=np.int64)
            )
        return self._flat

    @property
    def round_ids(self) -> np.ndarray:
        """Round index of each entry of :attr:`flat`."""
        if self._round_ids is None:
            sizes = [arr.size for arr in self._rounds]
            self._round_ids = np.repeat(
                np.arange(len(self._rounds), dtype=np.int64), sizes
            )
        return self._round_ids

    @property
    def round_sizes(self) -> np.ndarray:
        """Per-round request counts as float64 (memoised).

        Every candidate scan over a non-trivial load model consults the
        per-round sizes; rebuilding the array per candidate was measurable,
        so it is cached alongside :attr:`flat` and :attr:`round_ids`.
        """
        if self._sizes is None:
            self._sizes = np.asarray(
                [arr.size for arr in self._rounds], dtype=np.float64
            )
        return self._sizes

    # -- distance access (overridable by the batched gather window) -------------

    def _distance_block(self, rows: np.ndarray) -> np.ndarray:
        """Distances from ``rows`` to every window request, ``(len(rows), R)``."""
        return self._substrate.distances[np.ix_(rows, self.flat)]

    def _candidate_matrix(self) -> np.ndarray:
        """Distances from *every* node to every window request, ``(n, R)``."""
        return self._substrate.distances[:, self.flat]

    # -- exact costs -----------------------------------------------------------

    def exact_access_cost(self, active: "np.ndarray | tuple[int, ...]") -> float:
        """Access cost of serving the window with servers at ``active``.

        Latency uses nearest routing; load is computed per round from the
        induced request counts, exactly as the simulator would charge it.
        """
        active = np.asarray(active, dtype=np.int64)
        flat = self.flat
        if flat.size == 0:
            return 0.0
        if active.size == 0:
            raise ValueError("cannot evaluate a window against zero active servers")

        distances = self._distance_block(active)
        assignment = np.argmin(distances, axis=0)
        latency = float(distances[assignment, np.arange(flat.size)].sum())
        latency += self._costs.wireless_hop * flat.size

        counts = np.zeros((self.n_rounds, active.size), dtype=np.int64)
        np.add.at(counts, (self.round_ids, assignment), 1)
        strengths = self._substrate.strengths[active]
        load = float(self._costs.load(strengths, counts).sum())
        return latency + load

    def _load_is_invariant(self) -> bool:
        if self._invariant is None:
            uniform = bool(
                np.all(self._substrate.strengths == self._substrate.strengths[0])
            )
            self._invariant = (
                uniform and self._costs.load.assignment_invariant_for_uniform_strength
            )
        return self._invariant

    def _invariant_load(self) -> float:
        """Window load total when it does not depend on the assignment."""
        if self._inv_load is None:
            sizes = self.round_sizes
            strength = float(self._substrate.strengths[0])
            self._inv_load = float(
                self._costs.load(np.full(sizes.shape, strength), sizes).sum()
            )
        return self._inv_load

    # -- candidate families ---------------------------------------------------------

    def base_latency(self, active: "np.ndarray | tuple[int, ...]") -> np.ndarray:
        """Per-request nearest-server latency under ``active`` (no hop, no load)."""
        active = np.asarray(active, dtype=np.int64)
        if self.flat.size == 0:
            return np.zeros(0, dtype=np.float64)
        if active.size == 0:
            return np.full(self.flat.size, np.inf)
        return self._distance_block(active).min(axis=0)

    def addition_costs(
        self, active: "np.ndarray | tuple[int, ...]",
        base: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Access cost of the window for ``active + {u}``, for every node ``u``.

        Entry ``u`` of the result is the exact window access cost of the
        placement ``active ∪ {u}`` (for ``u`` already in ``active`` this
        equals the unchanged cost). One ``(n × R)`` broadcast plus — for
        non-invariant load models — an exact re-score of the latency-best
        shortlist; other entries then carry the latency plus a lower bound
        of the load, which preserves the argmin.
        """
        active = np.asarray(active, dtype=np.int64)
        n = self._substrate.n
        flat = self.flat
        if flat.size == 0:
            return np.zeros(n, dtype=np.float64)

        base = self.base_latency(active) if base is None else base
        latency = np.minimum(self._candidate_matrix(), base).sum(axis=1)
        latency += self._costs.wireless_hop * flat.size

        if self._load_is_invariant():
            return latency + self._invariant_load()
        return self._with_exact_shortlist(latency, active)

    def _with_exact_shortlist(
        self, latency: np.ndarray, active: np.ndarray
    ) -> np.ndarray:
        """Exactly re-score the cheapest candidates for convex loads.

        For non-invariant loads the true access cost is latency + load with
        load depending on the split. We add a *lower bound* of the load
        (perfect balancing across all servers, by convexity the cheapest
        possible split) to every entry, score a latency-best shortlist
        exactly, then lazily keep scoring whichever entry is currently the
        argmin until the argmin itself is exact. The argmin of the returned
        array is therefore the true best candidate; non-argmin entries may
        remain lower bounds.
        """
        active_set = set(active.tolist())

        def exact(u: int) -> float:
            candidate = active if u in active_set else np.append(active, u)
            return self.exact_access_cost(candidate)

        bound = latency + self._balanced_load_bound(active.size + 1)
        return self._lazy_exact_argmin(bound, exact)

    def _lazy_exact_argmin(self, bound: np.ndarray, exact) -> np.ndarray:
        """Refine ``bound`` entries with ``exact`` until the argmin is exact.

        Sound whenever ``bound[u] <= exact(u)`` for all u (true for the
        convex built-in load models); terminates because each iteration
        fixes one more entry.
        """
        result = bound.copy()
        order = np.argsort(result, kind="stable")
        scored = np.zeros(result.size, dtype=bool)
        for u in order[: min(_SHORTLIST_SIZE, order.size)].tolist():
            if np.isfinite(result[u]):
                result[u] = exact(u)
                scored[u] = True
        while True:
            best = int(np.argmin(result))
            if scored[best] or not np.isfinite(result[best]):
                return result
            result[best] = exact(best)
            scored[best] = True

    def _balanced_load_bound(self, k: int) -> float:
        """Lower bound on window load: every round split evenly over k servers.

        Valid for convex, per-server load functions (all built-ins): by
        convexity the balanced split minimises the summed load.
        """
        sizes = self.round_sizes
        strength = float(self._substrate.strengths.max())
        even = sizes / k
        loads = self._costs.load(np.full(sizes.shape, strength), even)
        return float(loads.sum() * k) if sizes.size else 0.0

    def removal_costs(
        self, active: "np.ndarray | tuple[int, ...]"
    ) -> np.ndarray:
        """Window access cost of ``active − {active[i]}`` for each server index ``i``.

        Exact (there are only ``k`` candidates, so no shortlist is needed).
        A singleton placement cannot be reduced; its entry is ``+inf``.
        """
        active = np.asarray(active, dtype=np.int64)
        costs = np.full(active.size, np.inf)
        if active.size <= 1:
            return costs
        for i in range(active.size):
            remaining = np.delete(active, i)
            costs[i] = self.exact_access_cost(remaining)
        return costs

    def migration_costs(
        self, active: "np.ndarray | tuple[int, ...]", server_index: int
    ) -> np.ndarray:
        """Window access cost of moving server ``active[server_index]`` to each node.

        Entry ``u`` is the window access cost of
        ``active − {active[server_index]} + {u}``; entries for nodes already
        in ``active`` are ``+inf`` (no co-location). Uses the same
        broadcast-plus-shortlist scheme as :meth:`addition_costs`.
        """
        active = np.asarray(active, dtype=np.int64)
        if not 0 <= server_index < active.size:
            raise IndexError(f"server index {server_index} out of range")
        rest = np.delete(active, server_index)
        flat = self.flat
        n = self._substrate.n
        if flat.size == 0:
            return np.zeros(n, dtype=np.float64)

        if rest.size == 0:
            base = np.full(flat.size, np.inf)
        else:
            base = self.base_latency(rest)
        latency = np.minimum(self._candidate_matrix(), base).sum(axis=1)
        latency += self._costs.wireless_hop * flat.size

        if self._load_is_invariant():
            result = latency + self._invariant_load()
        else:
            result = self._migration_shortlist(latency, rest)
        result[active] = np.inf
        return result

    def migration_costs_all(
        self, active: "np.ndarray | tuple[int, ...]"
    ) -> np.ndarray:
        """All migration families at once: row ``i`` is ``migration_costs(active, i)``.

        The epoch scan asks for every server's family against the same
        window; batched windows override this with one stacked pass.
        """
        active = np.asarray(active, dtype=np.int64)
        result = np.empty((active.size, self._substrate.n), dtype=np.float64)
        for i in range(active.size):
            result[i] = self.migration_costs(active, i)
        return result

    def _migration_shortlist(self, latency: np.ndarray, rest: np.ndarray) -> np.ndarray:
        def exact(u: int) -> float:
            return self.exact_access_cost(np.append(rest, u))

        bound = latency + self._balanced_load_bound(rest.size + 1)
        return self._lazy_exact_argmin(bound, exact)
