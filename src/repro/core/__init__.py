"""Core model of the paper: configurations, costs, routing and the game loop.

This package implements §II of the paper — everything the allocation
strategies of :mod:`repro.algorithms` are built on:

* :class:`Configuration` — where servers are and in which of the three
  states (Definition 3.1);
* :class:`CostModel` — β, c, Ra, Ri, the load function and optional
  distance-dependent migration costs;
* :func:`price_transition` — the transition semantics of Examples 1-3;
* :func:`route_requests` — access cost of a round (latency + load);
* :func:`simulate` — the synchronous online game of §II-E, producing a
  per-round :class:`RunResult` ledger.
"""

from repro.core.config import Configuration
from repro.core.costs import CostModel, bandwidth_migration_matrix
from repro.core.evaluation import RequestBatch
from repro.core.load import (
    CallableLoad,
    LinearLoad,
    LoadFunction,
    PowerLoad,
    QuadraticLoad,
)
from repro.core.multiservice import ServiceSpec, simulate_services
from repro.core.policy import AllocationPolicy, OfflinePolicy
from repro.core.results import CostBreakdown, RoundRecord, RunLedger, RunResult
from repro.core.routing import (
    RoutingResult,
    RoutingStrategy,
    nearest_latency_cost,
    route_requests,
)
from repro.core.servercache import InactiveServerCache
from repro.core.simulator import simulate
from repro.core.transitions import TransitionOutcome, price_transition

__all__ = [
    "Configuration",
    "CostModel",
    "bandwidth_migration_matrix",
    "RequestBatch",
    "LoadFunction",
    "LinearLoad",
    "QuadraticLoad",
    "PowerLoad",
    "CallableLoad",
    "AllocationPolicy",
    "OfflinePolicy",
    "CostBreakdown",
    "RoundRecord",
    "RunLedger",
    "RunResult",
    "RoutingResult",
    "RoutingStrategy",
    "route_requests",
    "nearest_latency_cost",
    "InactiveServerCache",
    "simulate",
    "ServiceSpec",
    "simulate_services",
    "TransitionOutcome",
    "price_transition",
]
