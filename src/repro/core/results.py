"""Per-round cost ledger and aggregated run results.

Every simulated round produces one :class:`RoundRecord` with the full cost
breakdown of §II-B/§II-C (latency, load, running, migration, creation) plus
the server census; a completed run is summarised in an immutable
:class:`RunResult` exposing the series as numpy arrays — Figures 1 and 2
plot exactly these series, and every other figure aggregates their totals.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np

__all__ = ["RoundRecord", "RunResult", "RunLedger", "CostBreakdown"]


@dataclass(frozen=True)
class RoundRecord:
    """Cost breakdown of a single round of the online game (§II-E).

    Attributes:
        t: round index.
        latency_cost: summed request delays (incl. wireless hop).
        load_cost: summed server load latencies.
        running_cost: ``Ra·#active + Ri·#inactive`` after reconfiguration.
        migration_cost: β-costs paid this round.
        creation_cost: c-costs paid this round.
        migrations: number of server moves this round.
        creations: number of server creations this round.
        n_active: active servers after reconfiguration.
        n_inactive: inactive servers after reconfiguration.
        n_requests: size of the round's request multiset.
    """

    t: int
    latency_cost: float
    load_cost: float
    running_cost: float
    migration_cost: float
    creation_cost: float
    migrations: int
    creations: int
    n_active: int
    n_inactive: int
    n_requests: int

    @property
    def access_cost(self) -> float:
        """Costacc of the round: latency plus load."""
        return self.latency_cost + self.load_cost

    @property
    def total_cost(self) -> float:
        """Everything paid this round."""
        return (
            self.latency_cost
            + self.load_cost
            + self.running_cost
            + self.migration_cost
            + self.creation_cost
        )


@dataclass(frozen=True)
class CostBreakdown:
    """Totals of one run, split by cost factor (the bars of Figure 6)."""

    access: float
    running: float
    migration: float
    creation: float

    @property
    def total(self) -> float:
        """Grand total of the run."""
        return self.access + self.running + self.migration + self.creation

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.access + other.access,
            self.running + other.running,
            self.migration + other.migration,
            self.creation + other.creation,
        )

    def scaled(self, factor: float) -> "CostBreakdown":
        """Component-wise scaling (used for averaging over runs)."""
        return CostBreakdown(
            self.access * factor,
            self.running * factor,
            self.migration * factor,
            self.creation * factor,
        )


class RunLedger:
    """Mutable accumulator the simulator writes into, column-oriented."""

    _FIELDS = (
        "latency_cost",
        "load_cost",
        "running_cost",
        "migration_cost",
        "creation_cost",
        "migrations",
        "creations",
        "n_active",
        "n_inactive",
        "n_requests",
    )

    def __init__(self) -> None:
        # Typed columns (8 bytes/round each) instead of lists of boxed
        # Python numbers — a million-round ledger stays ~80 MB instead of
        # several hundred, which is what keeps streaming-trace runs lean.
        self._columns: dict[str, array] = {
            name: array("d" if name.endswith("cost") else "q")
            for name in self._FIELDS
        }

    def append(self, record: RoundRecord) -> None:
        """Record one round."""
        for name in self._FIELDS:
            self._columns[name].append(getattr(record, name))

    def finish(self, policy_name: str, scenario_name: str = "") -> "RunResult":
        """Freeze the ledger into an immutable :class:`RunResult`."""
        arrays = {}
        for name in self._FIELDS:
            dtype = np.float64 if name.endswith("cost") else np.int64
            arr = np.asarray(self._columns[name], dtype=dtype)
            arr.flags.writeable = False
            arrays[name] = arr
        return RunResult(policy_name=policy_name, scenario_name=scenario_name, **arrays)


@dataclass(frozen=True)
class RunResult:
    """Immutable result of one simulated run; all series share one time axis."""

    policy_name: str
    scenario_name: str
    latency_cost: np.ndarray
    load_cost: np.ndarray
    running_cost: np.ndarray
    migration_cost: np.ndarray
    creation_cost: np.ndarray
    migrations: np.ndarray
    creations: np.ndarray
    n_active: np.ndarray
    n_inactive: np.ndarray
    n_requests: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of simulated rounds."""
        return int(self.latency_cost.size)

    @property
    def access_cost(self) -> np.ndarray:
        """Per-round Costacc series (latency + load)."""
        return self.latency_cost + self.load_cost

    @property
    def per_round_total(self) -> np.ndarray:
        """Per-round total cost series."""
        return (
            self.latency_cost
            + self.load_cost
            + self.running_cost
            + self.migration_cost
            + self.creation_cost
        )

    @property
    def total_cost(self) -> float:
        """Grand total over the run — the y-axis of Figures 3-5 and 7-10."""
        return float(self.per_round_total.sum())

    @property
    def breakdown(self) -> CostBreakdown:
        """Totals by cost factor — the series of Figure 6."""
        return CostBreakdown(
            access=float(self.access_cost.sum()),
            running=float(self.running_cost.sum()),
            migration=float(self.migration_cost.sum()),
            creation=float(self.creation_cost.sum()),
        )

    @property
    def total_migrations(self) -> int:
        """Number of migrations over the whole run."""
        return int(self.migrations.sum())

    @property
    def total_creations(self) -> int:
        """Number of creations over the whole run."""
        return int(self.creations.sum())

    @property
    def mean_active_servers(self) -> float:
        """Time-averaged active server count."""
        return float(self.n_active.mean()) if self.rounds else 0.0

    @property
    def peak_active_servers(self) -> int:
        """Maximum simultaneous active servers (the peaks of Figures 1-2)."""
        return int(self.n_active.max()) if self.rounds else 0

    #: Column order used by :meth:`as_rows` and :meth:`save_csv`.
    CSV_COLUMNS = (
        "t", "n_requests", "latency_cost", "load_cost", "running_cost",
        "migration_cost", "creation_cost", "migrations", "creations",
        "n_active", "n_inactive", "total_cost",
    )

    def as_rows(self) -> list[tuple]:
        """The ledger as rows matching :data:`CSV_COLUMNS` (for analysis)."""
        totals = self.per_round_total
        return [
            (
                t,
                int(self.n_requests[t]),
                float(self.latency_cost[t]),
                float(self.load_cost[t]),
                float(self.running_cost[t]),
                float(self.migration_cost[t]),
                float(self.creation_cost[t]),
                int(self.migrations[t]),
                int(self.creations[t]),
                int(self.n_active[t]),
                int(self.n_inactive[t]),
                float(totals[t]),
            )
            for t in range(self.rounds)
        ]

    def save_csv(self, path) -> None:
        """Write the per-round ledger as CSV (one row per round).

        A provenance comment line records the policy and scenario so result
        files remain self-describing when collected in bulk.
        """
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="") as handle:
            handle.write(
                f"# policy={self.policy_name} scenario={self.scenario_name}\n"
            )
            writer = csv.writer(handle)
            writer.writerow(self.CSV_COLUMNS)
            writer.writerows(self.as_rows())

    def record(self, t: int) -> RoundRecord:
        """Reconstruct the :class:`RoundRecord` of round ``t``."""
        if not 0 <= t < self.rounds:
            raise IndexError(f"round {t} outside 0..{self.rounds - 1}")
        return RoundRecord(
            t=t,
            latency_cost=float(self.latency_cost[t]),
            load_cost=float(self.load_cost[t]),
            running_cost=float(self.running_cost[t]),
            migration_cost=float(self.migration_cost[t]),
            creation_cost=float(self.creation_cost[t]),
            migrations=int(self.migrations[t]),
            creations=int(self.creations[t]),
            n_active=int(self.n_active[t]),
            n_inactive=int(self.n_inactive[t]),
            n_requests=int(self.n_requests[t]),
        )
