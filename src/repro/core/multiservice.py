"""Multiple services sharing one substrate (§II-B's full request model).

The paper's requests are tuples ``(a ∈ A, S ∈ S)`` — an access point *and a
service*: the substrate provider hosts several virtualised services, each
with its own server fleet and allocation policy. The evaluation section
only ever exercises one service, so the single-service
:func:`~repro.core.simulator.simulate` is the library's main entry point;
this module implements the general case as a documented extension.

Semantics:

* each service has its own trace, policy, configuration and ledger — the
  game of §II-E runs per service, in lockstep rounds;
* services couple through **shared node load**: the load latency of node
  ``v`` in round ``t`` is ``f(ω(v), η(v, t))`` with ``η`` counting requests
  of *all* services served at ``v``. Each service is charged its share of
  the node load in proportion to its requests there (for linear load this
  equals its stand-alone cost; for convex load, co-location hurts both —
  the contention is the point of the model);
* a node may host at most one server *per service* (different services
  may co-locate; they are distinct virtual machines);
* when the substrate carries a per-node **capacity vector**
  (``Substrate(..., capacities=...)``), routing becomes capacity-aware:
  each node serves at most ``capacities[v]`` requests per round *summed
  over all services*. Requests are placed deterministically — services in
  declaration order, requests in trace order, each at its nearest active
  server with spare capacity (ties to the lower node index), spilling over
  to the next-nearest when the preferred node is full. A round whose
  demand cannot be packed at all raises :class:`ValueError`: capacity is a
  hard packing constraint (the Stolyar-style model the optimizer-backed
  policies plan against), unlike the soft contention of the load function.
  Uncapacitated substrates keep the original vectorised nearest routing,
  bit-for-bit.

The per-service ledgers are ordinary :class:`~repro.core.results.RunResult`
objects, so all analysis tooling applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy, OfflinePolicy
from repro.core.results import RoundRecord, RunLedger, RunResult
from repro.core.routing import RoutingResult
from repro.core.transitions import price_transition
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.rng import ensure_rng

__all__ = ["ServiceSpec", "simulate_services"]


@dataclass
class ServiceSpec:
    """One hosted service: its demand, policy and (optional) cost model."""

    name: str
    policy: AllocationPolicy
    trace: Trace
    costs: "CostModel | None" = None


def _place_capacitated(
    name: str,
    t: int,
    servers: np.ndarray,
    requests: np.ndarray,
    distances: np.ndarray,
    remaining: np.ndarray,
) -> "tuple[np.ndarray, float]":
    """Greedy deterministic capacity-aware placement of one service's round.

    Each request (in trace order) goes to its nearest active server with
    spare capacity — ties to the lower node index via the stable preference
    sort — consuming one unit of the *shared* ``remaining`` budget.  Raises
    when a request finds every active server full: capacity is a hard
    packing constraint.
    """
    preference = np.argsort(distances, axis=0, kind="stable")
    served_at = np.empty(requests.size, dtype=np.int64)
    latency = 0.0
    for j in range(requests.size):
        for rank in preference[:, j]:
            node = int(servers[rank])
            if remaining[node] >= 1.0:
                served_at[j] = node
                latency += float(distances[rank, j])
                remaining[node] -= 1.0
                break
        else:
            raise ValueError(
                f"service {name!r}: request at node {int(requests[j])} in "
                f"round {t} cannot be served — every active server is at "
                "capacity (the per-node capacity vector is a hard packing "
                "constraint)"
            )
    return served_at, latency


def simulate_services(
    substrate: Substrate,
    services: "list[ServiceSpec]",
    default_costs: "CostModel | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> Mapping[str, RunResult]:
    """Run several services over one substrate with shared node load.

    Args:
        substrate: the shared substrate network; when it carries
            ``capacities``, routing enforces them as a per-round per-node
            packing constraint shared across services (see the module
            docstring for the exact placement order).
        services: the hosted services; traces must have equal length
            (lockstep rounds) and unique names.
        default_costs: cost model for services without their own.
        seed: policy randomness (one child stream per service).

    Returns:
        Mapping service name → its :class:`RunResult` ledger.

    Raises:
        ValueError: invalid service set, a service with requests but no
            active server, or — on capacitated substrates — a round whose
            demand cannot be packed within the active servers' capacities.
    """
    if not services:
        raise ValueError("simulate_services needs at least one service")
    names = [spec.name for spec in services]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate service names in {names}")
    horizons = {len(spec.trace) for spec in services}
    if len(horizons) != 1:
        raise ValueError(
            f"all traces must have equal length, got {sorted(horizons)}"
        )
    horizon = horizons.pop()
    default_costs = default_costs if default_costs is not None else CostModel.paper_default()

    rng = ensure_rng(seed)
    streams = rng.spawn(len(services))
    costs_of = {
        spec.name: (spec.costs if spec.costs is not None else default_costs)
        for spec in services
    }

    configs: dict[str, Configuration] = {}
    ledgers = {spec.name: RunLedger() for spec in services}
    for spec, stream in zip(services, streams):
        trace = spec.trace
        if trace.max_node >= substrate.n:
            raise ValueError(
                f"service {spec.name!r} references node {trace.max_node} "
                f"outside the {substrate.n}-node substrate"
            )
        if isinstance(spec.policy, OfflinePolicy):
            spec.policy.prepare(trace)
        configs[spec.name] = spec.policy.reset(substrate, costs_of[spec.name], stream)

    strengths = substrate.strengths
    for t in range(horizon):
        # Phase 1: route every service against its own servers; collect the
        # per-node demand each service induces. On capacitated substrates
        # the per-round budget is shared across services (placement order:
        # services as declared, requests in trace order).
        assignments: dict[str, tuple[np.ndarray, np.ndarray, float]] = {}
        node_counts = np.zeros(substrate.n, dtype=np.int64)
        remaining = (
            substrate.capacities.copy() if substrate.capacitated else None
        )
        for spec in services:
            config = configs[spec.name]
            requests = spec.trace[t]
            if requests.size == 0:
                assignments[spec.name] = (
                    np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 0.0
                )
                continue
            if config.n_active == 0:
                raise ValueError(
                    f"service {spec.name!r} has no active server in round {t}"
                )
            servers = np.asarray(config.active, dtype=np.int64)
            distances = substrate.distances[np.ix_(servers, requests)]
            if remaining is None:
                choice = np.argmin(distances, axis=0)
                latency = float(distances[choice, np.arange(requests.size)].sum())
                served_at = servers[choice]
            else:
                served_at, latency = _place_capacitated(
                    spec.name, t, servers, requests, distances, remaining
                )
            latency += costs_of[spec.name].wireless_hop * requests.size
            assignments[spec.name] = (served_at, requests, latency)
            node_counts += np.bincount(served_at, minlength=substrate.n)

        # Phase 2: shared node load, attributed proportionally to each
        # service's requests at the node.
        busy = np.flatnonzero(node_counts)
        node_load = np.zeros(substrate.n, dtype=np.float64)
        if busy.size:
            # One load function evaluation per service cost model is wrong —
            # load is a property of the *node*; use each service's own model
            # only for attribution weighting. The substrate-level load uses
            # the default model (services share the machine).
            node_load[busy] = default_costs.load(
                strengths[busy], node_counts[busy]
            )

        # Phase 3: decisions and accounting per service.
        for spec in services:
            name = spec.name
            costs = costs_of[name]
            served_at, requests, latency = assignments[name]
            if served_at.size:
                mine = np.bincount(served_at, minlength=substrate.n)
                with np.errstate(invalid="ignore"):
                    share = np.divide(
                        mine, node_counts,
                        out=np.zeros(substrate.n, dtype=np.float64),
                        where=node_counts > 0,
                    )
                load = float((node_load * share).sum())
                counts_for_policy = mine[np.asarray(configs[name].active)]
            else:
                load = 0.0
                counts_for_policy = np.zeros(configs[name].n_active, dtype=np.int64)

            routing = RoutingResult(
                latency_cost=latency,
                load_cost=load,
                counts=counts_for_policy,
                assignment=np.searchsorted(
                    np.asarray(configs[name].active), served_at
                ) if served_at.size else np.zeros(0, dtype=np.int64),
            )
            new_config = spec.policy.decide(t, requests, routing)
            outcome = price_transition(configs[name], new_config, costs)
            configs[name] = new_config

            ledgers[name].append(
                RoundRecord(
                    t=t,
                    latency_cost=latency,
                    load_cost=load,
                    running_cost=costs.running_cost(new_config),
                    migration_cost=outcome.migration_cost,
                    creation_cost=outcome.creation_cost,
                    migrations=outcome.migrations,
                    creations=outcome.creations,
                    n_active=new_config.n_active,
                    n_inactive=new_config.n_inactive,
                    n_requests=int(requests.size),
                )
            )

    return {
        spec.name: ledgers[spec.name].finish(
            spec.policy.name, spec.trace.scenario_name
        )
        for spec in services
    }
