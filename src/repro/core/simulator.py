"""The synchronous online game of §II-E, executed round by round.

:func:`simulate` is the single entry point every experiment uses: it drives
an :class:`~repro.core.policy.AllocationPolicy` over a
:class:`~repro.workload.base.Trace` on a substrate, prices every
configuration change with :func:`~repro.core.transitions.price_transition`,
and returns the full per-round cost ledger.

Accounting per round ``t`` (the exact order of §II-E):

1. requests ``σt`` arrive;
2. the current configuration pays the access cost (request latency plus
   server load);
3. the policy picks the next configuration; migration/creation costs of the
   transition and the running costs of the *new* configuration are paid.

The paper notes the results are insensitive to reordering steps 2 and 3
because one round's requests are much cheaper than a migration.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy, OfflinePolicy
from repro.core.results import RoundRecord, RunLedger, RunResult
from repro.core.routing import RoutingStrategy, route_requests
from repro.core.transitions import price_transition
from repro.topology.substrate import Substrate
from repro.workload.base import RoundIterable, as_trace
from repro.util.rng import ensure_rng

__all__ = ["simulate"]


def simulate(
    substrate: Substrate,
    policy: AllocationPolicy,
    trace: RoundIterable,
    costs: "CostModel | None" = None,
    routing: RoutingStrategy = RoutingStrategy.NEAREST,
    seed: "int | np.random.Generator | None" = None,
    max_servers: "int | None" = None,
) -> RunResult:
    """Run ``policy`` against ``trace`` on ``substrate`` and return the ledger.

    Args:
        substrate: the substrate network.
        policy: the allocation strategy; offline policies are handed the
            trace via ``prepare`` before the run starts.
        trace: the request sequence (one node-index array per round) — a
            materialised :class:`~repro.workload.base.Trace` or any
            round-iterable such as a lazily generated
            :class:`~repro.traces.streaming.StreamingTrace`. Streaming input
            is materialised only when the policy declares
            ``requires_full_trace`` (offline lookahead); online policies run
            in O(round) memory.
        costs: cost model; defaults to the paper's β=40, c=400 model.
        routing: request-to-server assignment strategy.
        seed: randomness for the policy (e.g. ONCONF's random switch).
        max_servers: optional hard cap ``k`` on simultaneous in-use servers;
            a policy exceeding it is a bug and raises.

    Returns:
        The immutable :class:`~repro.core.results.RunResult`.

    Raises:
        ValueError: if the trace references nodes outside the substrate, a
            round with requests finds no active server, or ``max_servers``
            is violated.
    """
    costs = costs if costs is not None else CostModel.paper_default()
    rng = ensure_rng(seed)

    if getattr(policy, "requires_full_trace", False) or isinstance(policy, OfflinePolicy):
        trace = as_trace(trace)

    # A materialised Trace knows its maximum node up front; a streaming
    # trace does not, so the bound check moves into the round loop.
    max_node = getattr(trace, "max_node", None)
    if max_node is not None and max_node >= substrate.n:
        raise ValueError(
            f"trace references node {max_node} but substrate has "
            f"{substrate.n} nodes"
        )
    if costs.migration_matrix is not None and costs.migration_matrix.shape[0] != substrate.n:
        raise ValueError(
            f"migration_matrix is {costs.migration_matrix.shape[0]}x"
            f"{costs.migration_matrix.shape[1]} but substrate has {substrate.n} nodes"
        )

    if isinstance(policy, OfflinePolicy):
        policy.prepare(trace)
    config = policy.reset(substrate, costs, rng)
    _check_config(config, substrate, max_servers, t=-1)

    ledger = RunLedger()
    for t, requests in enumerate(trace):
        if max_node is None and requests.size:
            if int(requests.max()) >= substrate.n:
                raise ValueError(
                    f"round {t} references node {int(requests.max())} but "
                    f"substrate has {substrate.n} nodes"
                )
            if int(requests.min()) < 0:
                raise ValueError(
                    f"round {t} references negative node {int(requests.min())}"
                )
        routed = route_requests(
            substrate, config.active_array, requests, costs, routing,
        )
        new_config = policy.decide(t, requests, routed)
        _check_config(new_config, substrate, max_servers, t)
        outcome = price_transition(config, new_config, costs)
        config = new_config

        ledger.append(
            RoundRecord(
                t=t,
                latency_cost=routed.latency_cost,
                load_cost=routed.load_cost,
                running_cost=costs.running_cost(config),
                migration_cost=outcome.migration_cost,
                creation_cost=outcome.creation_cost,
                migrations=outcome.migrations,
                creations=outcome.creations,
                n_active=config.n_active,
                n_inactive=config.n_inactive,
                n_requests=int(requests.size),
            )
        )

    return ledger.finish(policy.name, getattr(trace, "scenario_name", ""))


def _check_config(
    config: Configuration,
    substrate: Substrate,
    max_servers: "int | None",
    t: int,
) -> None:
    when = "initial configuration" if t < 0 else f"round {t}"
    occupied = config.occupied
    if occupied and max(occupied) >= substrate.n:
        raise ValueError(
            f"{when}: configuration references node {max(occupied)} outside "
            f"the {substrate.n}-node substrate"
        )
    if occupied and min(occupied) < 0:
        # Negative indices would wrap via numpy fancy indexing and silently
        # route against the substrate's last nodes.
        raise ValueError(
            f"{when}: configuration references negative node {min(occupied)}"
        )
    if max_servers is not None and config.n_servers > max_servers:
        raise ValueError(
            f"{when}: {config.n_servers} servers in use exceeds the k={max_servers} cap"
        )
