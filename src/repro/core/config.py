"""Server configurations (Definition 3.1).

A configuration describes, for each virtual server, whether it is *not in
use*, *inactive* or *active*, and where the in-use servers are located. We
represent a configuration by the set of nodes hosting active servers plus an
ordered tuple of nodes hosting inactive servers; the order is the FIFO age
order of the inactive-server cache (oldest first), which matters because the
ONBR/ONTH queues replace the oldest inactive server first (§III-A).

Configurations are immutable and hashable: ONCONF keeps a counter per
configuration and OPT indexes its dynamic-programming table by them.

The model allows at most one server per node — migrating a server to a node
leaves the origin empty (§II-C), so co-locating servers is never useful and
the class rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """An immutable placement of active and inactive servers.

    Attributes:
        active: sorted tuple of node indices hosting *active* servers.
        inactive: tuple of node indices hosting *inactive* servers in FIFO
            age order, oldest first. Not sorted — order is semantic.
    """

    active: tuple[int, ...] = ()
    inactive: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        active = tuple(sorted(int(v) for v in self.active))
        inactive = tuple(int(v) for v in self.inactive)
        object.__setattr__(self, "active", active)
        object.__setattr__(self, "inactive", inactive)
        if len(set(active)) != len(active):
            raise ValueError(f"duplicate active server nodes in {active}")
        if len(set(inactive)) != len(inactive):
            raise ValueError(f"duplicate inactive server nodes in {inactive}")
        overlap = set(active) & set(inactive)
        if overlap:
            raise ValueError(
                f"nodes {sorted(overlap)} host both an active and an inactive server"
            )
        if any(v < 0 for v in active + inactive):
            raise ValueError("node indices must be non-negative")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def of(
        cls,
        active: Iterable[int] = (),
        inactive: Iterable[int] = (),
    ) -> "Configuration":
        """Build a configuration from any iterables of node indices."""
        return cls(tuple(active), tuple(inactive))

    @classmethod
    def single(cls, node: int) -> "Configuration":
        """One active server at ``node`` — the paper's canonical start state."""
        return cls((int(node),))

    @classmethod
    def empty(cls) -> "Configuration":
        """No servers at all (every server 'not in use')."""
        return cls()

    # -- queries ----------------------------------------------------------------

    @property
    def active_set(self) -> frozenset[int]:
        """Active server nodes as a frozenset (for set algebra)."""
        return frozenset(self.active)

    @property
    def inactive_set(self) -> frozenset[int]:
        """Inactive server nodes as a frozenset."""
        return frozenset(self.inactive)

    @property
    def n_active(self) -> int:
        """Number of active servers (``kcur`` in §III)."""
        return len(self.active)

    @property
    def n_inactive(self) -> int:
        """Number of inactive servers."""
        return len(self.inactive)

    @property
    def n_servers(self) -> int:
        """Total number of in-use servers (active + inactive)."""
        return len(self.active) + len(self.inactive)

    @property
    def occupied(self) -> frozenset[int]:
        """All nodes hosting any server."""
        return frozenset(self.active) | frozenset(self.inactive)

    @property
    def active_array(self) -> np.ndarray:
        """The active nodes as a read-only int64 array (cached).

        The simulator routes every round against the active set; caching the
        conversion on the frozen instance means a configuration held across
        an epoch pays it once instead of once per round.
        """
        arr = self.__dict__.get("_active_array")
        if arr is None:
            arr = np.asarray(self.active, dtype=np.int64)
            arr.flags.writeable = False
            object.__setattr__(self, "_active_array", arr)
        return arr

    def hosts_active(self, node: int) -> bool:
        """True when ``node`` hosts an active server."""
        return node in self.active_set

    def hosts_inactive(self, node: int) -> bool:
        """True when ``node`` hosts an inactive server."""
        return node in self.inactive_set

    # -- functional updates (return new configurations) --------------------------

    def with_active(self, node: int) -> "Configuration":
        """Add an active server at ``node`` (must be unoccupied)."""
        if node in self.occupied:
            raise ValueError(f"node {node} already hosts a server")
        return Configuration(self.active + (node,), self.inactive)

    def without_active(self, node: int) -> "Configuration":
        """Drop the active server at ``node`` entirely (not via the cache)."""
        if node not in self.active_set:
            raise ValueError(f"node {node} hosts no active server")
        return Configuration(
            tuple(v for v in self.active if v != node), self.inactive
        )

    def move_active(self, src: int, dst: int) -> "Configuration":
        """Relocate the active server at ``src`` to the unoccupied node ``dst``."""
        if src == dst:
            return self
        if src not in self.active_set:
            raise ValueError(f"node {src} hosts no active server")
        if dst in self.occupied:
            raise ValueError(f"node {dst} already hosts a server")
        moved = tuple(v for v in self.active if v != src) + (dst,)
        return Configuration(moved, self.inactive)

    def replace_inactive(self, inactive: Iterable[int]) -> "Configuration":
        """Return a copy with the inactive queue replaced (FIFO order kept)."""
        return Configuration(self.active, tuple(inactive))

    def only_active(self) -> "Configuration":
        """Project to the active servers (ONCONF ignores the cache state)."""
        return Configuration(self.active, ())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Configuration(active={list(self.active)}, inactive={list(self.inactive)})"
