"""The cost model of §II: access, running, creation and migration costs.

Cost factors (all per the paper's model section):

* ``migration`` — the constant migration cost ``β`` charged when a server
  (or its state) moves to another node. The paper focuses on ``β < c``; the
  β > c experiments (Figures 6, 14, 16–19) swap the constants.
* ``creation`` — the fixed creation cost ``c`` for starting a server that is
  not in use (install the box, configure the template, …).
* ``run_active`` / ``run_inactive`` — per-round running costs ``Ra > Ri``
  of active respectively inactive (cached) servers. Servers *not in use*
  cost nothing.
* ``load`` — the server-load latency model entering the access cost.
* ``wireless_hop`` — constant first-hop latency from terminal to substrate
  (the paper folds it into Costacc; zero by default since it only shifts
  every algorithm's cost by the same amount).

Distance-dependent migration (an extension over the paper's constant-β
model) is supported through an optional ``migration_matrix`` giving
``β(u, v)`` per node pair; :func:`bandwidth_migration_matrix` derives one
from bulk-transfer time over the latency-shortest path, using the substrate's
T1/T2 link capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
from scipy.sparse.csgraph import dijkstra

from repro.core.config import Configuration
from repro.core.load import LinearLoad, LoadFunction
from repro.topology.substrate import Substrate
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CostModel", "bandwidth_migration_matrix"]


@dataclass(frozen=True, eq=False)
class CostModel:
    """All cost constants of the model, with the paper's defaults.

    Defaults are the simulation defaults of §V-A: ``β = 40``, ``c = 400``,
    and the Rocketfuel experiment's running costs ``Ra = 2.5``,
    ``Ri = 0.5``. :meth:`paper_default` and :meth:`migration_expensive`
    build the two standard parameterisations.
    """

    migration: float = 40.0
    creation: float = 400.0
    run_active: float = 2.5
    run_inactive: float = 0.5
    load: LoadFunction = field(default_factory=LinearLoad)
    wireless_hop: float = 0.0
    migration_matrix: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        check_non_negative("migration", self.migration)
        check_non_negative("creation", self.creation)
        check_non_negative("run_active", self.run_active)
        check_non_negative("run_inactive", self.run_inactive)
        check_non_negative("wireless_hop", self.wireless_hop)
        if self.run_inactive > self.run_active:
            raise ValueError(
                f"run_inactive ({self.run_inactive}) must not exceed "
                f"run_active ({self.run_active})"
            )
        if self.migration_matrix is not None:
            matrix = np.asarray(self.migration_matrix, dtype=np.float64)
            if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
                raise ValueError(
                    f"migration_matrix must be square, got shape {matrix.shape}"
                )
            if np.any(matrix < 0):
                raise ValueError("migration_matrix entries must be >= 0")
            matrix = matrix.copy()
            matrix.flags.writeable = False
            object.__setattr__(self, "migration_matrix", matrix)

    # -- canonical parameterisations ---------------------------------------------

    @classmethod
    def paper_default(cls, **overrides) -> "CostModel":
        """β = 40 < c = 400: migration is cheap, the paper's main regime."""
        return cls(migration=40.0, creation=400.0, **overrides)

    @classmethod
    def migration_expensive(cls, **overrides) -> "CostModel":
        """β = 400 > c = 40: migration never pays off (Figures 6, 14, 16-19)."""
        return cls(migration=400.0, creation=40.0, **overrides)

    def with_load(self, load: LoadFunction) -> "CostModel":
        """Copy of this model with a different load function."""
        return replace(self, load=load)

    # -- derived quantities --------------------------------------------------------

    @property
    def migration_beneficial(self) -> bool:
        """True in the interesting regime ``β < c`` where migration can pay."""
        return self.migration < self.creation

    def migration_cost(self, src: int, dst: int) -> float:
        """Cost of migrating a server from ``src`` to ``dst``.

        Constant ``β`` unless a ``migration_matrix`` is configured.
        """
        if src == dst:
            return 0.0
        if self.migration_matrix is None:
            return self.migration
        return float(self.migration_matrix[src, dst])

    def running_cost(self, config: Configuration) -> float:
        """Per-round running cost ``Ra·#active + Ri·#inactive`` of a configuration."""
        return self.run_active * config.n_active + self.run_inactive * config.n_inactive

    def running_cost_counts(self, n_active: int, n_inactive: int = 0) -> float:
        """Per-round running cost from raw server counts."""
        return self.run_active * n_active + self.run_inactive * n_inactive


def bandwidth_migration_matrix(
    substrate: Substrate,
    state_size_mbit: float = 800.0,
    overhead: float = 5.0,
    time_unit_ms: float = 1000.0,
) -> np.ndarray:
    """Distance-dependent migration costs from bulk state transfer (extension).

    The paper notes that migration cost is "determined by network bandwidth"
    while keeping β constant for the analysis. This helper builds the
    ``β(u, v)`` matrix for the non-constant variant: migrating a server with
    ``state_size_mbit`` of state from ``u`` to ``v`` takes the transfer time
    over the *bottleneck* bandwidth along the latency-shortest path, plus a
    fixed ``overhead`` (service interruption, reconfiguration).

    Args:
        substrate: the substrate network (provides latencies + bandwidths).
        state_size_mbit: server RAM/state size to ship, in Mbit.
        overhead: fixed per-migration cost added to every pair.
        time_unit_ms: how many milliseconds one cost unit represents; transfer
            seconds are scaled by ``1000 / time_unit_ms``.

    Returns:
        A read-only ``(n, n)`` array with zeros on the diagonal.
    """
    check_positive("state_size_mbit", state_size_mbit)
    check_non_negative("overhead", overhead)
    check_positive("time_unit_ms", time_unit_ms)

    n = substrate.n
    adjacency = _adjacency_with_bandwidth(substrate)
    _, predecessors = dijkstra(
        adjacency["latency"], directed=False, return_predecessors=True
    )

    matrix = np.zeros((n, n), dtype=np.float64)
    bandwidth = adjacency["bandwidth"]
    for src in range(n):
        for dst in range(src + 1, n):
            bottleneck = _path_bottleneck(predecessors, bandwidth, src, dst)
            transfer_s = state_size_mbit / bottleneck
            cost = overhead + transfer_s * (1000.0 / time_unit_ms)
            matrix[src, dst] = cost
            matrix[dst, src] = cost
    matrix.flags.writeable = False
    return matrix


def _adjacency_with_bandwidth(substrate: Substrate) -> dict:
    """Dense latency adjacency plus a bandwidth lookup for path walking."""
    from scipy.sparse import csr_matrix

    n = substrate.n
    rows, cols, lats = [], [], []
    bandwidth = np.zeros((n, n), dtype=np.float64)
    for link in substrate.links:
        rows.extend((link.u, link.v))
        cols.extend((link.v, link.u))
        lats.extend((link.latency, link.latency))
        bandwidth[link.u, link.v] = link.bandwidth
        bandwidth[link.v, link.u] = link.bandwidth
    latency = csr_matrix((lats, (rows, cols)), shape=(n, n))
    return {"latency": latency, "bandwidth": bandwidth}


def _path_bottleneck(
    predecessors: np.ndarray, bandwidth: np.ndarray, src: int, dst: int
) -> float:
    """Minimum link bandwidth along the shortest path ``src -> dst``."""
    bottleneck = np.inf
    node = dst
    while node != src:
        prev = int(predecessors[src, node])
        if prev < 0:
            raise ValueError(f"no path from {src} to {dst}")
        bottleneck = min(bottleneck, bandwidth[prev, node])
        node = prev
    return float(bottleneck)
