"""Pricing configuration changes per the transition semantics of §II-C.

The paper fixes the rules through Examples 1–3:

* activating an inactive server *in place* is free;
* deactivating an active server (into the inactive cache) is free;
* a new active server at a node with no server either **migrates** a
  disappearing server there (cost β) — the donor may be an inactive cache
  entry or an active server that vanishes in the same step — or is
  **created** from scratch (cost c);
* inactive servers are never migrated except when being activated at the
  target, and dropping a server (out of use) is free.

:func:`price_transition` computes the cheapest legal interpretation of an
``old → new`` configuration change under these rules. With constant β this
is simple set arithmetic (every donor is interchangeable); with a
distance-dependent migration matrix it becomes a minimum-cost matching
between donors and newly occupied nodes, solved exactly with the Hungarian
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.config import Configuration
from repro.core.costs import CostModel

__all__ = ["TransitionOutcome", "price_transition"]


@dataclass(frozen=True)
class TransitionOutcome:
    """Breakdown of one configuration change.

    Attributes:
        migrations: number of β-priced server moves.
        creations: number of c-priced server creations (new active servers
            without a donor, plus inactive servers appearing at fresh nodes).
        activations: free in-place activations of cached inactive servers.
        deactivations: free moves of active servers into the inactive cache.
        dropped: servers that simply left use (free).
        migration_cost: total β cost (sum of per-move costs when a
            migration matrix is in effect).
        creation_cost: total c cost.
    """

    migrations: int
    creations: int
    activations: int
    deactivations: int
    dropped: int
    migration_cost: float
    creation_cost: float

    @property
    def cost(self) -> float:
        """Total cost of the transition, ``Cost(γ → γ')`` in §IV-A."""
        return self.migration_cost + self.creation_cost


_NO_CHANGE = TransitionOutcome(0, 0, 0, 0, 0, 0.0, 0.0)


def price_transition(
    old: Configuration, new: Configuration, costs: CostModel
) -> TransitionOutcome:
    """Price the change ``old → new`` under ``costs``.

    The price is the cheapest interpretation consistent with §II-C; in
    particular ``price_transition(γ, γ, ·)`` is zero and removing servers is
    always free.
    """
    if old == new:
        return _NO_CHANGE

    old_active = old.active_set
    old_inactive = old.inactive_set
    new_active = new.active_set
    new_inactive = new.inactive_set
    old_occupied = old_active | old_inactive
    new_occupied = new_active | new_inactive

    activations = new_active & old_inactive
    deactivations = new_inactive & old_active
    newcomers = sorted(new_active - old_occupied)
    # A server appearing *inactive* at a fresh node is realised either by
    # creating it there (c) or by migrating a vanishing server there and
    # immediately deactivating it (β + free) — so fresh inactive nodes join
    # the donor matching alongside the active newcomers.
    fresh_inactive = sorted(new_inactive - old_occupied)
    arrivals = newcomers + fresh_inactive
    vanished = sorted(old_occupied - new_occupied)

    if costs.migration_matrix is None:
        if costs.migration <= costs.creation:
            n_migrations = min(len(arrivals), len(vanished))
        else:
            # β > c: migration is never beneficial (§II-C) — always create.
            n_migrations = 0
        n_creations = len(arrivals) - n_migrations
        migration_cost = n_migrations * costs.migration
    else:
        n_migrations, migration_cost = _match_donors(
            arrivals, vanished, costs
        )
        n_creations = len(arrivals) - n_migrations

    return TransitionOutcome(
        migrations=n_migrations,
        creations=n_creations,
        activations=len(activations),
        deactivations=len(deactivations),
        dropped=len(vanished) - n_migrations,
        migration_cost=migration_cost,
        creation_cost=n_creations * costs.creation,
    )


def _match_donors(
    newcomers: list[int], vanished: list[int], costs: CostModel
) -> tuple[int, float]:
    """Cheapest donor→newcomer matching under a migration matrix.

    Each newcomer node is either filled by migrating one vanished server
    (cost ``β(donor, newcomer)``) or created from scratch (cost ``c``). We
    solve the assignment exactly: rows are newcomers, columns are all donors
    plus one private "create" column per newcomer.
    """
    if not newcomers:
        return 0, 0.0
    matrix = np.asarray(costs.migration_matrix)
    n_new, n_don = len(newcomers), len(vanished)
    # Columns: donors, then one creation column per newcomer. A creation
    # column must be usable by exactly one row, hence the +inf off-diagonal.
    cost = np.full((n_new, n_don + n_new), np.inf)
    for i, dst in enumerate(newcomers):
        for j, src in enumerate(vanished):
            cost[i, j] = matrix[src, dst]
        cost[i, n_don + i] = costs.creation
    rows, cols = linear_sum_assignment(cost)

    migrations = 0
    migration_cost = 0.0
    for r, c in zip(rows, cols):
        if c < n_don:
            migrations += 1
            migration_cost += cost[r, c]
    return migrations, float(migration_cost)
