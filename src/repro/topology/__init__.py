"""Substrate network model and topology generators (§II-B, §V-A).

The substrate is the physical network managed by the infrastructure provider:
nodes with strengths, links with latencies and bandwidths, and a subset of
access points where terminal requests enter. All algorithms consume the
cached all-pairs latency matrix exposed by :class:`Substrate`.
"""

from repro.topology.generators import (
    erdos_renyi,
    grid,
    line,
    random_tree,
    ring,
    star,
)
from repro.topology.rocketfuel import att_like_topology, load_rocketfuel
from repro.topology.substrate import T1_MBPS, T2_MBPS, Link, Substrate

__all__ = [
    "Link",
    "Substrate",
    "T1_MBPS",
    "T2_MBPS",
    "erdos_renyi",
    "line",
    "ring",
    "star",
    "grid",
    "random_tree",
    "att_like_topology",
    "load_rocketfuel",
]
