"""Synthetic substrate topologies used in the paper's evaluation (§V-A).

The paper simulates on

* Erdős–Rényi random graphs with connection probability 1%
  (:func:`erdos_renyi`), with link bandwidths drawn uniformly from
  {T1, T2} lines, and
* line graphs for the experiments involving the exponential-state
  :class:`~repro.algorithms.opt.Opt` dynamic program (:func:`line`).

We additionally provide ring, star, grid and random-tree generators: they are
cheap, exercise qualitatively different distance structures (constant
diameter vs Θ(n) diameter), and are used by the test-suite and the ablation
benchmarks.

Every generator returns a connected :class:`~repro.topology.substrate.Substrate`
and is deterministic given its ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import register_topology
from repro.topology.substrate import T1_MBPS, T2_MBPS, Link, Substrate
from repro.util.rng import ensure_rng
from repro.util.validation import check_positive, check_positive_int, check_probability

__all__ = [
    "erdos_renyi",
    "line",
    "ring",
    "star",
    "grid",
    "random_tree",
    "random_bandwidth",
    "random_latencies",
]

#: Default latency range for synthetic links, in abstract units. The paper
#: does not publish the latency scale of its Erdős–Rényi graphs; Rocketfuel
#: substrates carry measured latencies instead. Only the absolute cost scale
#: depends on this choice (see DESIGN.md §3).
DEFAULT_LATENCY_RANGE = (1.0, 10.0)


def random_bandwidth(rng: np.random.Generator, size: int) -> np.ndarray:
    """Draw ``size`` bandwidths uniformly from {T1, T2} lines (§V-A)."""
    return rng.choice(np.array([T1_MBPS, T2_MBPS]), size=size)


def random_latencies(
    rng: np.random.Generator,
    size: int,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
) -> np.ndarray:
    """Draw ``size`` latencies uniformly from ``latency_range``."""
    lo, hi = latency_range
    lo = check_positive("latency_range[0]", lo)
    hi = check_positive("latency_range[1]", hi)
    if hi < lo:
        raise ValueError(f"latency_range must satisfy lo <= hi, got ({lo}, {hi})")
    return rng.uniform(lo, hi, size=size)


def _links_from_edges(
    edges: np.ndarray,
    rng: np.random.Generator,
    latency_range: tuple[float, float],
    unit_latency: bool,
) -> list[Link]:
    count = len(edges)
    if unit_latency:
        latencies = np.ones(count)
    else:
        latencies = random_latencies(rng, count, latency_range)
    bandwidths = random_bandwidth(rng, count)
    return [
        Link(int(u), int(v), float(lat), float(bw))
        for (u, v), lat, bw in zip(edges, latencies, bandwidths)
    ]


@register_topology("erdos_renyi", aliases=("er",))
def erdos_renyi(
    n: int,
    p: float = 0.01,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = False,
    name: "str | None" = None,
    capacity: "float | None" = None,
) -> Substrate:
    """Connected Erdős–Rényi substrate ``G(n, p)`` (§V-A default ``p = 1%``).

    Sparse G(n, 0.01) is disconnected for small ``n``; the paper still needs
    a usable network, so after sampling we connect the components with a
    random spanning chain of extra links (a standard repair that adds at most
    ``components - 1`` edges and leaves the degree distribution essentially
    untouched for the sizes used here).

    Args:
        n: number of nodes.
        p: connection probability for each of the ``n·(n-1)/2`` pairs.
        seed: RNG seed or generator.
        latency_range: uniform range for link latencies.
        unit_latency: if true, every link has latency 1 (hop-count metric).
        name: optional substrate label.
        capacity: uniform per-round per-node request capacity (``None`` =
            uncapacitated, the paper's model).
    """
    n = check_positive_int("n", n)
    p = check_probability("p", p)
    rng = ensure_rng(seed)

    edges: list[tuple[int, int]] = []
    if n > 1 and p > 0:
        # Vectorised pair sampling: upper-triangular Bernoulli draws.
        iu, ju = np.triu_indices(n, k=1)
        mask = rng.random(iu.size) < p
        edges = list(zip(iu[mask].tolist(), ju[mask].tolist()))

    edges = _connect_components(n, edges, rng)
    links = _links_from_edges(np.array(edges, dtype=np.int64).reshape(-1, 2), rng,
                              latency_range, unit_latency)
    return Substrate(
        n, links, name=name or f"erdos-renyi(n={n},p={p})", capacities=capacity
    )


def _connect_components(
    n: int, edges: list[tuple[int, int]], rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Add random inter-component links until the graph is connected."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)

    roots = sorted({find(v) for v in range(n)})
    if len(roots) <= 1:
        return edges

    # Link each component to the next via a random representative pair.
    members: dict[int, list[int]] = {}
    for v in range(n):
        members.setdefault(find(v), []).append(v)
    component_lists = [members[r] for r in roots]
    existing = set(edges)
    for left, right in zip(component_lists, component_lists[1:]):
        u = int(rng.choice(left))
        v = int(rng.choice(right))
        edge = (min(u, v), max(u, v))
        if edge not in existing:
            edges.append(edge)
            existing.add(edge)
        union(u, v)
    return edges


@register_topology("line")
def line(
    n: int,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = True,
    name: "str | None" = None,
    capacity: "float | None" = None,
) -> Substrate:
    """Line (path) graph ``0 - 1 - ... - n-1``.

    The paper constrains the :class:`~repro.algorithms.opt.Opt` experiments
    to line graphs (§V-A); unit latencies are the default here so that the
    metric is the hop distance, matching the chain networks of the online
    function tracking reduction (§VI). ``capacity`` attaches a uniform
    per-round per-node request capacity (``None`` = uncapacitated).
    """
    n = check_positive_int("n", n)
    rng = ensure_rng(seed)
    edges = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    links = _links_from_edges(edges, rng, latency_range, unit_latency)
    return Substrate(
        n, links, name=name or f"line(n={n})", capacities=capacity
    )


@register_topology("ring")
def ring(
    n: int,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = True,
    name: "str | None" = None,
) -> Substrate:
    """Cycle graph on ``n >= 3`` nodes."""
    n = check_positive_int("n", n)
    if n < 3:
        raise ValueError(f"a ring needs n >= 3 nodes, got {n}")
    rng = ensure_rng(seed)
    heads = np.arange(n)
    edges = np.column_stack([heads, (heads + 1) % n])
    edges = np.sort(edges, axis=1)
    links = _links_from_edges(edges, rng, latency_range, unit_latency)
    return Substrate(n, links, name=name or f"ring(n={n})")


@register_topology("star")
def star(
    n: int,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = True,
    name: "str | None" = None,
) -> Substrate:
    """Star graph: node 0 is the hub, nodes ``1..n-1`` are leaves."""
    n = check_positive_int("n", n)
    if n < 2:
        raise ValueError(f"a star needs n >= 2 nodes, got {n}")
    rng = ensure_rng(seed)
    edges = np.column_stack([np.zeros(n - 1, dtype=np.int64), np.arange(1, n)])
    links = _links_from_edges(edges, rng, latency_range, unit_latency)
    return Substrate(n, links, name=name or f"star(n={n})")


@register_topology("grid")
def grid(
    rows: int,
    cols: int,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = True,
    name: "str | None" = None,
) -> Substrate:
    """``rows × cols`` 4-neighbour mesh; node ``(r, c)`` has index ``r*cols + c``."""
    rows = check_positive_int("rows", rows)
    cols = check_positive_int("cols", cols)
    rng = ensure_rng(seed)
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            if c + 1 < cols:
                edges.append((idx, idx + 1))
            if r + 1 < rows:
                edges.append((idx, idx + cols))
    edge_arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
    links = _links_from_edges(edge_arr, rng, latency_range, unit_latency)
    return Substrate(rows * cols, links, name=name or f"grid({rows}x{cols})")


@register_topology("random_tree", aliases=("tree",))
def random_tree(
    n: int,
    seed: "int | np.random.Generator | None" = None,
    latency_range: tuple[float, float] = DEFAULT_LATENCY_RANGE,
    unit_latency: bool = False,
    name: "str | None" = None,
) -> Substrate:
    """Uniform random recursive tree: node ``i`` attaches to a random ``j < i``."""
    n = check_positive_int("n", n)
    rng = ensure_rng(seed)
    if n == 1:
        return Substrate(1, [], name=name or "tree(n=1)")
    parents = np.array([int(rng.integers(0, i)) for i in range(1, n)])
    edges = np.column_stack([parents, np.arange(1, n)])
    edges = np.sort(edges, axis=1)
    links = _links_from_edges(edges, rng, latency_range, unit_latency)
    return Substrate(n, links, name=name or f"tree(n={n})")
