"""The substrate network ``G = (V, E)`` of the paper's model (§II-B).

A :class:`Substrate` is an undirected, connected graph whose nodes carry a
*strength* ``ω(v)`` (CPU/memory capability entering the load function) and
whose edges carry a *latency* ``λ(e)`` and a *bandwidth* ``ω(e)``.

The object is immutable after construction and caches the all-pairs
shortest-path latency matrix, which is the quantity every other subsystem
consumes: request access cost is the shortest-path latency from access point
to server (§II-B), and the commuter workload needs distances from the network
center (§V-A). The matrix is computed once with
:func:`scipy.sparse.csgraph.dijkstra` over a CSR adjacency, so even the
1000-node substrates of Figures 1 and 7 cost only a few milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components, dijkstra

__all__ = ["Link", "Substrate"]

#: Bandwidth of a T1 line in Mbit/s (§V-A: links are random T1 or T2).
T1_MBPS = 1.544
#: Bandwidth of a T2 line in Mbit/s.
T2_MBPS = 6.312


@dataclass(frozen=True)
class Link:
    """An undirected substrate link ``e = (u, v)`` with latency and bandwidth.

    Attributes:
        u: first endpoint (node index, ``u < v`` is normalised).
        v: second endpoint.
        latency: per-traversal latency ``λ(e)`` (abstract time units;
            milliseconds for Rocketfuel-derived substrates).
        bandwidth: capacity ``ω(e)`` in Mbit/s. Unused by the constant-β
            migration model but consumed by the bandwidth-aware migration
            extension (:func:`repro.core.costs.bandwidth_migration_matrix`).
    """

    u: int
    v: int
    latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop on node {self.u} is not allowed")
        if self.u > self.v:  # normalise endpoint order for hashing/equality
            lo, hi = self.v, self.u
            object.__setattr__(self, "u", lo)
            object.__setattr__(self, "v", hi)
        if not self.latency > 0:
            raise ValueError(f"link latency must be > 0, got {self.latency!r}")
        if not self.bandwidth > 0:
            raise ValueError(f"link bandwidth must be > 0, got {self.bandwidth!r}")

    @property
    def endpoints(self) -> tuple[int, int]:
        """The normalised ``(u, v)`` pair."""
        return (self.u, self.v)


class Substrate:
    """Immutable substrate network with cached shortest-path latencies.

    Args:
        n: number of substrate nodes; nodes are indexed ``0 .. n-1``.
        links: iterable of :class:`Link`; the resulting graph must be
            connected (every access point must be able to reach every
            candidate server location).
        strengths: per-node strength ``ω(v)``; scalar broadcasts to all
            nodes. Defaults to 1.0 everywhere, the paper's implicit setting.
        access_points: node indices that terminals may attach to
            (``A ⊆ V``, §II-B). Defaults to all nodes.
        name: human-readable label used in reports.
        capacities: optional per-round per-node request capacity (the
            packing constraint of the capacitated multi-service model and
            the optimizer-backed policies); scalar broadcasts to all nodes,
            ``None`` (the default) means uncapacitated — the paper's
            setting, where only the *load function* penalises contention.
    """

    def __init__(
        self,
        n: int,
        links: "list[Link] | tuple[Link, ...]",
        strengths: "float | np.ndarray | None" = None,
        access_points: "list[int] | np.ndarray | None" = None,
        name: str = "substrate",
        capacities: "float | np.ndarray | None" = None,
    ) -> None:
        if n < 1:
            raise ValueError(f"substrate needs at least one node, got n={n}")
        self._n = int(n)
        self._name = str(name)
        self._links = tuple(links)
        seen: set[tuple[int, int]] = set()
        for link in self._links:
            if not (0 <= link.u < n and 0 <= link.v < n):
                raise ValueError(
                    f"link {link.endpoints} references nodes outside 0..{n - 1}"
                )
            if link.endpoints in seen:
                raise ValueError(f"duplicate link {link.endpoints}")
            seen.add(link.endpoints)

        self._strengths = self._build_strengths(strengths)
        self._capacities = self._build_capacities(capacities)
        self._access_points = self._build_access_points(access_points)
        self._adjacency = self._build_adjacency()
        self._require_connected()
        self._distances: "np.ndarray | None" = None
        self._center: "int | None" = None

    # -- construction helpers -------------------------------------------------

    def _build_strengths(self, strengths) -> np.ndarray:
        if strengths is None:
            return np.ones(self._n, dtype=np.float64)
        arr = np.asarray(strengths, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(self._n, float(arr), dtype=np.float64)
        if arr.shape != (self._n,):
            raise ValueError(
                f"strengths must be scalar or shape ({self._n},), got {arr.shape}"
            )
        if not np.all(arr > 0):
            raise ValueError("all node strengths must be > 0")
        return arr

    def _build_capacities(self, capacities) -> "np.ndarray | None":
        if capacities is None:
            return None
        arr = np.asarray(capacities, dtype=np.float64)
        if arr.ndim == 0:
            arr = np.full(self._n, float(arr), dtype=np.float64)
        if arr.shape != (self._n,):
            raise ValueError(
                f"capacities must be scalar or shape ({self._n},), got {arr.shape}"
            )
        if not np.all(arr > 0):
            raise ValueError("all node capacities must be > 0")
        return arr

    def _build_access_points(self, access_points) -> np.ndarray:
        if access_points is None:
            return np.arange(self._n, dtype=np.int64)
        arr = np.unique(np.asarray(access_points, dtype=np.int64))
        if arr.size == 0:
            raise ValueError("at least one access point is required")
        if arr.min() < 0 or arr.max() >= self._n:
            raise ValueError(f"access points must lie in 0..{self._n - 1}")
        return arr

    def _build_adjacency(self) -> csr_matrix:
        if not self._links:
            # single-node substrates are legal; scipy handles an empty matrix
            return csr_matrix((self._n, self._n), dtype=np.float64)
        rows, cols, vals = [], [], []
        for link in self._links:
            rows.extend((link.u, link.v))
            cols.extend((link.v, link.u))
            vals.extend((link.latency, link.latency))
        return csr_matrix((vals, (rows, cols)), shape=(self._n, self._n))

    def _require_connected(self) -> None:
        if self._n == 1:
            return
        n_components, _ = connected_components(self._adjacency, directed=False)
        if n_components != 1:
            raise ValueError(
                f"substrate must be connected, found {n_components} components"
            )

    # -- basic accessors -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of substrate nodes ``n = |V|``."""
        return self._n

    @property
    def name(self) -> str:
        """Human-readable substrate label."""
        return self._name

    @property
    def links(self) -> tuple[Link, ...]:
        """The substrate links (normalised, deduplicated)."""
        return self._links

    @property
    def strengths(self) -> np.ndarray:
        """Read-only per-node strengths ``ω(v)``, shape ``(n,)``."""
        view = self._strengths.view()
        view.flags.writeable = False
        return view

    @property
    def capacities(self) -> "np.ndarray | None":
        """Read-only per-round per-node request capacities, or ``None``.

        ``None`` — the default — is the paper's uncapacitated model.
        """
        if self._capacities is None:
            return None
        view = self._capacities.view()
        view.flags.writeable = False
        return view

    @property
    def capacitated(self) -> bool:
        """Whether this substrate carries a per-node capacity vector."""
        return self._capacities is not None

    def with_capacities(
        self, capacities: "float | np.ndarray | None"
    ) -> "Substrate":
        """A copy of this substrate with ``capacities`` swapped in.

        The cached distance matrix is shared (it depends only on links), so
        deriving a capacitated variant of a large substrate is cheap.
        """
        clone = Substrate(
            self._n,
            self._links,
            strengths=self._strengths,
            access_points=self._access_points,
            name=self._name,
            capacities=capacities,
        )
        clone._distances = self._distances
        clone._center = self._center
        return clone

    @property
    def access_points(self) -> np.ndarray:
        """Read-only sorted array of access-point node indices ``A``."""
        view = self._access_points.view()
        view.flags.writeable = False
        return view

    @property
    def n_links(self) -> int:
        """Number of substrate links ``|E|``."""
        return len(self._links)

    def degree(self, node: int) -> int:
        """Number of links incident to ``node``."""
        self._check_node(node)
        return int(self._adjacency.indptr[node + 1] - self._adjacency.indptr[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Node indices adjacent to ``node`` (sorted)."""
        self._check_node(node)
        start, stop = self._adjacency.indptr[node], self._adjacency.indptr[node + 1]
        return np.sort(self._adjacency.indices[start:stop].astype(np.int64))

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._n:
            raise ValueError(f"node {node} outside 0..{self._n - 1}")

    # -- shortest-path machinery ----------------------------------------------

    @property
    def distances(self) -> np.ndarray:
        """All-pairs shortest-path latency matrix, shape ``(n, n)``.

        Computed lazily once and cached; the returned array is read-only and
        shared (no copy) so routing and candidate evaluation can slice it
        freely.
        """
        if self._distances is None:
            if self._n == 1:
                dist = np.zeros((1, 1), dtype=np.float64)
            else:
                dist = dijkstra(self._adjacency, directed=False)
            dist.flags.writeable = False
            self._distances = dist
        return self._distances

    def distance(self, u: int, v: int) -> float:
        """Shortest-path latency between nodes ``u`` and ``v``."""
        self._check_node(u)
        self._check_node(v)
        return float(self.distances[u, v])

    @property
    def center(self) -> int:
        """The *network center*: node minimising total distance to all nodes.

        The commuter scenario (§V-A) fans requests out from "the network
        center"; we use the distance-sum minimiser (a graph 1-median), with
        the lowest index winning ties so the choice is deterministic.
        """
        if self._center is None:
            self._center = int(np.argmin(self.distances.sum(axis=1)))
        return self._center

    def nodes_by_distance_from(self, node: int) -> np.ndarray:
        """All node indices sorted by latency from ``node`` (stable ties).

        ``result[0] == node`` always, since the self-distance is zero.
        """
        self._check_node(node)
        return np.argsort(self.distances[node], kind="stable").astype(np.int64)

    def eccentricity(self, node: int) -> float:
        """Largest shortest-path latency from ``node`` to any other node."""
        self._check_node(node)
        return float(self.distances[node].max())

    @property
    def diameter(self) -> float:
        """Largest shortest-path latency between any node pair."""
        return float(self.distances.max())

    # -- misc -------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Substrate(name={self._name!r}, n={self._n}, links={self.n_links}, "
            f"access_points={self._access_points.size})"
        )
