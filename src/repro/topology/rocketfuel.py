"""Rocketfuel ISP topologies (§V-A) — parser plus a synthetic AS 7018 stand-in.

The paper runs its most realistic experiment on the Rocketfuel map of
AS 7018 (AT&T) "including the corresponding latencies for the access cost".
The original Rocketfuel data files are not redistributable with this
reproduction, so this module provides two paths:

* :func:`load_rocketfuel` parses the simple Rocketfuel ``weights``-style
  edge-list format (``<node-a> <node-b> <latency>`` per line, ``#`` comments)
  so the real files can be dropped in if available, and
* :func:`att_like_topology` builds a *synthetic* AT&T-like topology from the
  published structure of AS 7018: a two-tier point-of-presence (PoP) design
  over 25 real AT&T PoP cities, with backbone latencies derived from
  great-circle distances at typical fibre propagation speed (~200 km/ms) and
  short intra-PoP hops to access routers.

The substitution is documented in DESIGN.md §3: the experiment needs a
realistic ISP-scale topology with heterogeneous, geography-driven latencies —
the synthetic map matches published AS 7018 scale (~115 nodes, ~290 links
after access routers) and its latency spread, which is what drives the
relative algorithm costs the paper reports.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.api.registry import register_topology
from repro.topology.substrate import T1_MBPS, T2_MBPS, Link, Substrate
from repro.util.rng import ensure_rng

__all__ = ["load_rocketfuel", "parse_rocketfuel_edges", "att_like_topology", "ATT_POPS"]

#: (city, latitude, longitude, is_backbone_hub, access_router_count)
#: Cities are real AT&T AS 7018 PoP locations; hub flags mark the
#: high-connectivity backbone PoPs. Access router counts are chosen so the
#: total node count (~115) matches the published Rocketfuel AS 7018 backbone
#: map scale.
ATT_POPS: tuple[tuple[str, float, float, bool, int], ...] = (
    ("New York, NY", 40.71, -74.01, True, 6),
    ("Chicago, IL", 41.88, -87.63, True, 6),
    ("Dallas, TX", 32.78, -96.80, True, 6),
    ("Los Angeles, CA", 34.05, -118.24, True, 5),
    ("San Francisco, CA", 37.77, -122.42, True, 5),
    ("Washington, DC", 38.91, -77.04, True, 5),
    ("Atlanta, GA", 33.75, -84.39, True, 5),
    ("St. Louis, MO", 38.63, -90.20, True, 4),
    ("Denver, CO", 39.74, -104.99, True, 4),
    ("Seattle, WA", 47.61, -122.33, True, 4),
    ("Cambridge, MA", 42.37, -71.11, False, 4),
    ("Philadelphia, PA", 39.95, -75.17, False, 3),
    ("Detroit, MI", 42.33, -83.05, False, 3),
    ("Orlando, FL", 28.54, -81.38, False, 3),
    ("Houston, TX", 29.76, -95.37, False, 3),
    ("Austin, TX", 30.27, -97.74, False, 2),
    ("Phoenix, AZ", 33.45, -112.07, False, 3),
    ("San Diego, CA", 32.72, -117.16, False, 2),
    ("Sacramento, CA", 38.58, -121.49, False, 2),
    ("Portland, OR", 45.52, -122.68, False, 2),
    ("Salt Lake City, UT", 40.76, -111.89, False, 2),
    ("Kansas City, MO", 39.10, -94.58, False, 2),
    ("Minneapolis, MN", 44.98, -93.27, False, 3),
    ("Cleveland, OH", 41.50, -81.69, False, 2),
    ("Raleigh, NC", 35.78, -78.64, False, 2),
)

#: Backbone mesh between hub PoPs (by city prefix), mirroring the long-haul
#: AT&T links visible in Rocketfuel maps: coastal chains plus east-west
#: trunks through Chicago / St. Louis / Dallas / Denver.
_HUB_MESH: tuple[tuple[str, str], ...] = (
    ("New York", "Chicago"),
    ("New York", "Washington"),
    ("New York", "Cambridge"),
    ("Washington", "Atlanta"),
    ("Chicago", "Denver"),
    ("Chicago", "St. Louis"),
    ("Chicago", "Seattle"),
    ("St. Louis", "Dallas"),
    ("St. Louis", "Atlanta"),
    ("St. Louis", "Washington"),
    ("Dallas", "Atlanta"),
    ("Dallas", "Los Angeles"),
    ("Dallas", "Denver"),
    ("Denver", "San Francisco"),
    ("Denver", "Seattle"),
    ("San Francisco", "Los Angeles"),
    ("San Francisco", "Seattle"),
    ("Los Angeles", "Atlanta"),
    ("New York", "St. Louis"),
    ("Chicago", "Washington"),
)

#: Fibre propagation speed used to turn great-circle km into milliseconds.
_KM_PER_MS = 200.0
#: Routers in the same PoP are one short hop apart.
_INTRA_POP_LATENCY_MS = 0.5
#: Minimum inter-PoP latency (routing/serialisation floor).
_MIN_BACKBONE_LATENCY_MS = 1.0


def parse_rocketfuel_edges(text: str) -> list[tuple[str, str, float]]:
    """Parse Rocketfuel ``weights``-style edge lines into (a, b, latency) triples.

    Each non-comment line is ``<node-a> <node-b> <weight>`` where node names
    may contain no whitespace (Rocketfuel uses ``city,+state`` tokens).
    Lines starting with ``#`` and blank lines are skipped.
    """
    triples: list[tuple[str, str, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 3:
            raise ValueError(
                f"line {lineno}: expected '<a> <b> <latency>', got {stripped!r}"
            )
        a, b, weight = parts
        try:
            latency = float(weight)
        except ValueError as exc:
            raise ValueError(f"line {lineno}: latency {weight!r} is not a number") from exc
        if latency <= 0:
            raise ValueError(f"line {lineno}: latency must be > 0, got {latency}")
        triples.append((a, b, latency))
    return triples


def load_rocketfuel(
    path: "str | Path",
    seed: "int | np.random.Generator | None" = None,
    name: "str | None" = None,
) -> Substrate:
    """Load a Rocketfuel ``weights``-format file into a :class:`Substrate`.

    Node names are mapped to indices in first-appearance order; parallel
    edges keep the lowest latency. Bandwidths are drawn uniformly from
    {T1, T2} as in §V-A (Rocketfuel publishes latencies, not capacities).
    """
    text = Path(path).read_text()
    triples = parse_rocketfuel_edges(text)
    if not triples:
        raise ValueError(f"no edges found in {path}")
    rng = ensure_rng(seed)

    index: dict[str, int] = {}
    best: dict[tuple[int, int], float] = {}
    for a, b, latency in triples:
        ia = index.setdefault(a, len(index))
        ib = index.setdefault(b, len(index))
        if ia == ib:
            continue  # Rocketfuel data occasionally contains self-edges; drop
        key = (min(ia, ib), max(ia, ib))
        if key not in best or latency < best[key]:
            best[key] = latency

    links = [
        Link(u, v, latency, float(rng.choice([T1_MBPS, T2_MBPS])))
        for (u, v), latency in sorted(best.items())
    ]
    return Substrate(len(index), links, name=name or f"rocketfuel({Path(path).name})")


def _great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine great-circle distance in kilometres."""
    radius_km = 6371.0
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dp = p2 - p1
    dl = math.radians(lon2 - lon1)
    a = math.sin(dp / 2) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dl / 2) ** 2
    return 2 * radius_km * math.asin(math.sqrt(a))


@register_topology("att", aliases=("rocketfuel-att", "as7018"))
def att_like_topology(
    seed: "int | np.random.Generator | None" = 7018,
    access_routers: bool = True,
    name: str = "att-like(AS7018)",
) -> Substrate:
    """Synthetic AT&T AS 7018-like substrate (see module docstring).

    Structure:

    * one backbone router per PoP city in :data:`ATT_POPS`;
    * hub PoPs meshed per :data:`_HUB_MESH`; non-hub PoPs dual-homed to
      their two nearest hubs (geographically);
    * per PoP, ``access_router_count`` access routers one intra-PoP hop from
      the backbone router; the access routers are the substrate's access
      points (terminals attach at the edge, servers may run anywhere).

    Latency of an inter-PoP link is the great-circle distance at 200 km/ms
    with a 1 ms floor. With ``access_routers=False`` only the 25-node
    backbone is returned (useful for quick tests).
    """
    rng = ensure_rng(seed)
    city_index = {city.split(",")[0]: i for i, (city, *_rest) in enumerate(ATT_POPS)}
    n_pops = len(ATT_POPS)

    def pop_latency(i: int, j: int) -> float:
        _, lat1, lon1, _, _ = ATT_POPS[i]
        _, lat2, lon2, _, _ = ATT_POPS[j]
        km = _great_circle_km(lat1, lon1, lat2, lon2)
        return max(_MIN_BACKBONE_LATENCY_MS, km / _KM_PER_MS)

    edges: dict[tuple[int, int], float] = {}

    def add_edge(i: int, j: int) -> None:
        key = (min(i, j), max(i, j))
        edges.setdefault(key, pop_latency(i, j))

    for a, b in _HUB_MESH:
        add_edge(city_index[a], city_index[b])

    hubs = [i for i, (_, _, _, is_hub, _) in enumerate(ATT_POPS) if is_hub]
    for i, (_, _, _, is_hub, _) in enumerate(ATT_POPS):
        if is_hub:
            continue
        nearest = sorted(hubs, key=lambda h: pop_latency(i, h))[:2]
        for h in nearest:
            add_edge(i, h)

    links = [
        Link(u, v, latency, float(rng.choice([T1_MBPS, T2_MBPS])))
        for (u, v), latency in sorted(edges.items())
    ]

    if not access_routers:
        return Substrate(n_pops, links, name=name + "-backbone")

    next_index = n_pops
    access: list[int] = []
    for pop, (_, _, _, _, count) in enumerate(ATT_POPS):
        for _ in range(count):
            links.append(
                Link(pop, next_index, _INTRA_POP_LATENCY_MS,
                     float(rng.choice([T1_MBPS, T2_MBPS])))
            )
            access.append(next_index)
            next_index += 1

    return Substrate(next_index, links, access_points=access, name=name)
