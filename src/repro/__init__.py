"""repro — flexible server allocation in virtual networks.

A faithful, laptop-scale reproduction of

    Dushyant Arora, Anja Feldmann, Gregor Schaffrath, Stefan Schmid:
    *On the Benefit of Virtualization: Strategies for Flexible Server
    Allocation* (NSDI 2011 / arXiv:1011.6594).

The library models a virtualised service hosted on up to ``k`` migratable
servers over a substrate network and provides the paper's online strategies
(ONCONF, ONBR, ONTH), offline strategies (OPT, OFFBR, OFFTH, OFFSTAT), the
synthetic demand scenarios (time zones, commuter), topology generators
(Erdős–Rényi, line, Rocketfuel-like) and an experiment harness regenerating
every figure of the paper's evaluation.

Quickstart::

    from repro import (CommuterScenario, CostModel, OnTH, erdos_renyi,
                       generate_trace, simulate)

    substrate = erdos_renyi(200, seed=1)
    scenario = CommuterScenario(substrate, sojourn=10)
    trace = generate_trace(scenario, horizon=500, seed=2)
    result = simulate(substrate, OnTH(), trace, CostModel.paper_default())
    print(result.total_cost, result.breakdown)
"""

from repro.api import (
    ComparisonSpec,
    CostSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ProcessPoolBackend,
    QueueBackend,
    ReplicationSpec,
    ResultCache,
    ScenarioSpec,
    SerialBackend,
    SweepSpec,
    TopologySpec,
    list_metrics,
    list_policies,
    list_scenarios,
    list_topologies,
    register_metric,
    register_policy,
    register_scenario,
    register_topology,
    resolve_metric,
    resolve_policy,
    resolve_scenario,
    resolve_topology,
    capture_sweeps,
    collect_point_samples,
    refine_sweep,
    run_experiment,
    run_sweep,
)
from repro.algorithms import (
    BeamOpt,
    OffBR,
    OffStat,
    OffTH,
    OnBR,
    OnConf,
    OnTH,
    Opt,
    StaticPolicy,
    WorkFunctionPolicy,
)
from repro.core import (
    AllocationPolicy,
    CallableLoad,
    Configuration,
    CostBreakdown,
    CostModel,
    InactiveServerCache,
    LinearLoad,
    OfflinePolicy,
    PowerLoad,
    QuadraticLoad,
    RequestBatch,
    RoundRecord,
    RoutingResult,
    RoutingStrategy,
    RunResult,
    ServiceSpec,
    bandwidth_migration_matrix,
    nearest_latency_cost,
    price_transition,
    route_requests,
    simulate,
    simulate_services,
)
from repro.topology import (
    Link,
    Substrate,
    att_like_topology,
    erdos_renyi,
    grid,
    line,
    load_rocketfuel,
    random_tree,
    ring,
    star,
)
from repro.traces import (
    DiurnalWavesScenario,
    FlashCrowdScenario,
    GammaArrivalScenario,
    StreamingScenario,
    StreamingTrace,
    TraceReplayScenario,
)
from repro.workload import (
    CommuterScenario,
    MobilityScenario,
    OverlayScenario,
    PhasedScenario,
    RequestGenerator,
    RoundIterable,
    TimeZoneScenario,
    Trace,
    as_trace,
    default_period_for,
    generate_trace,
    stream_rounds,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # declarative api
    "TopologySpec",
    "ScenarioSpec",
    "PolicySpec",
    "CostSpec",
    "MetricSpec",
    "ComparisonSpec",
    "ReplicationSpec",
    "ExperimentSpec",
    "SweepSpec",
    "SerialBackend",
    "ProcessPoolBackend",
    "QueueBackend",
    "ResultCache",
    "capture_sweeps",
    "collect_point_samples",
    "refine_sweep",
    "run_experiment",
    "run_sweep",
    "register_policy",
    "register_scenario",
    "register_topology",
    "register_metric",
    "resolve_policy",
    "resolve_scenario",
    "resolve_topology",
    "resolve_metric",
    "list_policies",
    "list_scenarios",
    "list_topologies",
    "list_metrics",
    # algorithms
    "OnConf",
    "OnBR",
    "OnTH",
    "WorkFunctionPolicy",
    "Opt",
    "BeamOpt",
    "OffBR",
    "OffTH",
    "OffStat",
    "StaticPolicy",
    # core
    "AllocationPolicy",
    "OfflinePolicy",
    "Configuration",
    "CostModel",
    "CostBreakdown",
    "LinearLoad",
    "QuadraticLoad",
    "PowerLoad",
    "CallableLoad",
    "InactiveServerCache",
    "RequestBatch",
    "RoundRecord",
    "RunResult",
    "RoutingResult",
    "RoutingStrategy",
    "simulate",
    "simulate_services",
    "ServiceSpec",
    "route_requests",
    "nearest_latency_cost",
    "price_transition",
    "bandwidth_migration_matrix",
    # topology
    "Link",
    "Substrate",
    "erdos_renyi",
    "line",
    "ring",
    "star",
    "grid",
    "random_tree",
    "att_like_topology",
    "load_rocketfuel",
    # workloads
    "Trace",
    "RequestGenerator",
    "RoundIterable",
    "as_trace",
    "generate_trace",
    "stream_rounds",
    "CommuterScenario",
    "TimeZoneScenario",
    "MobilityScenario",
    "OverlayScenario",
    "PhasedScenario",
    "default_period_for",
    # production workloads (repro.traces)
    "StreamingTrace",
    "StreamingScenario",
    "TraceReplayScenario",
    "GammaArrivalScenario",
    "FlashCrowdScenario",
    "DiurnalWavesScenario",
]
