"""Seeded random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be

* ``None`` — fresh OS entropy (only for interactive exploration),
* an ``int`` — deterministic, the common case in experiments and tests, or
* an existing :class:`numpy.random.Generator` — passed through unchanged so
  that callers can share one stream across components.

Experiments that average over several runs derive one independent child
generator per run via :func:`spawn_rngs`, which uses
:class:`numpy.random.SeedSequence` spawning so the runs are statistically
independent yet reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Passing a ``Generator`` returns it unchanged (no copy), so stateful
    sharing between components is explicit at the call site.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise TypeError(
            f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
        )
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | None", count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one integer ``seed``.

    Used by the experiment runner: run ``i`` of a multi-run experiment always
    sees the same stream regardless of how many total runs are requested.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
