"""Shared utilities: seeded randomness and argument validation.

These helpers enforce two conventions used throughout the library:

* every stochastic component takes either an integer seed or a
  :class:`numpy.random.Generator` and is deterministic given that input
  (:func:`repro.util.rng.ensure_rng`), and
* public constructors validate their arguments eagerly and raise
  :class:`ValueError`/:class:`TypeError` with actionable messages
  (:mod:`repro.util.validation`).
"""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
