"""Eager argument validation helpers.

Small, uniform checks used by public constructors so that a bad parameter
fails at construction time with a message naming the offending argument,
instead of surfacing as a confusing numerical error rounds later.
"""

from __future__ import annotations

import math
from numbers import Integral, Real


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number > 0 and return it as float."""
    _check_real(name, value)
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it as float."""
    _check_real(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_positive_int(name: str, value: int) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return int(value)


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    _check_real(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate a strictly-interior fraction, i.e. ``value`` in (0, 1)."""
    _check_real(name, value)
    if not 0.0 < value < 1.0:
        raise ValueError(f"{name} must be in the open interval (0, 1), got {value!r}")
    return float(value)


def _check_real(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
