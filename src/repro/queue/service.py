"""The always-on what-if results service: stdlib HTTP over queue + cache.

The paper frames flexible server allocation as something a provider
*operates*: demand shifts, and the question "what would placement cost at
n=400 with sojourn 5?" is asked continuously, not once. This module gives
the reproduction that shape as a tiny stdlib ``http.server`` front end —
no framework, no new dependency:

* ``POST /sweep`` with a :class:`~repro.api.specs.SweepSpec` dict — a warm
  cache answers **immediately from the sweep entry, enqueueing nothing**
  (the acceptance property: repeat what-ifs are free); a cold spec is
  decomposed onto the queue and ``202`` points the client at its job.
* ``GET /jobs/<id>`` — job status; once ``done`` the cached figure rides
  along, so poll-to-completion is one endpoint.
* ``GET /jobs``, ``GET /stats``, ``GET /healthz`` — operational surface.

The server holds no result state of its own: the queue file and the cache
directory *are* the state, shared with every CLI worker and sweep run.
Kill the server, restart it against the same paths, and nothing is lost.
``ThreadingHTTPServer`` keeps slow pollers from blocking submissions;
every request uses its own broker transaction and a fresh
:class:`~repro.api.cache.ResultCache` view, so handler threads never share
mutable state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.api.cache import ResultCache
from repro.api.specs import SweepSpec
from repro.queue.broker import Broker
from repro.queue.worker import enqueue_sweep, worker_loop

__all__ = ["ResultsServer"]


class _Handler(BaseHTTPRequestHandler):
    """One request against the shared broker/cache; no state of its own."""

    server: "ResultsServer"
    protocol_version = "HTTP/1.1"

    # -- helpers ----------------------------------------------------------------

    def _send(self, status: int, payload: Mapping) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def _read_spec(self) -> "SweepSpec | None":
        try:
            length = int(self.headers.get("Content-Length", 0))
            data = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(data, dict):
                raise ValueError("request body must be a JSON object")
            # accept both the bare spec dict and an envelope
            spec_dict = data.get("sweep", data)
            return SweepSpec.from_dict(spec_dict)
        except Exception as error:  # noqa: BLE001 - any bad body is a 400
            self._error(400, f"malformed sweep spec: {error}")
            return None

    def _job_payload(self, job_id: str) -> "dict | None":
        state = self.server.broker.job_state(job_id)
        if state is None:
            return None
        payload = {
            "job": state["job"],
            "kind": state["kind"],
            "status": state["status"],
            "tasks": state["tasks"],
        }
        if state["error"]:
            payload["error"] = state["error"]
        if state["kind"] == "sweep" and state["status"] == "done":
            result = self.server.cache().load(SweepSpec.from_dict(state["spec"]))
            if result is not None:
                payload["result"] = result.to_dict()
        return payload

    # -- verbs ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/sweep":
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        spec = self._read_spec()
        if spec is None:
            return
        cache = self.server.cache()
        result = cache.load(spec)
        if result is not None:
            # warm path: answered from the sweep entry, broker untouched
            self._send(
                200,
                {
                    "job": cache.key_for(spec),
                    "status": "done",
                    "cached": True,
                    "result": result.to_dict(),
                },
            )
            return
        state = enqueue_sweep(self.server.broker, cache, spec)
        self._send(
            202,
            {
                "job": state["job"],
                "status": state["status"],
                "cached": False,
                "tasks": state["tasks"],
                "poll": f"/jobs/{state['job']}",
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"ok": True})
        elif path == "/stats":
            stats = self.server.broker.stats()
            stats["cache"] = self.server.cache().stats()
            self._send(200, stats)
        elif path == "/jobs":
            self._send(200, {"jobs": self.server.broker.jobs()})
        elif path.startswith("/jobs/"):
            payload = self._job_payload(path[len("/jobs/"):])
            if payload is None:
                self._error(404, f"unknown job {path[len('/jobs/'):]!r}")
            else:
                self._send(200, payload)
        else:
            self._error(404, f"no such endpoint: GET {self.path}")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # tests and the CLI own the terminal; HTTP chatter stays quiet


class ResultsServer(ThreadingHTTPServer):
    """The results service bound to one queue file and one cache directory.

    Args:
        address: ``(host, port)``; port 0 picks a free one (see
            ``server_address`` after construction).
        queue: queue database path or an existing :class:`Broker`.
        cache_dir: the shared result cache directory.

    Optionally runs its own worker threads (:meth:`start_workers`) so a
    single ``repro-experiments serve --workers N`` process is a complete
    deployment; external ``repro-experiments worker`` processes against
    the same queue path compose freely with (or replace) them.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: "tuple[str, int]",
        queue: "str | Broker",
        cache_dir,
    ) -> None:
        super().__init__(address, _Handler)
        self.broker = queue if isinstance(queue, Broker) else Broker(queue)
        self._cache_dir = cache_dir
        self._stop = threading.Event()
        self._workers: "list[threading.Thread]" = []

    def cache(self) -> ResultCache:
        """A fresh cache view (instances count hits; threads do not share)."""
        return ResultCache(self._cache_dir)

    def start_workers(self, count: int, poll: float = 0.2) -> None:
        """Spawn ``count`` in-process worker threads draining the queue."""
        for index in range(int(count)):
            thread = threading.Thread(
                target=worker_loop,
                kwargs=dict(
                    queue=self.broker,
                    cache=self.cache(),
                    poll=poll,
                    stop=self._stop.is_set,
                    worker_id=f"serve-worker-{index}",
                ),
                daemon=True,
            )
            thread.start()
            self._workers.append(thread)

    def shutdown(self) -> None:
        self._stop.set()
        super().shutdown()
        for thread in self._workers:
            thread.join(timeout=5.0)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"
