"""Queue workers: decompose sweeps into tasks, execute leases, assemble.

This module owns every experiment-specific decision the broker refuses to
make. The contract that keeps N uncoordinated workers bit-identical to one
serial run:

* **Tasks carry positions, not samples.** A *point* task is just a sweep
  point index; a *top-up* task is an index into the point's adaptive
  schedule. Replicate seeds are pure functions of position
  (:func:`~repro.experiments.runner.spawn_tasks` /
  :func:`~repro.experiments.runner.spawn_point_extension_tasks`), so the
  task says *what* to compute, never *how it came out*.
* **Samples travel through the cache, not the queue.** Workers commit
  replicate blocks straight into the shared per-point
  :class:`~repro.api.cache.ResultCache` — the same entries a serial,
  pooled or sharded run reads and writes. Executing a task twice (a
  re-served lease racing its presumed-dead owner) rewrites identical
  bytes; atomic last-writer-wins renames make that harmless.
* **The adaptive schedule replays exactly.** A top-up lease loads the
  point's samples cache-first, then runs *at most one* fresh batch using
  the very ``batch_size``/``max_runs``/:func:`point_meets_target` walk of
  the serial engine — the schedule at a point depends only on that point's
  samples, so whichever worker executes the batch, the replicate
  coordinates (and hence seeds and samples) are identical.
* **Assembly is a warm-cache ``run_sweep``.** When the last task of a
  sweep job lands, one worker wins :meth:`Broker.claim_finalize` and calls
  :func:`~repro.api.experiment.run_sweep` over the shared cache: every
  point loads, nothing simulates, and the aggregation path — including
  :class:`~repro.experiments.runner.SeriesValidator` and the stored sweep
  entry — is literally the serial code, so the queue-assembled
  :class:`~repro.experiments.runner.FigureResult` is bit-identical to the
  serial golden by construction.
"""

from __future__ import annotations

import pickle
import time
from typing import TYPE_CHECKING, Callable, Mapping

from repro.api.cache import ResultCache
from repro.api.execution import SerialBackend
from repro.api.specs import SweepSpec
from repro.queue.broker import (
    DEFAULT_TTL,
    Broker,
    Heartbeat,
    Lease,
    default_worker_id,
)

if TYPE_CHECKING:
    from repro.experiments.runner import FigureResult

__all__ = [
    "enqueue_sweep",
    "execute_lease",
    "try_finalize",
    "worker_loop",
]


def _sweep_from(lease_spec: "Mapping | None") -> SweepSpec:
    if lease_spec is None:
        raise ValueError("sweep task carries no spec")
    return SweepSpec.from_dict(lease_spec)


def _confidence_driven(spec: SweepSpec) -> bool:
    """Whether ``run_sweep`` would take the confidence-aware path."""
    return spec.replication is not None and spec.replication.ci_level > 0


def enqueue_sweep(
    broker: Broker,
    cache: ResultCache,
    spec: SweepSpec,
    requeue: bool = False,
) -> dict:
    """Queue a sweep as one job with a *point* task per sweep point.

    The job id is the spec's cache key (version- and code-fingerprinted),
    so re-submitting an identical spec attaches to the in-flight job
    instead of duplicating work. The decomposition is cache-aware at the
    job level only: a **warm sweep entry answers without touching the
    broker at all** — zero tasks enqueued — which is what lets the results
    service serve repeat what-ifs instantly. Per-point warmth is the
    workers' business; their cache-first execution makes warm point tasks
    nearly free.

    A previously ``done``/``failed`` job whose sweep entry has since been
    evicted (or that failed) is re-created when ``requeue`` — by default a
    failed job's state is returned so callers can surface the error.
    """
    job_id = cache.key_for(spec)
    cached = cache.load(spec)
    if cached is not None:
        return {
            "job": job_id,
            "kind": "sweep",
            "status": "done",
            "cached": True,
            "spec": spec.to_dict(),
            "tasks": {},
        }
    state = broker.enqueue_job(
        job_id,
        "sweep",
        spec=spec.to_dict(),
        tasks=[("point", {"point": i}) for i in range(len(spec.values))],
    )
    if not state["created"] and state["status"] in ("done", "failed"):
        # terminal job, but the cache no longer answers: stale (evicted
        # entry) or failed — re-queue only on request
        if requeue:
            broker.delete_job(job_id)
            state = broker.enqueue_job(
                job_id,
                "sweep",
                spec=spec.to_dict(),
                tasks=[("point", {"point": i}) for i in range(len(spec.values))],
            )
    state.setdefault("cached", False)
    return state


def _materialize_point(
    spec: SweepSpec, index: int, cache: ResultCache
) -> "list[Mapping[str, float]]":
    """The initial replicate block of sweep point ``index``, cache-first.

    Exactly the serial resumable path's per-point step: load the point
    entry, else simulate the point's ``runs`` flat-seeded tasks serially
    and store them. Idempotent — a racing twin writes identical bytes.
    """
    from repro.api.experiment import SpecReplicate
    from repro.experiments.runner import SeriesValidator, spawn_tasks

    x_values = list(spec.values)
    runs = spec.effective_runs
    experiment = spec.experiment_at(x_values[index])
    block = cache.load_point(experiment, spec.seed, index * runs, runs)
    if block is not None:
        return block
    tasks = spawn_tasks(x_values, runs, spec.seed)[
        index * runs : (index + 1) * runs
    ]
    validator = SeriesValidator(runs)
    block = SerialBackend().run_replicates(
        SpecReplicate(spec), tasks, on_result=validator
    )
    cache.store_point(experiment, spec.seed, index * runs, runs, block)
    return block


def _topup_step(
    spec: SweepSpec,
    index: int,
    samples: "list[Mapping[str, float]]",
    cache: ResultCache,
) -> "tuple[bool, bool]":
    """Advance point ``index``'s adaptive schedule by at most one fresh batch.

    Replays every *cached* extension batch first (free), then simulates at
    most one batch before returning, so a lease stays short-lived and the
    remaining schedule re-enqueues as a fresh task any worker can pick up.
    Returns ``(done, simulated)``: ``done`` when the point needs no further
    top-ups (target met or ``max_runs`` reached).

    The batch coordinates are identical to the serial engine's
    (:func:`~repro.api.experiment._run_confidence_sweep`): next batch
    starts at ``len(samples)`` with size ``min(batch, max_runs - have)``.
    """
    from repro.api.experiment import SpecReplicate
    from repro.experiments.runner import (
        SeriesValidator,
        point_meets_target,
        spawn_point_extension_tasks,
    )

    rep = spec.replication
    if rep is None or not rep.adaptive:
        return True, False
    x = list(spec.values)[index]
    experiment = spec.experiment_at(x)
    batch = rep.batch_size(spec.runs)
    simulated = False
    while True:
        have = len(samples)
        if have >= rep.max_runs or point_meets_target(
            samples, rep, spec.comparison
        ):
            return True, simulated
        if simulated:
            return False, True
        size = min(batch, rep.max_runs - have)
        block = cache.load_point_extension(
            experiment, spec.seed, index, have, size
        )
        if block is None:
            tasks = spawn_point_extension_tasks(x, index, have, size, spec.seed)
            validator = SeriesValidator(size)
            block = SerialBackend().run_replicates(
                SpecReplicate(spec), tasks, on_result=validator
            )
            cache.store_point_extension(
                experiment, spec.seed, index, have, size, block
            )
            simulated = True
        samples.extend(block)


def execute_lease(
    broker: Broker, lease: Lease, cache: ResultCache
) -> "bytes | None":
    """Run one leased task; returns the result blob to store on the row.

    * ``point`` — materialise the point's initial block into the cache;
      under an adaptive spec, chain the point's first *top-up* task.
    * ``topup`` — replay the point's samples (cache-first), advance the
      adaptive schedule one batch, and re-enqueue unless the point is done.
    * ``block`` — a pickled ``(replicate, tasks)`` batch from a
      :class:`~repro.api.execution.QueueBackend`; the samples travel back
      pickled on the task row (no spec/cache involved).
    """
    if lease.kind == "block":
        replicate, tasks = pickle.loads(lease.blob)
        return pickle.dumps(
            SerialBackend().run_replicates(replicate, tasks),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    spec = _sweep_from(lease.spec)
    index = int(lease.payload["point"])
    samples = list(_materialize_point(spec, index, cache))
    if lease.kind == "point":
        if _confidence_driven(spec) and spec.replication.adaptive:
            broker.add_task(lease.job, "topup", {"point": index})
        return None
    if lease.kind == "topup":
        done, _simulated = _topup_step(spec, index, samples, cache)
        if not done:
            broker.add_task(lease.job, "topup", {"point": index})
        return None
    raise ValueError(f"unknown task kind {lease.kind!r}")


def try_finalize(
    broker: Broker, job_id: str, cache: ResultCache
) -> "FigureResult | None":
    """Assemble a drained sweep job's figure from the warm cache.

    Exactly one worker wins the claim; it reruns the spec through
    :func:`~repro.api.experiment.run_sweep` with the shared cache — every
    point (and extension) loads, nothing simulates, and the resulting
    sweep entry is what :func:`enqueue_sweep` and the results service
    answer from. Tasks that exhausted their attempts fail the whole job
    with their first error instead of assembling a silently partial
    figure.
    """
    from repro.api.experiment import run_sweep

    if not broker.claim_finalize(job_id):
        return None
    state = broker.job_state(job_id)
    if state is None or state["kind"] != "sweep":
        broker.finish_job(job_id, "done")
        return None
    failed = state["tasks"].get("failed", 0)
    if failed:
        first = next(
            (
                task["error"]
                for task in broker.tasks_for(job_id)
                if task["status"] == "failed"
            ),
            "task failed",
        )
        broker.finish_job(
            job_id, "failed", error=f"{failed} task(s) failed: {first}"
        )
        return None
    try:
        result = run_sweep(SweepSpec.from_dict(state["spec"]), cache=cache)
    except Exception as error:  # noqa: BLE001 - job must reach a terminal state
        broker.finish_job(job_id, "failed", error=repr(error))
        return None
    broker.finish_job(job_id, "done")
    return result


def worker_loop(
    queue: "str | Broker",
    cache: "str | ResultCache",
    poll: float = 0.5,
    ttl: float = DEFAULT_TTL,
    max_tasks: "int | None" = None,
    idle_exit: "float | None" = None,
    stop: "Callable[[], bool] | None" = None,
    worker_id: "str | None" = None,
    log: "Callable[[str], None] | None" = None,
) -> int:
    """Drain a queue: lease, heartbeat, execute, complete, finalize.

    The entry point behind ``repro-experiments worker``. Loops until
    ``stop()`` turns true, ``max_tasks`` leases were executed, or the
    queue stayed empty for ``idle_exit`` seconds (``None`` = run forever).
    Task exceptions are reported to the broker (:meth:`Broker.fail`
    re-serves the task until its attempts run out) and never kill the
    loop. Returns the number of tasks executed.
    """
    broker = queue if isinstance(queue, Broker) else Broker(queue, ttl=ttl)
    cache = cache if isinstance(cache, ResultCache) else ResultCache(cache)
    worker_id = worker_id or default_worker_id()
    say = log or (lambda message: None)
    executed = 0
    idle_since: "float | None" = None
    while not (stop is not None and stop()):
        if max_tasks is not None and executed >= max_tasks:
            break
        lease = broker.lease_task(worker_id, ttl=ttl)
        if lease is None:
            # nothing leasable; sweep up jobs whose last completer died
            # before assembling
            finalized = False
            for job_id in broker.finalizable_jobs():
                if try_finalize(broker, job_id, cache) is not None:
                    say(f"assembled {job_id[:12]}")
                    finalized = True
            if finalized:
                idle_since = None
                continue
            now = time.monotonic()
            idle_since = idle_since if idle_since is not None else now
            if idle_exit is not None and now - idle_since >= idle_exit:
                break
            time.sleep(poll)
            continue
        idle_since = None
        executed += 1
        say(
            f"lease #{lease.task_id} {lease.kind} {lease.payload or ''}"
            f" (attempt {lease.attempts})"
        )
        try:
            with Heartbeat(broker, lease):
                result = execute_lease(broker, lease, cache)
        except Exception as error:  # noqa: BLE001 - report, re-serve, carry on
            broker.fail(lease, repr(error))
            say(f"task #{lease.task_id} failed: {error!r}")
            continue
        if not broker.complete(lease, result):
            # reaped mid-run: the re-served twin owns completion now; our
            # samples are in the cache either way (idempotent execution)
            say(f"lease #{lease.task_id} expired before completion")
            continue
        if lease.job_kind == "sweep":
            if try_finalize(broker, lease.job, cache) is not None:
                say(f"assembled {lease.job[:12]}")
    return executed
