"""The SQLite-backed task broker: one file, no server, crash-safe leases.

The broker is deliberately the *dumb* half of the queue: it stores jobs and
tasks, hands out leases and re-serves the ones whose owners went silent. It
knows nothing about sweeps, seeds or caches — the
:mod:`repro.queue.worker` module owns all experiment semantics, which keeps
the lease state machine small enough to test exhaustively.

Design notes, all standard SQLite work-queue practice:

* **WAL mode** lets readers proceed while a writer commits, which is what
  makes N uncoordinated worker processes on one queue file workable.
* **Connection per operation** with ``BEGIN IMMEDIATE`` transactions: every
  mutating operation takes the write lock up front, so two workers can
  never lease the same task — the second ``UPDATE`` simply finds the row no
  longer pending. A busy timeout turns lock contention into short waits
  instead of errors.
* **Leases, not locks**: a worker marks a task ``leased`` with a fresh
  token and a deadline ``now + ttl``, and must :meth:`Broker.heartbeat`
  to keep long tasks alive. Every lease attempt first *reaps* expired
  leases back to ``pending`` (or ``failed`` once ``max_attempts`` is
  exhausted), so a SIGKILLed worker's task is re-served to the next caller
  with no janitor process. Completion is token-guarded: a reaped worker
  coming back from the dead gets ``False`` instead of clobbering the row.

Task *execution* must be idempotent for this scheme to be correct — ours
is: workers write replicate samples through the cache's atomic
last-writer-wins entries, and two executions of one task produce identical
bytes (seeds are positional). The broker therefore never needs distributed
consensus, just the single-writer transaction SQLite already provides.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Broker",
    "Heartbeat",
    "Lease",
    "DEFAULT_TTL",
    "DEFAULT_MAX_ATTEMPTS",
]

#: Default lease lifetime: generous against slow points, short enough that
#: a killed worker's task is re-served within one coffee refill.
DEFAULT_TTL = 120.0

#: A task repeatedly abandoned mid-lease is poisoned (it crashes its
#: workers); after this many serves it fails instead of cycling forever.
DEFAULT_MAX_ATTEMPTS = 5

#: A job stuck in ``assembling`` longer than this had its assembler die;
#: reap it back to ``pending`` so another worker finishes the figure.
DEFAULT_ASSEMBLY_TTL = 600.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id      TEXT PRIMARY KEY,
    kind    TEXT NOT NULL,
    spec    TEXT,
    status  TEXT NOT NULL DEFAULT 'pending',
    error   TEXT,
    created REAL NOT NULL,
    updated REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    id       INTEGER PRIMARY KEY AUTOINCREMENT,
    job      TEXT NOT NULL REFERENCES jobs(id) ON DELETE CASCADE,
    kind     TEXT NOT NULL,
    payload  TEXT NOT NULL DEFAULT '{}',
    blob     BLOB,
    status   TEXT NOT NULL DEFAULT 'pending',
    lease    TEXT,
    worker   TEXT,
    deadline REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    result   BLOB,
    error    TEXT,
    created  REAL NOT NULL,
    updated  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS tasks_by_status ON tasks(status, id);
CREATE INDEX IF NOT EXISTS tasks_by_job ON tasks(job, status);
"""


@dataclass(frozen=True)
class Lease:
    """One leased task: everything a worker needs to execute it.

    ``token`` proves ownership — :meth:`Broker.complete`,
    :meth:`Broker.fail` and :meth:`Broker.heartbeat` only act while the
    task still carries it, so a worker whose lease was reaped (it missed
    its deadline and the task was re-served) cannot clobber the new
    owner's state.
    """

    task_id: int
    job: str
    job_kind: str
    kind: str
    payload: dict
    blob: "bytes | None"
    spec: "dict | None"
    token: str
    deadline: float
    attempts: int
    ttl: float


class Broker:
    """The queue over one SQLite file shared by uncoordinated processes.

    Args:
        path: the queue database file (created on first use). Must not be
            an existing directory.
        ttl: default lease lifetime in seconds.
        max_attempts: serves before a repeatedly abandoned task fails.
        assembly_ttl: seconds before a stale ``assembling`` job is reaped.
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        ttl: float = DEFAULT_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        assembly_ttl: float = DEFAULT_ASSEMBLY_TTL,
    ) -> None:
        self.path = Path(path).expanduser()
        if self.path.is_dir():
            raise ValueError(f"queue path {str(self.path)!r} is a directory")
        if not ttl > 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.ttl = float(ttl)
        self.max_attempts = int(max_attempts)
        self.assembly_ttl = float(assembly_ttl)
        # executescript manages its own transaction; a surrounding explicit
        # BEGIN would be committed out from under us
        db = self._connect()
        try:
            db.executescript(_SCHEMA)
        finally:
            db.close()

    # -- plumbing ---------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        db = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        db.row_factory = sqlite3.Row
        db.execute("PRAGMA journal_mode=WAL")
        db.execute("PRAGMA synchronous=NORMAL")
        db.execute("PRAGMA foreign_keys=ON")
        db.execute("PRAGMA busy_timeout=30000")
        return db

    class _Tx:
        """One ``BEGIN IMMEDIATE`` transaction over a private connection."""

        def __init__(self, broker: "Broker") -> None:
            self._broker = broker

        def __enter__(self) -> sqlite3.Connection:
            self._db = self._broker._connect()
            try:
                self._db.execute("BEGIN IMMEDIATE")
            except BaseException:
                self._db.close()
                raise
            return self._db

        def __exit__(self, exc_type, exc, tb) -> None:
            try:
                if exc_type is None:
                    self._db.execute("COMMIT")
                else:
                    self._db.execute("ROLLBACK")
            finally:
                self._db.close()

    def _transaction(self) -> "Broker._Tx":
        return Broker._Tx(self)

    # -- jobs -------------------------------------------------------------------

    def enqueue_job(
        self,
        job_id: str,
        kind: str,
        spec: "Mapping | None" = None,
        tasks: "Sequence[tuple[str, Mapping] | tuple[str, Mapping, bytes | None]]" = (),
    ) -> dict:
        """Create a job with its initial tasks; idempotent on ``job_id``.

        ``tasks`` holds ``(kind, payload)`` or ``(kind, payload, blob)``
        tuples. An already-known ``job_id`` returns the existing job's
        state with ``created=False`` and enqueues nothing — callers key
        sweep jobs on the spec's cache key, so re-submitting a spec
        attaches to the in-flight job instead of duplicating its work.
        """
        now = time.time()
        with self._transaction() as db:
            row = db.execute(
                "SELECT id FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is not None:
                state = self._job_state(db, job_id)
                state["created"] = False
                return state
            db.execute(
                "INSERT INTO jobs (id, kind, spec, status, created, updated)"
                " VALUES (?, ?, ?, 'pending', ?, ?)",
                (
                    job_id,
                    kind,
                    json.dumps(spec, sort_keys=True) if spec is not None else None,
                    now,
                    now,
                ),
            )
            for task in tasks:
                task_kind, payload = task[0], task[1]
                blob = task[2] if len(task) > 2 else None
                db.execute(
                    "INSERT INTO tasks (job, kind, payload, blob, status,"
                    " created, updated) VALUES (?, ?, ?, ?, 'pending', ?, ?)",
                    (
                        job_id,
                        task_kind,
                        json.dumps(dict(payload), sort_keys=True),
                        blob,
                        now,
                        now,
                    ),
                )
            state = self._job_state(db, job_id)
            state["created"] = True
            return state

    def add_task(
        self,
        job_id: str,
        kind: str,
        payload: "Mapping | None" = None,
        blob: "bytes | None" = None,
    ) -> bool:
        """Append one task to a job unless an identical one is outstanding.

        Deduplicates on ``(job, kind, payload)`` against *pending or
        leased* rows: a worker re-enqueueing the next top-up for a point
        while the presumed-dead original enqueuer's row is still live must
        not double the work. Done/failed rows do not block — the schedule
        may legitimately revisit a payload.
        """
        now = time.time()
        text = json.dumps(dict(payload or {}), sort_keys=True)
        with self._transaction() as db:
            if db.execute(
                "SELECT 1 FROM tasks WHERE job = ? AND kind = ? AND"
                " payload = ? AND status IN ('pending', 'leased') LIMIT 1",
                (job_id, kind, text),
            ).fetchone():
                return False
            db.execute(
                "INSERT INTO tasks (job, kind, payload, blob, status,"
                " created, updated) VALUES (?, ?, ?, ?, 'pending', ?, ?)",
                (job_id, kind, text, blob, now, now),
            )
            # new work reopens a job another worker already assembled
            db.execute(
                "UPDATE jobs SET status = 'pending', updated = ? WHERE"
                " id = ? AND status != 'pending'",
                (now, job_id),
            )
            return True

    def delete_job(self, job_id: str) -> bool:
        """Drop a job and (via cascade) all its tasks; True if it existed."""
        with self._transaction() as db:
            cursor = db.execute("DELETE FROM jobs WHERE id = ?", (job_id,))
            return cursor.rowcount > 0

    def job_state(self, job_id: str) -> "dict | None":
        """The job row plus per-status task counts, or ``None`` if unknown."""
        with self._transaction() as db:
            row = db.execute(
                "SELECT id FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            if row is None:
                return None
            return self._job_state(db, job_id)

    @staticmethod
    def _job_state(db: sqlite3.Connection, job_id: str) -> dict:
        job = db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        counts = {
            row["status"]: row["n"]
            for row in db.execute(
                "SELECT status, COUNT(*) AS n FROM tasks WHERE job = ?"
                " GROUP BY status",
                (job_id,),
            )
        }
        return {
            "job": job["id"],
            "kind": job["kind"],
            "status": job["status"],
            "error": job["error"],
            "spec": json.loads(job["spec"]) if job["spec"] else None,
            "tasks": counts,
        }

    def jobs(self, limit: int = 100) -> "list[dict]":
        """The most recently updated jobs' states, newest first."""
        with self._transaction() as db:
            ids = [
                row["id"]
                for row in db.execute(
                    "SELECT id FROM jobs ORDER BY updated DESC LIMIT ?",
                    (int(limit),),
                )
            ]
            return [self._job_state(db, job_id) for job_id in ids]

    # -- leasing ----------------------------------------------------------------

    @staticmethod
    def _reap(db: sqlite3.Connection, now: float, max_attempts: int,
              assembly_ttl: float) -> None:
        """Re-serve expired leases; poison tasks out of attempts.

        Runs inside the caller's write transaction, so reap + lease is one
        atomic step — there is no window in which an expired task is
        pending but unleasable.
        """
        db.execute(
            "UPDATE tasks SET status = 'failed', lease = NULL,"
            " worker = NULL, deadline = NULL, updated = ?,"
            " error = COALESCE(error, 'lease expired ' || attempts || 'x')"
            " WHERE status = 'leased' AND deadline < ? AND attempts >= ?",
            (now, now, max_attempts),
        )
        db.execute(
            "UPDATE tasks SET status = 'pending', lease = NULL,"
            " worker = NULL, deadline = NULL, updated = ?"
            " WHERE status = 'leased' AND deadline < ?",
            (now, now),
        )
        # an assembler that died mid-run: hand the job back
        db.execute(
            "UPDATE jobs SET status = 'pending', updated = ? WHERE"
            " status = 'assembling' AND updated < ?",
            (now, now - assembly_ttl),
        )

    def release_expired(self) -> None:
        """Reap expired leases now (leasing does this implicitly)."""
        with self._transaction() as db:
            self._reap(db, time.time(), self.max_attempts, self.assembly_ttl)

    def lease_task(
        self,
        worker: str,
        ttl: "float | None" = None,
        job: "str | None" = None,
        kinds: "Sequence[str] | None" = None,
    ) -> "Lease | None":
        """Lease the oldest pending task, or ``None`` when none is ready.

        Reaps expired leases first, so a single polling worker drains a
        queue abandoned by dead ones. ``job``/``kinds`` restrict what is
        taken — the in-process :class:`~repro.api.execution.QueueBackend`
        uses them to work-steal its own block tasks.
        """
        ttl = self.ttl if ttl is None else float(ttl)
        now = time.time()
        token = uuid.uuid4().hex
        with self._transaction() as db:
            self._reap(db, now, self.max_attempts, self.assembly_ttl)
            query = "SELECT id FROM tasks WHERE status = 'pending'"
            params: list = []
            if job is not None:
                query += " AND job = ?"
                params.append(job)
            if kinds:
                query += f" AND kind IN ({','.join('?' * len(kinds))})"
                params.extend(kinds)
            query += " ORDER BY id LIMIT 1"
            row = db.execute(query, params).fetchone()
            if row is None:
                return None
            db.execute(
                "UPDATE tasks SET status = 'leased', lease = ?, worker = ?,"
                " deadline = ?, attempts = attempts + 1, updated = ?"
                " WHERE id = ?",
                (token, worker, now + ttl, now, row["id"]),
            )
            task = db.execute(
                "SELECT t.*, j.kind AS job_kind, j.spec AS job_spec"
                " FROM tasks t JOIN jobs j ON t.job = j.id WHERE t.id = ?",
                (row["id"],),
            ).fetchone()
            return Lease(
                task_id=task["id"],
                job=task["job"],
                job_kind=task["job_kind"],
                kind=task["kind"],
                payload=json.loads(task["payload"]),
                blob=task["blob"],
                spec=json.loads(task["job_spec"]) if task["job_spec"] else None,
                token=task["lease"],
                deadline=task["deadline"],
                attempts=task["attempts"],
                ttl=ttl,
            )

    def heartbeat(self, lease: Lease, ttl: "float | None" = None) -> bool:
        """Extend a live lease's deadline; ``False`` once it was reaped."""
        ttl = lease.ttl if ttl is None else float(ttl)
        now = time.time()
        with self._transaction() as db:
            cursor = db.execute(
                "UPDATE tasks SET deadline = ?, updated = ? WHERE id = ?"
                " AND status = 'leased' AND lease = ?",
                (now + ttl, now, lease.task_id, lease.token),
            )
            return cursor.rowcount > 0

    def complete(self, lease: Lease, result: "bytes | None" = None) -> bool:
        """Mark a leased task done; ``False`` if the lease was reaped.

        A stale completion is *benign*, not an error: task execution is
        idempotent (samples land in the cache via last-writer-wins atomic
        renames), so the re-served twin computed the same bytes. The
        ``False`` only tells the caller not to bother finalizing.
        """
        now = time.time()
        with self._transaction() as db:
            cursor = db.execute(
                "UPDATE tasks SET status = 'done', result = ?, lease = NULL,"
                " deadline = NULL, updated = ? WHERE id = ? AND"
                " status = 'leased' AND lease = ?",
                (result, now, lease.task_id, lease.token),
            )
            return cursor.rowcount > 0

    def fail(self, lease: Lease, error: str) -> bool:
        """Record a failed execution; re-serves unless attempts ran out."""
        now = time.time()
        status = "pending" if lease.attempts < self.max_attempts else "failed"
        with self._transaction() as db:
            cursor = db.execute(
                "UPDATE tasks SET status = ?, error = ?, lease = NULL,"
                " worker = NULL, deadline = NULL, updated = ? WHERE id = ?"
                " AND status = 'leased' AND lease = ?",
                (status, str(error)[:2000], now, lease.task_id, lease.token),
            )
            return cursor.rowcount > 0

    # -- finalization -----------------------------------------------------------

    def claim_finalize(self, job_id: str) -> bool:
        """Atomically claim a drained job for assembly; one winner only.

        Succeeds iff the job is ``pending`` and has no pending or leased
        tasks left. The winner runs the assembly pass and must then call
        :meth:`finish_job`; everyone else sees ``False`` and moves on.
        """
        now = time.time()
        with self._transaction() as db:
            cursor = db.execute(
                "UPDATE jobs SET status = 'assembling', updated = ? WHERE"
                " id = ? AND status = 'pending' AND NOT EXISTS ("
                "   SELECT 1 FROM tasks WHERE job = jobs.id AND"
                "   status IN ('pending', 'leased'))",
                (now, job_id),
            )
            return cursor.rowcount > 0

    def finish_job(
        self, job_id: str, status: str, error: "str | None" = None
    ) -> None:
        """Terminal transition after assembly: ``done`` or ``failed``."""
        if status not in ("done", "failed", "pending"):
            raise ValueError(f"unknown job status {status!r}")
        with self._transaction() as db:
            db.execute(
                "UPDATE jobs SET status = ?, error = ?, updated = ?"
                " WHERE id = ?",
                (status, error, time.time(), job_id),
            )

    def finalizable_jobs(self) -> "list[str]":
        """Jobs that are drained but not yet assembled, oldest first.

        Idle workers scan this: a job whose last task was completed by a
        worker that died before assembling (stale ``complete`` or crash
        between complete and finalize) still gets its figure built.
        """
        with self._transaction() as db:
            self._reap(db, time.time(), self.max_attempts, self.assembly_ttl)
            return [
                row["id"]
                for row in db.execute(
                    "SELECT id FROM jobs WHERE status = 'pending' AND"
                    " NOT EXISTS (SELECT 1 FROM tasks WHERE job = jobs.id"
                    " AND status IN ('pending', 'leased')) ORDER BY updated"
                )
            ]

    def tasks_for(self, job_id: str) -> "list[dict]":
        """Every task row of a job (id order), results included."""
        with self._transaction() as db:
            return [
                {
                    "id": row["id"],
                    "kind": row["kind"],
                    "payload": json.loads(row["payload"]),
                    "status": row["status"],
                    "worker": row["worker"],
                    "attempts": row["attempts"],
                    "result": row["result"],
                    "error": row["error"],
                }
                for row in db.execute(
                    "SELECT * FROM tasks WHERE job = ? ORDER BY id", (job_id,)
                )
            ]

    def stats(self) -> dict:
        """Queue-wide job/task counts per status."""
        with self._transaction() as db:
            jobs = {
                row["status"]: row["n"]
                for row in db.execute(
                    "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
                )
            }
            tasks = {
                row["status"]: row["n"]
                for row in db.execute(
                    "SELECT status, COUNT(*) AS n FROM tasks GROUP BY status"
                )
            }
        return {"path": str(self.path), "jobs": jobs, "tasks": tasks}

    def __repr__(self) -> str:
        return f"Broker({str(self.path)!r})"


def default_worker_id() -> str:
    """``host:pid`` — unique enough to attribute leases in a queue file."""
    return f"{socket.gethostname()}:{os.getpid()}"


class Heartbeat:
    """A daemon thread extending one lease until stopped.

    Renews at half the TTL so a single missed beat (GC pause, disk stall)
    never loses the lease. Used as a context manager around task
    execution::

        with Heartbeat(broker, lease):
            ...  # long-running work
    """

    def __init__(self, broker: Broker, lease: Lease,
                 interval: "float | None" = None) -> None:
        self._broker = broker
        self._lease = lease
        self._interval = (
            max(0.05, lease.ttl / 2.0) if interval is None else float(interval)
        )
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.lost = False

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                alive = self._broker.heartbeat(self._lease)
            except sqlite3.Error:
                continue  # transient contention; retry next beat
            if not alive:
                self.lost = True
                return

    def __enter__(self) -> "Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
