"""Dynamic work-queue execution: broker, workers and the results service.

PRs 1–5 built every scale-out ingredient — pluggable
:class:`~repro.api.execution.ExecutionBackend`\\ s, a shared per-point
:class:`~repro.api.cache.ResultCache`, static ``--shard I/N`` fan-out and
adaptive top-ups — but shard assignment stayed static: N processes each own
a fixed residue class of sweep points, and a dead process strands its
points until a human reruns its shard. This package replaces static
assignment with *dynamic* work distribution:

* :mod:`repro.queue.broker` — :class:`~repro.queue.broker.Broker`, an
  SQLite-backed task queue in a single file (WAL mode, no server process).
  A :class:`~repro.api.specs.SweepSpec` decomposes into one *point* task
  per sweep point plus per-point adaptive *top-up* tasks; workers lease
  tasks with a TTL and heartbeat, and expired leases are re-served to the
  next worker, so a killed worker loses nothing but its in-flight task.
* :mod:`repro.queue.worker` — the worker loop behind ``repro-experiments
  worker --queue PATH``: lease, execute via the existing spec machinery,
  commit replicate samples straight into the shared per-point cache, and
  assemble the final :class:`~repro.experiments.runner.FigureResult` from
  the warm cache the moment the last task lands. Assembly reuses
  :func:`~repro.api.experiment.run_sweep` over the warm cache, so a
  queue-assembled figure is bit-identical to the serial run by
  construction — the very property the sharded path already pinned.
* :mod:`repro.queue.service` — a thin stdlib ``http.server`` results
  service (``repro-experiments serve``): POST a sweep spec, get the cached
  figure instantly when warm; cold specs are queued for the workers and a
  job-status endpoint polls to completion.

Determinism is inherited, not re-proven: tasks carry only *positions*
(sweep point indices and replicate offsets), every replicate's seed is a
pure function of its position (see
:func:`~repro.experiments.runner.spawn_tasks` /
:func:`~repro.experiments.runner.spawn_point_extension_tasks`), and samples
flow through the same cache entries a serial or sharded run would write.
Executing a task twice — a re-served lease racing its presumed-dead
original owner — just rewrites identical bytes (last-writer-wins atomic
renames).
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "Broker": "repro.queue.broker",
    "Lease": "repro.queue.broker",
    "Heartbeat": "repro.queue.broker",
    "enqueue_sweep": "repro.queue.worker",
    "execute_lease": "repro.queue.worker",
    "try_finalize": "repro.queue.worker",
    "worker_loop": "repro.queue.worker",
    "ResultsServer": "repro.queue.service",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.queue' has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))
