"""Streaming traces: million-round horizons in O(round) memory.

A materialised :class:`~repro.workload.base.Trace` holds every round in
memory, which caps the horizon × substrate size an experiment can afford.
:class:`StreamingTrace` satisfies the same round-iteration protocol the
simulator consumes (``__len__`` + ``__iter__`` + ``scenario_name``) but
produces each round lazily from a stored ``(generator, seed)`` pair:

* every ``iter()`` replays the generator from a *fresh* RNG seeded with the
  stored seed, so the object is re-iterable and deterministic — all policies
  of a replicate see identical rounds;
* scenarios that implement the optional ``stream(horizon, rng)`` method
  (all built-ins do) generate one round at a time; scenarios without it fall
  back to materialising inside the iteration, keeping correctness at the
  cost of the memory guarantee;
* online policies consume the stream directly; offline policies declare
  ``requires_full_trace`` and the simulator materialises for them (see
  :class:`~repro.core.policy.OfflinePolicy`).

:class:`StreamingScenario` lifts any registered scenario into the spec
layer (registered as ``"streaming"``): its ``generate`` draws one seed from
the shared replicate stream and returns a :class:`StreamingTrace` (or its
materialisation with ``materialize=True``). Because both variants consume
exactly one draw, a streaming run's ledgers are bit-identical to its
materialised twin — across serial, process-pool and queue backends.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.api.registry import register_scenario, resolve_scenario
from repro.workload.base import RequestGenerator, Trace, stream_rounds

__all__ = ["StreamingTrace", "StreamingScenario"]


class StreamingTrace:
    """A lazily generated, re-iterable request sequence.

    Args:
        generator: the scenario producing the rounds; its optional
            ``stream`` method is used when present (O(round) memory),
            ``generate`` otherwise (materialising fallback).
        horizon: number of rounds.
        seed: integer seed replayed on every iteration; ``None`` draws one
            from OS entropy *once* so all iterations still agree. A
            stateful ``np.random.Generator`` is rejected — replaying it
            twice would yield different rounds.
        scenario_name: ledger label; defaults to the generator's.
        metadata: provenance mapping; defaults to a small streaming record.
    """

    def __init__(
        self,
        generator: RequestGenerator,
        horizon: int,
        seed: "int | None" = None,
        scenario_name: "str | None" = None,
        metadata: "Mapping | None" = None,
    ) -> None:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        if isinstance(seed, np.random.Generator):
            raise TypeError(
                "StreamingTrace needs a replayable seed (int or None), not a "
                "stateful Generator: every iteration restarts from the seed"
            )
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        self.generator = generator
        self.horizon = int(horizon)
        self.seed = int(seed)
        self.scenario_name = (
            scenario_name
            if scenario_name is not None
            else getattr(generator, "scenario_name", type(generator).__name__)
        )
        self.metadata = (
            dict(metadata)
            if metadata is not None
            else {
                "scenario": "streaming",
                "inner": self.scenario_name,
                "seed": self.seed,
                "horizon": self.horizon,
            }
        )

    def __len__(self) -> int:
        return self.horizon

    def __iter__(self) -> Iterator[np.ndarray]:
        rng = np.random.default_rng(self.seed)
        count = 0
        for arr in stream_rounds(self.generator, self.horizon, rng):
            arr = np.asarray(arr, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(
                    f"round {count} must be a 1-D array, got shape {arr.shape}"
                )
            if arr.size and arr.min() < 0:
                raise ValueError(f"round {count} contains negative node indices")
            yield arr
            count += 1
        if count != self.horizon:
            raise RuntimeError(
                f"{type(self.generator).__name__} streamed {count} rounds, "
                f"expected {self.horizon}"
            )

    @property
    def total_requests(self) -> int:
        """Request count over the whole stream (one O(round)-memory pass)."""
        return int(sum(arr.size for arr in self))

    def materialize(self) -> Trace:
        """The equivalent :class:`Trace` — the O(trace)-memory step.

        Offline policies need the full sequence ahead of time; the
        simulator calls this exactly when a policy declares
        ``requires_full_trace``.
        """
        return Trace(
            tuple(self),
            scenario_name=self.scenario_name,
            metadata=dict(self.metadata),
        )

    def __repr__(self) -> str:
        return (
            f"StreamingTrace({self.scenario_name!r}, horizon={self.horizon}, "
            f"seed={self.seed})"
        )


class StreamingScenario:
    """A scenario wrapper whose traces stream instead of materialising.

    ``generate`` consumes exactly one integer draw from the replicate's
    shared RNG stream — the :class:`StreamingTrace` seed — whether or not
    ``materialize`` is set. That makes a streaming run and its materialised
    twin (``materialize=True``) bit-identical end to end: same trace seed,
    same downstream policy draws, same ledgers.

    Note the deliberate protocol widening: with ``materialize=False`` (the
    default), ``generate`` returns a :class:`StreamingTrace`, not a
    :class:`Trace`. Everything downstream — ``generate_trace``'s length
    check, the simulator, the metric pipeline — consumes the round-iteration
    protocol only, so the lazy object drops in transparently.
    """

    def __init__(self, inner: RequestGenerator, materialize: bool = False) -> None:
        self.inner = inner
        self.materialize = bool(materialize)
        inner_name = getattr(inner, "scenario_name", type(inner).__name__)
        self.scenario_name = f"streaming({inner_name})"

    def generate(self, horizon: int, rng: np.random.Generator):
        """A :class:`StreamingTrace` (or its materialisation) for ``horizon``."""
        seed = int(rng.integers(0, np.iinfo(np.int64).max))
        trace = StreamingTrace(
            self.inner, horizon, seed, scenario_name=self.scenario_name
        )
        return trace.materialize() if self.materialize else trace

    def __repr__(self) -> str:
        return (
            f"StreamingScenario({self.inner!r}, materialize={self.materialize})"
        )


@register_scenario("streaming")
def streaming(substrate, scenario: str = "commuter", params=None,
              materialize: bool = False, **inner_params):
    """Registry factory: stream any registered scenario.

    ``scenario`` names the wrapped scenario; its parameters go in
    ``params`` (a mapping, JSON-safe for specs) or directly as extra
    keyword arguments (convenient from the CLI:
    ``--scenario streaming:scenario=commuter,sojourn=5``).
    ``materialize=True`` generates the identical trace eagerly — the knob
    the bit-identity tests and benchmarks flip.

    Dotted ``params.X`` keyword arguments override individual entries of
    ``params``; that is what a sweep over ``scenario.params.sojourn``
    substitutes, so the wrapped scenario's knobs stay sweepable through
    the wrapper.
    """
    overrides = {
        key[len("params."):]: inner_params.pop(key)
        for key in list(inner_params)
        if key.startswith("params.")
    }
    if params and inner_params:
        raise ValueError(
            "pass the wrapped scenario's parameters either via params= or "
            "inline, not both"
        )
    inner_kwargs = dict(params or inner_params or {})
    inner_kwargs.update(overrides)
    inner = resolve_scenario(scenario)(substrate, **inner_kwargs)
    return StreamingScenario(inner, materialize=materialize)


def _streaming_fingerprint(params) -> "dict | list | None":
    """Delegate content identity to the wrapped scenario (replay files)."""
    from repro.api.cache import scenario_content_fingerprint

    inner_kind = params.get("scenario", "commuter")
    base = dict(params.get("params") or {})
    inline = {
        k: v for k, v in params.items()
        if k not in ("scenario", "params", "materialize")
        and not k.startswith("params.")
    }
    inner_params = base or inline
    inner_params.update(
        {k[len("params."):]: v for k, v in params.items() if k.startswith("params.")}
    )
    return scenario_content_fingerprint(inner_kind, inner_params)


streaming.content_fingerprint = _streaming_fingerprint
