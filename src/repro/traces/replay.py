"""Replaying external request logs as allocation scenarios.

The paper's evaluation generates synthetic demand (commuters, time zones,
mobility); production gateways log *real* requests. This module closes the
gap: a request log — CSV, JSONL, or a saved ``.npz`` trace — becomes a
registered scenario (``"replay"``) that drops into every figure, sweep,
comparison and queue path and can be scored against OPT like any synthetic
workload.

Three pieces:

* **readers** — :func:`iter_records` streams ``(round, key)`` records from
  CSV/JSONL files with configurable column/field names, or from a saved
  ``.npz`` trace;
* **node mapping** — deterministic :func:`make_mapper` strategies placing
  raw source keys (server names, user ids, IPs) onto substrate nodes:
  ``hash`` (stable sha256 bucket), ``round_robin`` (first-appearance
  order), ``table`` (explicit mapping), or ``none`` (keys already are node
  indices);
* **scenario** — :class:`TraceReplayScenario`, streaming the file lazily
  (O(round) memory) with the usual ``stream``/``generate`` pair, cycling,
  padding or erroring when the log is shorter than the horizon.

File-backed scenarios carry a content fingerprint (sha256 + size, memoized
per ``(path, mtime, size)``) that the result cache folds into its keys, so
editing a log in place invalidates cached results.
"""

from __future__ import annotations

import csv
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.api.registry import register_scenario
from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = [
    "TraceReplayScenario",
    "iter_records",
    "rounds_from_records",
    "make_mapper",
    "file_digest",
    "replay_stats",
]

_FORMATS = ("csv", "jsonl", "npz")
_MAPPINGS = ("hash", "round_robin", "table", "none")
_EXTENDS = ("cycle", "pad", "error")

_SUFFIX_FORMATS = {
    ".csv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".npz": "npz",
}


def infer_format(path: "str | Path") -> str:
    """The log format implied by ``path``'s suffix."""
    suffix = Path(path).suffix.lower()
    try:
        return _SUFFIX_FORMATS[suffix]
    except KeyError:
        raise ValueError(
            f"cannot infer log format from suffix {suffix!r} of {path}; "
            f"pass format= explicitly (one of {_FORMATS})"
        ) from None


# -- content identity ------------------------------------------------------------

_DIGEST_CACHE: "dict[tuple[str, int, int], dict]" = {}


def file_digest(path: "str | Path") -> dict:
    """Content identity of a log file: ``{name, sha256, size}``.

    Memoized per ``(resolved path, mtime_ns, size)`` so repeated cache-key
    computations over a sweep hash each file once; touching the file's
    content re-hashes it.
    """
    resolved = Path(path).resolve()
    stat = resolved.stat()
    cache_key = (str(resolved), stat.st_mtime_ns, stat.st_size)
    cached = _DIGEST_CACHE.get(cache_key)
    if cached is not None:
        return dict(cached)
    digest = hashlib.sha256()
    with open(resolved, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    entry = {
        "name": resolved.name,
        "sha256": digest.hexdigest(),
        "size": stat.st_size,
    }
    _DIGEST_CACHE[cache_key] = entry
    return dict(entry)


# -- node mapping ----------------------------------------------------------------


def _hash_key(key) -> int:
    """A stable non-negative integer for any raw source key."""
    digest = hashlib.sha256(str(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class _HashMapper:
    """sha256 bucket: same key → same node, independent of arrival order."""

    name = "hash"

    def __init__(self, targets: np.ndarray) -> None:
        self.targets = targets

    def __call__(self, key) -> int:
        return int(self.targets[_hash_key(key) % self.targets.size])


class _RoundRobinMapper:
    """First-appearance order: the k-th distinct key gets the k-th node."""

    name = "round_robin"

    def __init__(self, targets: np.ndarray) -> None:
        self.targets = targets
        self.assigned: "dict[object, int]" = {}

    def __call__(self, key) -> int:
        node = self.assigned.get(key)
        if node is None:
            node = int(self.targets[len(self.assigned) % self.targets.size])
            self.assigned[key] = node
        return node


class _TableMapper:
    """Explicit raw-key → node-index table; unknown keys are errors."""

    name = "table"

    def __init__(self, table: Mapping, n_nodes: int) -> None:
        self.table = {str(k): int(v) for k, v in table.items()}
        for raw, node in self.table.items():
            if not 0 <= node < n_nodes:
                raise ValueError(
                    f"mapping table sends {raw!r} to node {node}, outside "
                    f"the substrate's 0..{n_nodes - 1}"
                )

    def __call__(self, key) -> int:
        try:
            return self.table[str(key)]
        except KeyError:
            raise ValueError(
                f"log key {key!r} is not in the mapping table "
                f"({len(self.table)} entries)"
            ) from None


class _IdentityMapper:
    """Keys already are node indices (saved traces, pre-mapped logs)."""

    name = "none"

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes

    def __call__(self, key) -> int:
        try:
            node = int(key)
        except (TypeError, ValueError):
            raise ValueError(
                f"mapping 'none' expects integer node indices, got {key!r}; "
                f"use mapping='hash'/'round_robin'/'table' for raw keys"
            ) from None
        if not 0 <= node < self.n_nodes:
            raise ValueError(
                f"log node index {node} outside the substrate's "
                f"0..{self.n_nodes - 1}"
            )
        return node


def make_mapper(
    mapping: str,
    targets: np.ndarray,
    table: "Mapping | None" = None,
    n_nodes: "int | None" = None,
):
    """A deterministic ``key -> node index`` callable for ``mapping``.

    ``targets`` is the array of eligible node indices (normally the
    substrate's access points); ``table`` is required for (and only for)
    the ``"table"`` strategy; ``n_nodes`` bounds table/identity results
    (defaults to ``targets.max() + 1``). The total-function property —
    every key maps to a valid node or raises — is what the property tests
    pin down.
    """
    if mapping not in _MAPPINGS:
        raise ValueError(f"unknown mapping {mapping!r}; expected one of {_MAPPINGS}")
    if n_nodes is None:
        n_nodes = int(targets.max()) + 1
    if mapping == "table":
        if not table:
            raise ValueError("mapping 'table' needs a non-empty table= mapping")
        return _TableMapper(table, n_nodes=n_nodes)
    if table:
        raise ValueError(f"table= is only meaningful with mapping='table', not {mapping!r}")
    if mapping == "hash":
        return _HashMapper(targets)
    if mapping == "round_robin":
        return _RoundRobinMapper(targets)
    return _IdentityMapper(n_nodes=n_nodes)


# -- readers ---------------------------------------------------------------------


def _parse_round(value, where: str):
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{where}: round value {value!r} is not numeric") from None


def _iter_csv(path: Path, node_field: str, round_field: "str | None"):
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            return
        if node_field not in reader.fieldnames:
            raise ValueError(
                f"{path.name}: no column {node_field!r} "
                f"(columns: {', '.join(reader.fieldnames)})"
            )
        has_round = round_field is not None and round_field in reader.fieldnames
        for i, row in enumerate(reader):
            raw_round = row[round_field] if has_round else None
            yield _parse_round(raw_round, f"{path.name} row {i}"), row[node_field]


def _iter_jsonl(path: Path, node_field: str, round_field: "str | None"):
    with open(path, encoding="utf-8") as handle:
        for i, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path.name} line {i + 1}: invalid JSON ({exc})") from None
            if node_field not in record:
                raise ValueError(f"{path.name} line {i + 1}: no field {node_field!r}")
            raw_round = record.get(round_field) if round_field else None
            yield _parse_round(raw_round, f"{path.name} line {i + 1}"), record[node_field]


def _iter_npz(path: Path):
    trace = Trace.load(path)
    for t, requests in enumerate(trace):
        for node in requests:
            yield float(t), int(node)


def iter_records(
    path: "str | Path",
    format: "str | None" = None,
    node_field: str = "node",
    round_field: "str | None" = "round",
) -> Iterator[tuple]:
    """Stream ``(round_value, raw_key)`` records from a request log.

    ``round_value`` is a float (or ``None`` when the log has no round
    column — pair with ``requests_per_round``); ``raw_key`` is the
    unmapped source key. The file is read lazily, one record at a time.
    """
    path = Path(path)
    format = format or infer_format(path)
    if format not in _FORMATS:
        raise ValueError(f"unknown log format {format!r}; expected one of {_FORMATS}")
    if format == "csv":
        yield from _iter_csv(path, node_field, round_field)
    elif format == "jsonl":
        yield from _iter_jsonl(path, node_field, round_field)
    else:
        yield from _iter_npz(path)


def rounds_from_records(
    records: Iterable[tuple],
    mapper,
    round_duration: "float | None" = None,
    requests_per_round: "int | None" = None,
    sort: bool = False,
    limit: "int | None" = None,
    where: str = "replay log",
) -> Iterator[np.ndarray]:
    """Group mapped records into per-round int64 arrays.

    The round index of a record is, in order of precedence:
    ``record_position // requests_per_round`` when ``requests_per_round``
    is set; ``round_value // round_duration`` when ``round_duration`` is
    set (timestamp logs); the integer ``round_value`` otherwise. Gaps
    between indices become empty rounds. Round indices must be
    nondecreasing unless ``sort=True`` (which materialises the records —
    ``repro-experiments trace convert --sort`` does this once, offline).
    """
    if requests_per_round is not None and requests_per_round < 1:
        raise ValueError(f"requests_per_round must be >= 1, got {requests_per_round}")
    if round_duration is not None and round_duration <= 0:
        raise ValueError(f"round_duration must be > 0, got {round_duration}")

    def round_index(position: int, round_value) -> int:
        if requests_per_round is not None:
            return position // requests_per_round
        if round_value is None:
            raise ValueError(
                f"{where}: records carry no round value; set round_field= "
                f"to the right column or requests_per_round= to batch them"
            )
        if round_duration is not None:
            return int(round_value // round_duration)
        return int(round_value)

    indexed = (
        (round_index(position, round_value), mapper(key))
        for position, (round_value, key) in enumerate(records)
    )
    if sort:
        indexed = iter(sorted(indexed, key=lambda pair: pair[0]))

    current: "int | None" = None
    nodes: "list[int]" = []
    produced = 0

    def flush():
        nonlocal nodes
        arr = np.asarray(nodes, dtype=np.int64)
        nodes = []
        return arr

    for r, node in indexed:
        if current is None:
            current = r
        elif r < current:
            raise ValueError(
                f"{where}: round indices go backwards ({r} after {current}); "
                f"sort the log first (repro-experiments trace convert --sort)"
            )
        while r > current:
            yield flush()
            produced += 1
            if limit is not None and produced >= limit:
                return
            current += 1
        nodes.append(node)
    if current is not None and (limit is None or produced < limit):
        yield flush()


# -- the scenario ----------------------------------------------------------------


@register_scenario("replay")
@dataclass
class TraceReplayScenario:
    """Replay an external request log as an allocation scenario.

    Args:
        substrate: substrate network the log is mapped onto.
        path: the log file (CSV, JSONL, or a saved ``.npz`` trace).
        format: log format; inferred from the suffix when ``None``.
        node_field: CSV column / JSONL field holding the source key.
        round_field: CSV column / JSONL field holding the round index or
            timestamp (ignored for ``.npz``).
        round_duration: when set, ``round_field`` values are timestamps and
            each round spans this many time units.
        requests_per_round: when set, ignore round values and batch the log
            into fixed-size rounds in file order.
        mapping: node-mapping strategy (``hash``, ``round_robin``,
            ``table``, ``none``); defaults to ``none`` for ``.npz`` logs
            (already node indices) and ``hash`` otherwise.
        table: raw-key → node-index mapping for ``mapping='table'``.
        extend: what to do when the log is shorter than the horizon —
            ``cycle`` (repeat from the start; default), ``pad`` (empty
            rounds), or ``error``.
        limit: use at most this many rounds of the log per pass.
    """

    substrate: Substrate
    path: str = ""
    format: "str | None" = None
    node_field: str = "node"
    round_field: "str | None" = "round"
    round_duration: "float | None" = None
    requests_per_round: "int | None" = None
    mapping: "str | None" = None
    table: "Mapping | None" = None
    extend: str = "cycle"
    limit: "int | None" = None
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("replay needs a path= to the request log")
        self.format = self.format or infer_format(self.path)
        if self.format not in _FORMATS:
            raise ValueError(
                f"unknown log format {self.format!r}; expected one of {_FORMATS}"
            )
        if self.mapping is None:
            self.mapping = "none" if self.format == "npz" else "hash"
        if self.mapping not in _MAPPINGS:
            raise ValueError(
                f"unknown mapping {self.mapping!r}; expected one of {_MAPPINGS}"
            )
        if self.extend not in _EXTENDS:
            raise ValueError(
                f"unknown extend mode {self.extend!r}; expected one of {_EXTENDS}"
            )
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        self.scenario_name = (
            f"replay({Path(self.path).name},map={self.mapping})"
        )

    def _make_mapper(self):
        return make_mapper(
            self.mapping,
            self.substrate.access_points,
            self.table,
            n_nodes=self.substrate.n,
        )

    def _iter_file_rounds(self, mapper) -> Iterator[np.ndarray]:
        records = iter_records(
            self.path, self.format, self.node_field, self.round_field
        )
        yield from rounds_from_records(
            records,
            mapper,
            round_duration=self.round_duration,
            requests_per_round=self.requests_per_round,
            limit=self.limit,
            where=Path(self.path).name,
        )

    def stream(self, horizon: int, rng: "np.random.Generator | None" = None):
        """Yield replayed rounds lazily; ``rng`` is unused (replay is
        deterministic) but accepted for protocol compatibility."""
        mapper = self._make_mapper()  # shared across passes: round_robin
        # assignments from the first pass are reused when cycling.
        emitted = 0
        while emitted < horizon:
            produced = 0
            for requests in self._iter_file_rounds(mapper):
                if requests.size:
                    n = self.substrate.n
                    low, high = int(requests.min()), int(requests.max())
                    if low < 0 or high >= n:
                        raise ValueError(
                            f"{Path(self.path).name}: mapped node {high if high >= n else low} "
                            f"outside the substrate's 0..{n - 1}"
                        )
                yield requests
                emitted += 1
                produced += 1
                if emitted >= horizon:
                    return
            if produced == 0:
                raise ValueError(f"{Path(self.path).name}: replay log has no rounds")
            if self.extend == "error":
                raise ValueError(
                    f"{Path(self.path).name}: log has {produced} rounds but the "
                    f"horizon needs {horizon} (extend='error')"
                )
            if self.extend == "pad":
                while emitted < horizon:
                    yield np.empty(0, dtype=np.int64)
                    emitted += 1
                return
            # extend == "cycle": re-read the file from the start.

    def generate(self, horizon: int, rng: "np.random.Generator | None" = None) -> Trace:
        """Materialise ``horizon`` replayed rounds as a :class:`Trace`."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "replay",
                "mapping": self.mapping,
                "extend": self.extend,
                "substrate": self.substrate.name,
                **file_digest(self.path),
            },
        )


def _replay_fingerprint(params) -> "dict | None":
    """Content identity for cache keys: the log file's digest."""
    path = params.get("path")
    if not path:
        return None
    return {"scenario": "replay", **file_digest(path)}


TraceReplayScenario.content_fingerprint = staticmethod(_replay_fingerprint)


# -- CLI support -----------------------------------------------------------------


def replay_stats(rounds: Iterable[np.ndarray], top: int = 5) -> dict:
    """Summary statistics of a round sequence (for ``trace stats``)."""
    n_rounds = 0
    total = 0
    nonempty = 0
    sizes: "list[int]" = []
    counts: "dict[int, int]" = {}
    max_node = -1
    for requests in rounds:
        n_rounds += 1
        size = int(requests.size)
        sizes.append(size)
        total += size
        if size:
            nonempty += 1
            max_node = max(max_node, int(requests.max()))
            for node, count in zip(*np.unique(requests, return_counts=True)):
                counts[int(node)] = counts.get(int(node), 0) + int(count)
    busiest = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:top]
    return {
        "rounds": n_rounds,
        "total_requests": total,
        "nonempty_rounds": nonempty,
        "distinct_nodes": len(counts),
        "max_node": max_node,
        "requests_per_round": {
            "min": min(sizes) if sizes else 0,
            "max": max(sizes) if sizes else 0,
            "mean": round(total / n_rounds, 3) if n_rounds else 0.0,
        },
        "busiest_nodes": [{"node": node, "requests": count} for node, count in busiest],
    }
