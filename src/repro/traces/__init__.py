"""Production workloads: trace replay, bursty arrivals, streaming traces.

This package opens the scenario space beyond the paper's synthetic
generators in three directions, all through the same registry and spec
machinery as the built-in workloads:

* :mod:`repro.traces.replay` — replay external request logs (CSV / JSONL /
  saved ``.npz``) through deterministic node mapping (``"replay"``);
* :mod:`repro.traces.arrivals` — bursty arrival processes: gamma-modulated
  Poisson (``"gamma"``), flash-crowd cascades (``"flashcrowd"``) and
  correlated diurnal waves (``"diurnal"``);
* :mod:`repro.traces.streaming` — lazily generated traces with O(round)
  memory (``"streaming"``), enabling million-round horizons.
"""

from repro.traces.arrivals import (
    DiurnalWavesScenario,
    FlashCrowdScenario,
    GammaArrivalScenario,
)
from repro.traces.replay import (
    TraceReplayScenario,
    file_digest,
    iter_records,
    make_mapper,
    replay_stats,
    rounds_from_records,
)
from repro.traces.streaming import StreamingScenario, StreamingTrace

__all__ = [
    "DiurnalWavesScenario",
    "FlashCrowdScenario",
    "GammaArrivalScenario",
    "StreamingScenario",
    "StreamingTrace",
    "TraceReplayScenario",
    "file_digest",
    "iter_records",
    "make_mapper",
    "replay_stats",
    "rounds_from_records",
]
