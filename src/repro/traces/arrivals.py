"""Bursty arrival processes: beyond the paper's deterministic demand.

The paper's §V-A scenarios move demand around the substrate on a fixed
schedule; production request streams are *bursty* in time as well as in
space. This module adds three composable arrival-process scenarios — all
registered, all streaming, all layerable onto the commuter/time-zone
generators through the ``overlay`` combinator:

* :class:`GammaArrivalScenario` (``"gamma"``) — a doubly-stochastic
  (MMPP-style) process: the round intensity is redrawn from a Gamma
  distribution every ``burst_length`` rounds and requests are Poisson
  counts at that intensity, the standard way serving-system traces model
  burstiness via a coefficient of variation;
* :class:`FlashCrowdScenario` (``"flashcrowd"``) — rare events that ramp
  demand up at an epicenter, spread it over the nearest access points,
  decay multiplicatively, and can cascade into secondary crowds elsewhere;
* :class:`DiurnalWavesScenario` (``"diurnal"``) — multi-region daily
  waves: access points cluster around random region centers, each region
  follows a phase-offset sinusoid, and a shared per-day amplitude factor
  correlates the regions (a heavy day is heavy everywhere).

Every scenario implements ``stream`` (O(round) memory) and derives
``generate`` from it, so the two are bit-identical by construction and the
scenarios run equally under :class:`~repro.traces.streaming.StreamingTrace`
and materialised traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_scenario
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive, check_positive_int, check_probability

__all__ = [
    "GammaArrivalScenario",
    "FlashCrowdScenario",
    "DiurnalWavesScenario",
]


@register_scenario("gamma")
@dataclass
class GammaArrivalScenario:
    """Gamma-modulated Poisson arrivals (burstiness via a CV knob).

    Every ``burst_length`` rounds a new intensity is drawn from a Gamma
    distribution with mean ``rate`` and coefficient of variation ``cv``
    (shape ``1/cv²``, scale ``rate·cv²``); each round then sees a Poisson
    count of requests at the current intensity. ``cv → 0`` degenerates to
    plain Poisson arrivals at ``rate``; large ``cv`` produces heavy bursts
    separated by lulls.

    Args:
        substrate: substrate network.
        rate: mean requests per round.
        cv: coefficient of variation of the block intensity (> 0).
        burst_length: rounds between intensity redraws.
        concentration: when set, requests are placed over access points
            with Dirichlet(``concentration``) weights drawn once per trace
            (skewed spatial preference); uniform placement when ``None``.
    """

    substrate: Substrate
    rate: float = 10.0
    cv: float = 2.0
    burst_length: int = 10
    concentration: "float | None" = None
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        self.rate = check_positive("rate", self.rate)
        self.cv = check_positive("cv", self.cv)
        self.burst_length = check_positive_int("burst_length", self.burst_length)
        if self.concentration is not None:
            self.concentration = check_positive("concentration", self.concentration)
        self.scenario_name = (
            f"gamma(rate={self.rate:g},cv={self.cv:g},burst={self.burst_length})"
        )

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield gamma-modulated rounds lazily (same draws as generate)."""
        aps = self.substrate.access_points
        shape = 1.0 / (self.cv * self.cv)
        scale = self.rate * self.cv * self.cv
        weights = None
        if self.concentration is not None:
            weights = rng.dirichlet(np.full(aps.size, self.concentration))
        intensity = 0.0
        for t in range(horizon):
            if t % self.burst_length == 0:
                intensity = rng.gamma(shape, scale)
            count = int(rng.poisson(intensity))
            yield rng.choice(aps, size=count, p=weights).astype(np.int64)

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round gamma-arrival trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "gamma",
                "rate": self.rate,
                "cv": self.cv,
                "burst_length": self.burst_length,
                "concentration": self.concentration,
                "substrate": self.substrate.name,
            },
        )


@register_scenario("flashcrowd")
@dataclass
class FlashCrowdScenario:
    """Flash-crowd cascades on top of Poisson background traffic.

    Each round a new crowd starts with probability ``event_rate`` at a
    uniformly random epicenter access point. A crowd ramps linearly to
    ``peak`` extra requests per round over ``ramp`` rounds, spread over the
    ``spread`` access points nearest its epicenter (substrate distances),
    then decays multiplicatively by ``decay`` per round until it drops
    below one request. When a crowd finishes ramping it cascades with
    probability ``cascade``: a secondary crowd at half the peak starts at
    another random epicenter — the "slashdot effect" jumping mirrors.

    Args:
        substrate: substrate network.
        background_rate: mean background requests per round (uniform).
        event_rate: per-round probability of a new primary crowd.
        peak: requests per round a crowd adds at full ramp.
        ramp: rounds to reach the peak.
        decay: multiplicative per-round decay after the peak (in (0, 1)).
        spread: access points (nearest to the epicenter) sharing the crowd.
        cascade: probability a crowd spawns a half-peak secondary crowd.
    """

    substrate: Substrate
    background_rate: float = 5.0
    event_rate: float = 0.02
    peak: float = 50.0
    ramp: int = 5
    decay: float = 0.8
    spread: int = 3
    cascade: float = 0.25
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        self.background_rate = check_positive("background_rate", self.background_rate)
        self.event_rate = check_probability("event_rate", self.event_rate)
        self.peak = check_positive("peak", self.peak)
        self.ramp = check_positive_int("ramp", self.ramp)
        self.decay = check_probability("decay", self.decay)
        if self.decay == 0.0:
            raise ValueError("decay must be in (0, 1]")
        self.spread = check_positive_int("spread", self.spread)
        self.cascade = check_probability("cascade", self.cascade)
        self.scenario_name = (
            f"flashcrowd(peak={self.peak:g},ramp={self.ramp},"
            f"p={self.event_rate:g})"
        )

    def _crowd_sites(self, epicenter: int) -> np.ndarray:
        """The ``spread`` access points nearest ``epicenter`` (itself first)."""
        aps = self.substrate.access_points
        distances = self.substrate.distances[epicenter, aps]
        order = np.argsort(distances, kind="stable")
        return aps[order[: min(self.spread, aps.size)]]

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield flash-crowd rounds lazily (same draws as generate)."""
        aps = self.substrate.access_points
        # Active crowds: [sites, peak, age]; age counts rounds since start.
        crowds: "list[list]" = []
        for _t in range(horizon):
            requests = [rng.choice(aps, size=int(rng.poisson(self.background_rate)))]
            if rng.random() < self.event_rate:
                epicenter = int(rng.choice(aps))
                crowds.append([self._crowd_sites(epicenter), self.peak, 0])
            surviving: "list[list]" = []
            spawned: "list[list]" = []
            for crowd in crowds:
                sites, peak, age = crowd
                if age < self.ramp:
                    intensity = peak * (age + 1) / self.ramp
                else:
                    intensity = peak * self.decay ** (age - self.ramp)
                count = int(rng.poisson(intensity))
                if count:
                    requests.append(rng.choice(sites, size=count))
                if age + 1 == self.ramp and rng.random() < self.cascade:
                    secondary = int(rng.choice(aps))
                    spawned.append([self._crowd_sites(secondary), peak / 2.0, 0])
                crowd[2] = age + 1
                if intensity >= 1.0:
                    surviving.append(crowd)
            crowds = surviving + spawned
            yield np.concatenate(requests).astype(np.int64, copy=False)

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round flash-crowd trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "flashcrowd",
                "background_rate": self.background_rate,
                "event_rate": self.event_rate,
                "peak": self.peak,
                "ramp": self.ramp,
                "decay": self.decay,
                "spread": self.spread,
                "cascade": self.cascade,
                "substrate": self.substrate.name,
            },
        )


@register_scenario("diurnal")
@dataclass
class DiurnalWavesScenario:
    """Correlated multi-region diurnal demand waves.

    ``n_regions`` region centers are drawn uniformly from the access
    points; every access point joins its nearest center (substrate
    distances), partitioning the edge into regions. Region ``i`` follows a
    sinusoidal daily rate with phase offset ``i/n_regions`` of a day —
    evening in one region overlaps morning in the next, the §II-D
    time-zone effect as a stochastic process. A per-day amplitude factor
    (Gamma with mean 1 and CV ``day_cv``), shared by *all* regions,
    correlates them: a heavy day is heavy everywhere.

    Args:
        substrate: substrate network.
        n_regions: number of regions (phase-offset waves).
        day_length: rounds per day.
        rate: mean requests per round per region at wave midpoint.
        amplitude: relative swing of the sinusoid (in [0, 1]).
        day_cv: coefficient of variation of the shared per-day factor;
            0 disables day-to-day variation.
    """

    substrate: Substrate
    n_regions: int = 3
    day_length: int = 24
    rate: float = 5.0
    amplitude: float = 0.8
    day_cv: float = 0.3
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        self.n_regions = check_positive_int("n_regions", self.n_regions)
        self.day_length = check_positive_int("day_length", self.day_length)
        self.rate = check_positive("rate", self.rate)
        self.amplitude = check_probability("amplitude", self.amplitude)
        if self.day_cv < 0:
            raise ValueError(f"day_cv must be >= 0, got {self.day_cv}")
        self.scenario_name = (
            f"diurnal(regions={self.n_regions},day={self.day_length})"
        )

    def _partition(self, rng: np.random.Generator) -> "list[np.ndarray]":
        """Access points grouped by nearest region center (every region
        keeps at least its own center)."""
        aps = self.substrate.access_points
        n_regions = min(self.n_regions, aps.size)
        centers = rng.choice(aps, size=n_regions, replace=False)
        distances = self.substrate.distances[np.ix_(centers, aps)]
        nearest = np.argmin(distances, axis=0)
        return [aps[nearest == r] for r in range(n_regions)]

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield diurnal rounds lazily (same draws as generate)."""
        regions = self._partition(rng)
        day_shape = None
        if self.day_cv > 0:
            day_shape = 1.0 / (self.day_cv * self.day_cv)
        day_factor = 1.0
        for t in range(horizon):
            if t % self.day_length == 0 and day_shape is not None:
                # One draw per day, shared by all regions (the correlation).
                day_factor = rng.gamma(day_shape, 1.0 / day_shape)
            requests = []
            for r, members in enumerate(regions):
                phase = 2.0 * np.pi * (
                    t / self.day_length - r / len(regions)
                )
                wave = 1.0 + self.amplitude * np.sin(phase)
                count = int(rng.poisson(self.rate * day_factor * max(wave, 0.0)))
                if count:
                    requests.append(rng.choice(members, size=count))
            if requests:
                yield np.concatenate(requests).astype(np.int64, copy=False)
            else:
                yield np.empty(0, dtype=np.int64)

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round diurnal-waves trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "diurnal",
                "n_regions": self.n_regions,
                "day_length": self.day_length,
                "rate": self.rate,
                "amplitude": self.amplitude,
                "day_cv": self.day_cv,
                "substrate": self.substrate.name,
            },
        )
