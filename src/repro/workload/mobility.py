"""The on/off user-mobility model sketched in §II-D.

The paper motivates its request dynamics with user mobility: a user appears
at an access point ``a1`` at time ``t``, stays for a period ``Δt``, then
jumps to *another arbitrary node* — movements need not follow substrate
links because geography does not map onto the topology. It also suggests
correlation between users ("workers commute downtown in the morning").

:class:`MobilityScenario` implements that model directly as an extension
workload (used by the ablation benchmarks): a fixed population of users,
each issuing one request per round from its current access point; sojourn
times are geometric with the configured mean; on a jump, a user moves to the
current *attractor* access point with probability ``correlation`` and to a
uniformly random access point otherwise. The attractor itself performs a
slow random walk over the access points, changing every ``attractor_period``
rounds — the knob between i.i.d. churn (correlation 0) and a coherent
crowd (correlation 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_scenario
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive, check_positive_int, check_probability

__all__ = ["MobilityScenario"]


@register_scenario("mobility")
@dataclass
class MobilityScenario:
    """On/off mobility demand generator (§II-D extension).

    Args:
        substrate: substrate network.
        n_users: population size (requests per round).
        mean_sojourn: mean rounds a user stays at one access point; sojourns
            are geometric, so ``1/mean_sojourn`` is the per-round move
            probability.
        correlation: probability that a moving user heads to the current
            attractor access point rather than a uniform one.
        attractor_period: rounds between attractor relocations.
    """

    substrate: Substrate
    n_users: int = 20
    mean_sojourn: float = 10.0
    correlation: float = 0.5
    attractor_period: int = 50
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        self.n_users = check_positive_int("n_users", self.n_users)
        self.mean_sojourn = check_positive("mean_sojourn", self.mean_sojourn)
        if self.mean_sojourn < 1.0:
            raise ValueError(
                f"mean_sojourn must be >= 1 round, got {self.mean_sojourn}"
            )
        self.correlation = check_probability("correlation", self.correlation)
        self.attractor_period = check_positive_int(
            "attractor_period", self.attractor_period
        )
        self.scenario_name = (
            f"mobility(users={self.n_users},Δt={self.mean_sojourn:g},"
            f"corr={self.correlation:g})"
        )

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield mobility rounds lazily (same draws as :meth:`generate`)."""
        aps = self.substrate.access_points
        move_probability = 1.0 / self.mean_sojourn
        positions = rng.choice(aps, size=self.n_users)
        attractor = int(rng.choice(aps))

        for t in range(horizon):
            if t > 0 and t % self.attractor_period == 0:
                attractor = int(rng.choice(aps))
            movers = rng.random(self.n_users) < move_probability
            n_movers = int(movers.sum())
            if n_movers:
                to_attractor = rng.random(n_movers) < self.correlation
                destinations = rng.choice(aps, size=n_movers)
                destinations[to_attractor] = attractor
                positions = positions.copy()
                positions[movers] = destinations
            yield positions.copy()

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round mobility trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "mobility",
                "n_users": self.n_users,
                "mean_sojourn": self.mean_sojourn,
                "correlation": self.correlation,
                "attractor_period": self.attractor_period,
                "substrate": self.substrate.name,
            },
        )
