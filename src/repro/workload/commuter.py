"""The commuter scenario of §V-A: demand fanning out from the network center.

Models commuters travelling downtown for work in the morning and back to the
suburbs in the evening. A day consists of ``T`` phases of ``sojourn`` rounds
each (the paper's λ). During phase ``i`` the requests originate from
``2^s(i)`` access points *around the network center* (always including the
center itself), where the fan-out step

* rises ``s(i) = i`` for ``i ≤ T/2`` — the morning spread reaching
  ``2^(T/2)`` access points at midday — and
* falls ``s(i) = T − i`` afterwards, returning to a single access point
  (the center) when the next day starts.

The paper writes the request count as "2t mod T"; we read the exponent
interpretation ``2^(t mod T)`` since the text pins both endpoints to powers
of two ("single requests originate from 2^(T/2) access points"); see
DESIGN.md §3.

Two load variants (§V-A):

* **static** — the total demand is pinned to ``2^(T/2)`` requests per round,
  split evenly over the active access points (``2^(T/2−s)`` each);
* **dynamic** — one request per active access point, so the volume itself
  swings between 1 and ``2^(T/2)``.

"Around the center" is realised by ranking the substrate's access points by
latency from the network center and using the closest ``2^s`` of them;
equidistant access points are shuffled once per generated trace so different
seeds see different suburb orderings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_scenario
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive_int

__all__ = ["CommuterScenario", "default_period_for"]


def default_period_for(n: int) -> int:
    """The paper's size-coupled day length: ``T(n) = 2·(⌊log2 n⌋ − 2)``.

    Matches the caption triples (n=1000, T=14), (n=500, T=12),
    (n=200, T=10); clamped below at ``T = 2``.
    """
    n = check_positive_int("n", n)
    return max(2, 2 * (int(math.log2(n)) - 2))


@register_scenario("commuter", aliases=("commuter-dynamic",))
@dataclass
class CommuterScenario:
    """Commuter demand generator (static or dynamic load).

    Args:
        substrate: substrate network; provides the center and distances.
        period: the day length ``T`` in phases (even, ≥ 2). ``None`` selects
            the paper's size-coupled default :func:`default_period_for`.
        sojourn: rounds per phase (the paper's λ between ``ti`` and
            ``ti+1``).
        dynamic_load: ``True`` for the dynamic-load variant (volume follows
            the fan-out), ``False`` for static load (volume pinned to
            ``2^(T/2)``).
    """

    substrate: Substrate
    period: "int | None" = None
    sojourn: int = 10
    dynamic_load: bool = True
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if self.period is None:
            self.period = default_period_for(self.substrate.n)
        self.period = check_positive_int("period", self.period)
        if self.period % 2 != 0:
            raise ValueError(f"period T must be even, got {self.period}")
        self.sojourn = check_positive_int("sojourn", self.sojourn)
        variant = "dynamic" if self.dynamic_load else "static"
        self.scenario_name = f"commuter-{variant}(T={self.period},λ={self.sojourn})"

    # -- structure helpers -------------------------------------------------------

    @property
    def peak_demand(self) -> int:
        """The midday volume scale ``2^(T/2)`` (requests for static load)."""
        return 1 << (self.period // 2)

    @property
    def peak_access_points(self) -> int:
        """Access points used at midday: ``2^(T/2)``, saturating at ``|A|``.

        On substrates with fewer than ``2^(T/2)`` access points (the paper's
        T-sweeps on 5-node graphs, Figures 18-19) the fan-out saturates: all
        access points are in use and — for static load — the pinned volume
        is spread as evenly as possible across them.
        """
        return min(self.peak_demand, int(self.substrate.access_points.size))

    @property
    def day_length(self) -> int:
        """Rounds per day: ``T · sojourn``."""
        return self.period * self.sojourn

    def fanout_step(self, t: int) -> int:
        """The exponent ``s`` of the round's fan-out (``2^s`` access points)."""
        phase = (t // self.sojourn) % self.period
        half = self.period // 2
        return phase if phase <= half else self.period - phase

    def requests_in_round(self, t: int) -> int:
        """Demand volume of round ``t`` (before any access-point split)."""
        if self.dynamic_load:
            return min(1 << self.fanout_step(t), self.peak_access_points)
        return self.peak_demand

    # -- generation -----------------------------------------------------------

    def _center_ordering(self, rng: np.random.Generator) -> np.ndarray:
        """Access points sorted by distance from the center, random ties.

        The center (or, if the center is not an access point, the access
        point closest to it) always comes first, matching "including the
        network center".
        """
        aps = self.substrate.access_points
        distances = self.substrate.distances[self.substrate.center, aps]
        jitter = rng.random(aps.size)  # tie-breaks equidistant access points
        order = np.lexsort((jitter, distances))
        return aps[order]

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield commuter rounds lazily (same draws as :meth:`generate`)."""
        ordering = self._center_ordering(rng)
        volume = self.peak_demand
        cap = self.peak_access_points
        for t in range(horizon):
            step = self.fanout_step(t)
            points = ordering[: min(1 << step, cap)]
            if self.dynamic_load:
                yield points.copy()
            else:
                # 2^(T/2) requests split as evenly as possible (exactly
                # 2^(T/2-s) each below saturation).
                counts = np.full(points.size, volume // points.size, dtype=np.int64)
                counts[: volume % points.size] += 1
                yield np.repeat(points, counts)

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round commuter trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "commuter",
                "dynamic_load": self.dynamic_load,
                "period": self.period,
                "sojourn": self.sojourn,
                "peak_access_points": self.peak_access_points,
                "peak_demand": self.peak_demand,
                "substrate": self.substrate.name,
            },
        )


@register_scenario("commuter-static")
def commuter_static(substrate: Substrate, **params) -> CommuterScenario:
    """The static-load commuter variant as a registry factory."""
    return CommuterScenario(substrate, dynamic_load=False, **params)
