"""Composing demand scenarios: overlays and time-phased mixtures.

Real services rarely see one clean pattern; §II-D's sources of dynamics
(time-zone effects *and* user mobility) coexist. These combinators build
richer demand out of the primitive generators without touching them:

* :class:`OverlayScenario` — the union of several generators' rounds
  (e.g. a commuter surge *on top of* diffuse background traffic);
* :class:`PhasedScenario` — switch generators at fixed round boundaries
  (e.g. a flash-crowd regime between two quiet regimes), for studying how
  quickly the online algorithms re-converge after a regime change.

Both are themselves :class:`~repro.workload.base.RequestGenerator`
implementations, so they compose recursively and run through
``generate_trace`` like any primitive scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.api.registry import register_scenario
from repro.workload.base import RequestGenerator, Trace, stream_rounds

__all__ = ["OverlayScenario", "PhasedScenario", "overlay"]


@dataclass
class OverlayScenario:
    """Union of several scenarios' demand, round by round.

    Args:
        parts: the generators to overlay (at least one). Each receives its
            own independent child RNG derived from the generate() stream, so
            an overlay is reproducible and its parts are decoupled.
    """

    parts: Sequence[RequestGenerator]
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("OverlayScenario needs at least one part")
        names = "+".join(getattr(p, "scenario_name", type(p).__name__)
                         for p in self.parts)
        self.scenario_name = f"overlay({names})"

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield overlaid rounds lazily.

        Each part streams against its own spawned child generator (the same
        children :meth:`generate` spawns), so the yielded rounds are
        bit-identical to the materialised ones while holding only one round
        per part in memory.
        """
        children = rng.spawn(len(self.parts))
        streams = [
            stream_rounds(part, horizon, child)
            for part, child in zip(self.parts, children)
        ]
        for per_part in zip(*streams):
            yield np.concatenate(per_part)

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Generate all parts and concatenate their rounds element-wise."""
        children = rng.spawn(len(self.parts))
        traces = [
            part.generate(horizon, child)
            for part, child in zip(self.parts, children)
        ]
        rounds = []
        for t in range(horizon):
            rounds.append(np.concatenate([trace[t] for trace in traces]))
        return Trace(
            tuple(rounds),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "overlay",
                "parts": [trace.metadata for trace in traces],
            },
        )


@dataclass
class PhasedScenario:
    """Sequential regimes: one generator per time segment.

    Args:
        phases: (duration_rounds, generator) pairs; the final phase absorbs
            any remaining horizon, and generation stops early if the horizon
            ends sooner.
    """

    phases: Sequence[tuple[int, RequestGenerator]]
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("PhasedScenario needs at least one phase")
        for duration, _part in self.phases:
            if duration < 1:
                raise ValueError(f"phase durations must be >= 1, got {duration}")
        names = ",".join(
            f"{d}x{getattr(p, 'scenario_name', type(p).__name__)}"
            for d, p in self.phases
        )
        self.scenario_name = f"phased({names})"

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield phased rounds lazily (same child spawning as generate)."""
        children = rng.spawn(len(self.phases))
        remaining = horizon
        for i, ((duration, part), child) in enumerate(zip(self.phases, children)):
            if remaining <= 0:
                break
            is_last = i == len(self.phases) - 1
            span = remaining if is_last else min(duration, remaining)
            yield from stream_rounds(part, span, child)
            remaining -= span

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Generate each phase with its own child RNG and stitch them."""
        children = rng.spawn(len(self.phases))
        rounds: list[np.ndarray] = []
        remaining = horizon
        for i, ((duration, part), child) in enumerate(zip(self.phases, children)):
            if remaining <= 0:
                break
            is_last = i == len(self.phases) - 1
            span = remaining if is_last else min(duration, remaining)
            trace = part.generate(span, child)
            rounds.extend(trace.rounds)
            remaining -= span
        return Trace(
            tuple(rounds),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "phased",
                "phases": [d for d, _p in self.phases],
            },
        )


def _part_spec(part) -> "tuple[str, dict]":
    """Normalise one ``overlay`` part param: ``"kind"`` or ``{kind, params}``."""
    if isinstance(part, str):
        return part, {}
    if isinstance(part, Mapping):
        extra = sorted(set(part) - {"kind", "params"})
        if "kind" not in part or extra:
            raise ValueError(
                f"overlay part {dict(part)!r} must be {{'kind': ..., "
                f"'params': {{...}}}}; unknown keys {extra}"
            )
        return str(part["kind"]), dict(part.get("params") or {})
    raise ValueError(
        f"overlay part must be a scenario name or a kind/params mapping, "
        f"got {part!r}"
    )


@register_scenario("overlay")
def overlay(substrate, parts=()):
    """Layer registered scenarios from a spec: ``overlay`` as a factory.

    ``parts`` is a sequence of scenario names or ``{"kind": ..., "params":
    {...}}`` mappings (JSON-safe, so an overlay is expressible as a
    :class:`~repro.api.specs.ScenarioSpec` and from the CLI). Each part is
    resolved through the scenario registry and built on ``substrate``; the
    result is an :class:`OverlayScenario`, so bursty arrival processes layer
    onto the commuter/time-zone generators declaratively::

        ScenarioSpec("overlay", {"parts": [
            {"kind": "commuter", "params": {"sojourn": 10}},
            {"kind": "flashcrowd", "params": {"peak": 60}},
        ]})
    """
    from repro.api.registry import resolve_scenario

    specs = [_part_spec(part) for part in parts]
    if not specs:
        raise ValueError("overlay needs at least one part scenario")
    return OverlayScenario(
        [resolve_scenario(kind)(substrate, **params) for kind, params in specs]
    )


def _overlay_fingerprint(params) -> "list | None":
    """Delegate content fingerprints to file-backed parts (e.g. replay)."""
    from repro.api.cache import scenario_content_fingerprint

    extras = []
    for part in params.get("parts", ()) or ():
        try:
            kind, part_params = _part_spec(part)
        except ValueError:
            continue  # a malformed spec fails loudly at build time instead
        entry = scenario_content_fingerprint(kind, part_params)
        if entry is not None:
            extras.append(entry)
    return extras or None


overlay.content_fingerprint = _overlay_fingerprint
