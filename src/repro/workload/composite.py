"""Composing demand scenarios: overlays and time-phased mixtures.

Real services rarely see one clean pattern; §II-D's sources of dynamics
(time-zone effects *and* user mobility) coexist. These combinators build
richer demand out of the primitive generators without touching them:

* :class:`OverlayScenario` — the union of several generators' rounds
  (e.g. a commuter surge *on top of* diffuse background traffic);
* :class:`PhasedScenario` — switch generators at fixed round boundaries
  (e.g. a flash-crowd regime between two quiet regimes), for studying how
  quickly the online algorithms re-converge after a regime change.

Both are themselves :class:`~repro.workload.base.RequestGenerator`
implementations, so they compose recursively and run through
``generate_trace`` like any primitive scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.workload.base import RequestGenerator, Trace

__all__ = ["OverlayScenario", "PhasedScenario"]


@dataclass
class OverlayScenario:
    """Union of several scenarios' demand, round by round.

    Args:
        parts: the generators to overlay (at least one). Each receives its
            own independent child RNG derived from the generate() stream, so
            an overlay is reproducible and its parts are decoupled.
    """

    parts: Sequence[RequestGenerator]
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("OverlayScenario needs at least one part")
        names = "+".join(getattr(p, "scenario_name", type(p).__name__)
                         for p in self.parts)
        self.scenario_name = f"overlay({names})"

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Generate all parts and concatenate their rounds element-wise."""
        children = rng.spawn(len(self.parts))
        traces = [
            part.generate(horizon, child)
            for part, child in zip(self.parts, children)
        ]
        rounds = []
        for t in range(horizon):
            rounds.append(np.concatenate([trace[t] for trace in traces]))
        return Trace(
            tuple(rounds),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "overlay",
                "parts": [trace.metadata for trace in traces],
            },
        )


@dataclass
class PhasedScenario:
    """Sequential regimes: one generator per time segment.

    Args:
        phases: (duration_rounds, generator) pairs; the final phase absorbs
            any remaining horizon, and generation stops early if the horizon
            ends sooner.
    """

    phases: Sequence[tuple[int, RequestGenerator]]
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("PhasedScenario needs at least one phase")
        for duration, _part in self.phases:
            if duration < 1:
                raise ValueError(f"phase durations must be >= 1, got {duration}")
        names = ",".join(
            f"{d}x{getattr(p, 'scenario_name', type(p).__name__)}"
            for d, p in self.phases
        )
        self.scenario_name = f"phased({names})"

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Generate each phase with its own child RNG and stitch them."""
        children = rng.spawn(len(self.phases))
        rounds: list[np.ndarray] = []
        remaining = horizon
        for i, ((duration, part), child) in enumerate(zip(self.phases, children)):
            if remaining <= 0:
                break
            is_last = i == len(self.phases) - 1
            span = remaining if is_last else min(duration, remaining)
            trace = part.generate(span, child)
            rounds.extend(trace.rounds)
            remaining -= span
        return Trace(
            tuple(rounds),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "phased",
                "phases": [d for d, _p in self.phases],
            },
        )
