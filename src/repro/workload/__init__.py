"""Demand scenarios and request traces (§II-D, §V-A).

The paper evaluates on two synthetic demand families — time-zone effects
and commuter movements — because real traffic patterns are confidential.
Both are implemented here as deterministic trace generators, plus the
§II-D on/off mobility model as an extension.
"""

from repro.workload.base import (
    RequestGenerator,
    RoundIterable,
    Trace,
    as_trace,
    generate_trace,
    stream_rounds,
)
from repro.workload.commuter import CommuterScenario, default_period_for
from repro.workload.composite import OverlayScenario, PhasedScenario
from repro.workload.mobility import MobilityScenario
from repro.workload.timezones import TimeZoneScenario

__all__ = [
    "Trace",
    "RequestGenerator",
    "RoundIterable",
    "as_trace",
    "generate_trace",
    "stream_rounds",
    "CommuterScenario",
    "default_period_for",
    "OverlayScenario",
    "PhasedScenario",
    "MobilityScenario",
    "TimeZoneScenario",
]
