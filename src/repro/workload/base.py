"""Request model: traces of per-round request multisets (§II-D, §II-E).

A round's demand ``σt`` is a multiset of requests, each arriving at an
access-point node. Since all servers host the same service in this model,
a request is fully described by its access point, so a round is simply an
``int64`` array of node indices (duplicates = multiple requests at that
point) and a :class:`Trace` is the whole request sequence.

Materialised traces are what both worlds consume: online algorithms read
them round by round, offline algorithms (OPT, OFFSTAT, OFFBR/OFFTH) get the
whole object — the paper's "demand known ahead of time" standpoint (§IV).

:class:`RequestGenerator` is the protocol every scenario implements;
generators are deterministic given their RNG, so a (seed, scenario) pair
pins the exact trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Trace",
    "RequestGenerator",
    "RoundIterable",
    "as_trace",
    "generate_trace",
    "stream_rounds",
]


def _npz_path(path: "str | Path") -> Path:
    """``path`` with the ``.npz`` suffix ``np.savez`` would give it anyway.

    ``np.savez`` silently appends ``.npz`` when the suffix is missing, so a
    ``Trace.load`` on the very path the caller passed to ``save`` used to
    fail; normalising in both directions makes the pair symmetric.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


@dataclass(frozen=True)
class Trace:
    """An immutable request sequence: one node-index array per round.

    Attributes:
        rounds: tuple of read-only ``int64`` arrays; ``rounds[t]`` holds the
            access point of every request of round ``t``.
        scenario_name: label of the generating scenario (for reports).
        metadata: scenario parameters recorded for provenance.
    """

    rounds: tuple[np.ndarray, ...]
    scenario_name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        frozen_rounds = []
        for t, arr in enumerate(self.rounds):
            arr = np.asarray(arr, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError(f"round {t} must be a 1-D array, got shape {arr.shape}")
            if arr.size and arr.min() < 0:
                raise ValueError(f"round {t} contains negative node indices")
            arr = arr.copy()
            arr.flags.writeable = False
            frozen_rounds.append(arr)
        object.__setattr__(self, "rounds", tuple(frozen_rounds))

    # -- sequence protocol ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.rounds)

    def __getitem__(self, t: int) -> np.ndarray:
        return self.rounds[t]

    # -- summary statistics -----------------------------------------------------

    def _memo(self, name: str, compute) -> int:
        """Compute-once statistics on a frozen dataclass.

        ``max_node``/``total_requests`` sit on the simulator's validation
        hot path and used to re-scan every round on each access; the rounds
        are immutable, so the first computed value is final.
        """
        cached = self.__dict__.get(name)
        if cached is None:
            cached = compute()
            object.__setattr__(self, name, cached)
        return cached

    @property
    def total_requests(self) -> int:
        """Number of requests over the whole trace (computed once)."""
        return self._memo(
            "_total_requests",
            lambda: int(sum(arr.size for arr in self.rounds)),
        )

    @property
    def max_requests_per_round(self) -> int:
        """Largest round size (the demand peak)."""
        return max((arr.size for arr in self.rounds), default=0)

    @property
    def max_node(self) -> int:
        """Largest node index referenced; -1 for an all-empty trace.

        Computed once per trace: simulate() checks it on every run and the
        rounds cannot change.
        """
        return self._memo(
            "_max_node",
            lambda: max(
                (int(arr.max()) for arr in self.rounds if arr.size), default=-1
            ),
        )

    def requests_per_round(self) -> np.ndarray:
        """Round-size series, shape ``(len(trace),)``."""
        return np.asarray([arr.size for arr in self.rounds], dtype=np.int64)

    def node_histogram(self, n_nodes: int) -> np.ndarray:
        """Total request count per node over the whole trace.

        One ``np.bincount`` over the concatenated flat request array instead
        of a per-round bincount loop — O(requests + n_nodes) regardless of
        the round count.
        """
        if self.max_node >= n_nodes:
            raise ValueError(
                f"trace references node {self.max_node} >= n_nodes={n_nodes}"
            )
        if not self.rounds:
            return np.zeros(n_nodes, dtype=np.int64)
        flat = np.concatenate(self.rounds)
        return np.bincount(flat, minlength=n_nodes).astype(np.int64, copy=False)

    # -- slicing & composition ----------------------------------------------------

    def window(self, start: int, stop: int) -> "Trace":
        """Sub-trace of rounds ``[start, stop)`` (epoch replay uses this)."""
        if not 0 <= start <= stop <= len(self.rounds):
            raise ValueError(
                f"invalid window [{start}, {stop}) for a {len(self.rounds)}-round trace"
            )
        return Trace(self.rounds[start:stop], self.scenario_name, dict(self.metadata))

    def concat(self, other: "Trace") -> "Trace":
        """Concatenate two traces in time."""
        return Trace(
            self.rounds + other.rounds,
            self.scenario_name or other.scenario_name,
            {**other.metadata, **self.metadata},
        )

    # -- persistence -----------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Serialise to ``.npz`` (flat request array + round offsets + metadata).

        The suffix is normalised to ``.npz`` (matching what ``np.savez``
        writes regardless); the actual path written is returned so callers
        can hand it straight to :meth:`load`.
        """
        path = _npz_path(path)
        flat = (
            np.concatenate([arr for arr in self.rounds])
            if self.rounds
            else np.zeros(0, dtype=np.int64)
        )
        sizes = np.asarray([arr.size for arr in self.rounds], dtype=np.int64)
        header = json.dumps(
            {"scenario_name": self.scenario_name, "metadata": self.metadata}
        )
        np.savez(path, flat=flat, sizes=sizes, header=np.asarray(header))
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "Trace":
        """Load a trace produced by :meth:`save`.

        Accepts the path exactly as the caller passed it to :meth:`save`:
        a missing ``.npz`` suffix is appended when the literal path does not
        exist (mirroring the ``np.savez`` behaviour that appended it on
        write).
        """
        path = Path(path)
        if not path.exists():
            path = _npz_path(path)
        with np.load(path, allow_pickle=False) as data:
            flat = data["flat"]
            sizes = data["sizes"]
            header = json.loads(str(data["header"]))
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        rounds = tuple(
            flat[offsets[i]: offsets[i + 1]] for i in range(sizes.size)
        )
        return cls(rounds, header["scenario_name"], header["metadata"])


@runtime_checkable
class RequestGenerator(Protocol):
    """Protocol for demand scenarios: deterministic trace factories.

    Scenarios may additionally implement an *optional* ``stream(horizon,
    rng)`` method yielding one round array at a time with the exact RNG
    consumption order of ``generate`` — :func:`stream_rounds` prefers it and
    :class:`~repro.traces.StreamingTrace` builds on it to run million-round
    horizons in O(round) memory. Scenarios without ``stream`` still work
    everywhere; the streaming layer falls back to materialising.
    """

    #: Scenario label used in trace metadata and reports.
    scenario_name: str

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round trace using ``rng`` for all randomness."""


@runtime_checkable
class RoundIterable(Protocol):
    """What the simulator actually consumes: a sized iterable of rounds.

    Both :class:`Trace` (materialised, re-iterable tuple) and
    :class:`~repro.traces.StreamingTrace` (lazy, re-iterable from a stored
    seed) satisfy this; ``scenario_name`` rides along for ledger labels.
    """

    scenario_name: str

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[np.ndarray]: ...


def generate_trace(
    generator: RequestGenerator,
    horizon: int,
    seed: "int | np.random.Generator | None" = None,
) -> Trace:
    """Convenience wrapper: seed handling + sanity checks around ``generate``."""
    from repro.util.rng import ensure_rng

    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    trace = generator.generate(horizon, ensure_rng(seed))
    if len(trace) != horizon:
        raise RuntimeError(
            f"{type(generator).__name__}.generate returned {len(trace)} rounds, "
            f"expected {horizon}"
        )
    return trace


def stream_rounds(
    generator: RequestGenerator, horizon: int, rng: np.random.Generator
) -> Iterator[np.ndarray]:
    """Yield ``generator``'s rounds one at a time.

    Uses the scenario's lazy ``stream`` method when it has one (O(round)
    memory); otherwise falls back to materialising the whole trace through
    ``generate`` and iterating it. Either way the yielded rounds are
    bit-identical to ``generate(horizon, rng)`` with the same RNG state —
    stream-capable scenarios implement ``generate`` *in terms of* their
    stream, so the draws happen in the same order.
    """
    stream = getattr(generator, "stream", None)
    if stream is not None:
        yield from stream(horizon, rng)
    else:
        yield from generator.generate(horizon, rng)


def as_trace(rounds: "RoundIterable | Trace") -> Trace:
    """Materialise any round-iterable into a :class:`Trace`.

    A :class:`Trace` passes through unchanged; anything else (e.g. a
    :class:`~repro.traces.StreamingTrace`) is fully iterated — this is the
    O(trace)-memory step offline policies declare they need (see
    :class:`~repro.core.policy.OfflinePolicy`).
    """
    if isinstance(rounds, Trace):
        return rounds
    materialize = getattr(rounds, "materialize", None)
    if materialize is not None:
        return materialize()
    return Trace(
        tuple(rounds),
        scenario_name=getattr(rounds, "scenario_name", ""),
        metadata=dict(getattr(rounds, "metadata", {}) or {}),
    )
