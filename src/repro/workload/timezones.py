"""The time zones scenario of §V-A: a wandering daily hotspot.

Models global daytime effects: users from different regions access the
service at different times of the day. A day is divided into ``T`` periods;
each period ``i`` has a fixed *hotspot* access point (chosen uniformly at
random once, then reused every day — "we assume that these locations are the
same each day"). While period ``i`` is in effect, ``p%`` of each round's
requests originate at hotspot ``i`` and the rest is background traffic from
access points chosen uniformly at random, fresh every round.

The sojourn time τ at a hotspot is constant (the paper's λ in the Figure 10
and 17 captions), so a day lasts ``T · sojourn`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_scenario
from repro.topology.substrate import Substrate
from repro.workload.base import Trace
from repro.util.validation import check_positive_int, check_probability

__all__ = ["TimeZoneScenario"]


@register_scenario("timezones", aliases=("time-zones",))
@dataclass
class TimeZoneScenario:
    """Time-zone demand generator.

    Args:
        substrate: substrate network (its access points host the demand).
        period: periods per day ``T``.
        sojourn: rounds per period (the constant sojourn time τ / caption λ).
        hotspot_share: fraction ``p`` of each round's requests pinned to the
            period's hotspot (the paper uses p = 50%).
        requests_per_round: total demand volume per round. The paper leaves
            this open for most figures (Figure 17 fixes 3/round); 10 is our
            documented default.
    """

    substrate: Substrate
    period: int = 10
    sojourn: int = 10
    hotspot_share: float = 0.5
    requests_per_round: int = 10
    scenario_name: str = field(init=False)

    def __post_init__(self) -> None:
        self.period = check_positive_int("period", self.period)
        self.sojourn = check_positive_int("sojourn", self.sojourn)
        self.hotspot_share = check_probability("hotspot_share", self.hotspot_share)
        self.requests_per_round = check_positive_int(
            "requests_per_round", self.requests_per_round
        )
        self.scenario_name = (
            f"timezones(T={self.period},λ={self.sojourn},"
            f"p={self.hotspot_share:.0%},R={self.requests_per_round})"
        )

    @property
    def day_length(self) -> int:
        """Rounds per day: ``T · sojourn``."""
        return self.period * self.sojourn

    @property
    def hotspot_requests(self) -> int:
        """Requests per round pinned to the current hotspot."""
        return int(round(self.hotspot_share * self.requests_per_round))

    def period_of(self, t: int) -> int:
        """Index of the active period (and thus hotspot) in round ``t``."""
        return (t // self.sojourn) % self.period

    def stream(self, horizon: int, rng: np.random.Generator):
        """Yield time-zone rounds lazily (same draws as :meth:`generate`)."""
        aps = self.substrate.access_points
        # One hotspot per period, drawn once and reused every day.
        hotspots = rng.choice(aps, size=self.period, replace=aps.size < self.period)
        n_hot = self.hotspot_requests
        n_background = self.requests_per_round - n_hot

        for t in range(horizon):
            hotspot = hotspots[self.period_of(t)]
            pinned = np.full(n_hot, hotspot, dtype=np.int64)
            background = rng.choice(aps, size=n_background)
            yield np.concatenate([pinned, background])

    def generate(self, horizon: int, rng: np.random.Generator) -> Trace:
        """Produce a ``horizon``-round time-zone trace."""
        return Trace(
            tuple(self.stream(horizon, rng)),
            scenario_name=self.scenario_name,
            metadata={
                "scenario": "timezones",
                "period": self.period,
                "sojourn": self.sojourn,
                "hotspot_share": self.hotspot_share,
                "requests_per_round": self.requests_per_round,
                "substrate": self.substrate.name,
            },
        )
