"""Demand-dynamics metrics: quantifying *how dynamic* a trace actually is.

The paper's central message is that flexibility pays off at *moderate*
dynamics. These metrics make "dynamics" measurable for any trace, so
experiments can be read against the demand's actual behaviour instead of
the generator parameter λ alone:

* :func:`churn` — fraction of demand mass that changes access point per
  round (0 = frozen, →1 = completely reshuffled every round);
* :func:`spatial_spread` — average latency from the demand to its
  per-round barycentre node (how far apart concurrent requests are);
* :func:`hotspot_dwell` — mean number of consecutive rounds the modal
  access point stays the same (the effective sojourn time).

All metrics are deterministic functions of (trace, substrate) and are used
by the mobility/correlation ablation and the analysis tests.
"""

from __future__ import annotations

import numpy as np

from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = ["churn", "spatial_spread", "hotspot_dwell"]


def churn(trace: Trace, n_nodes: "int | None" = None) -> float:
    """Mean per-round demand churn in [0, 1].

    Round-to-round churn is the total-variation distance between the
    consecutive rounds' demand distributions over access points: 0 when the
    histogram is unchanged, 1 when the demand moved entirely. Rounds where
    both histograms are empty contribute 0; a transition between empty and
    non-empty contributes 1.
    """
    if len(trace) < 2:
        return 0.0
    size = n_nodes if n_nodes is not None else trace.max_node + 1
    size = max(size, 1)

    def histogram(arr: np.ndarray) -> "np.ndarray | None":
        if arr.size == 0:
            return None
        return np.bincount(arr, minlength=size) / arr.size

    total = 0.0
    previous = histogram(trace[0])
    for t in range(1, len(trace)):
        current = histogram(trace[t])
        if previous is None and current is None:
            step = 0.0
        elif previous is None or current is None:
            step = 1.0
        else:
            step = 0.5 * float(np.abs(current - previous).sum())
        total += step
        previous = current
    return total / (len(trace) - 1)


def spatial_spread(trace: Trace, substrate: Substrate) -> float:
    """Mean latency from each request to its round's demand barycentre.

    The barycentre of a round is the node minimising the total latency to
    the round's requests (a 1-median restricted to substrate nodes). The
    average distance to it measures how *concentrated* the concurrent
    demand is: 0 when all requests share one access point.
    """
    distances = substrate.distances
    weighted_total = 0.0
    n_requests = 0
    for requests in trace:
        if requests.size == 0:
            continue
        cost_per_node = distances[:, requests].sum(axis=1)
        barycentre = int(np.argmin(cost_per_node))
        weighted_total += float(cost_per_node[barycentre])
        n_requests += int(requests.size)
    if n_requests == 0:
        return 0.0
    return weighted_total / n_requests


def hotspot_dwell(trace: Trace) -> float:
    """Mean run length (rounds) of the per-round modal access point.

    Empty rounds terminate a run. A fully static trace returns
    ``len(trace)``; a trace whose busiest node changes every round
    returns 1.0.
    """
    modes: list[int] = []
    for requests in trace:
        if requests.size == 0:
            modes.append(-1)
            continue
        values, counts = np.unique(requests, return_counts=True)
        modes.append(int(values[np.argmax(counts)]))

    runs: list[int] = []
    current = 0
    previous: "int | None" = None
    for mode in modes:
        if mode != -1 and mode == previous:
            current += 1
        else:
            if current:
                runs.append(current)
            current = 1 if mode != -1 else 0
        previous = mode if mode != -1 else None
    if current:
        runs.append(current)
    if not runs:
        return 0.0
    return float(np.mean(runs))
