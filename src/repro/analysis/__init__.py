"""Analysis helpers: competitive ratios and multi-run statistics."""

from repro.analysis.competitive import competitive_ratio_vs_opt, cost_ratio
from repro.analysis.demand import churn, hotspot_dwell, spatial_spread
from repro.analysis.stats import (
    MeanStderr,
    average_breakdown,
    average_total,
    mean_stderr,
)

__all__ = [
    "competitive_ratio_vs_opt",
    "cost_ratio",
    "churn",
    "hotspot_dwell",
    "spatial_spread",
    "MeanStderr",
    "average_breakdown",
    "average_total",
    "mean_stderr",
]
