"""Analysis helpers: competitive ratios and multi-run statistics."""

from repro.analysis.competitive import competitive_ratio_vs_opt, cost_ratio
from repro.analysis.demand import churn, hotspot_dwell, spatial_spread
from repro.analysis.stats import (
    ComparisonSummary,
    ConfidenceInterval,
    MeanStderr,
    PointSummary,
    average_breakdown,
    average_total,
    confidence_interval,
    mean_stderr,
    paired_difference_interval,
    paired_ratio_interval,
    paired_summary,
    point_summary,
    t_critical,
)

__all__ = [
    "competitive_ratio_vs_opt",
    "cost_ratio",
    "churn",
    "hotspot_dwell",
    "spatial_spread",
    "ComparisonSummary",
    "ConfidenceInterval",
    "MeanStderr",
    "PointSummary",
    "average_breakdown",
    "average_total",
    "confidence_interval",
    "mean_stderr",
    "paired_difference_interval",
    "paired_ratio_interval",
    "paired_summary",
    "point_summary",
    "t_critical",
]
