"""Summary statistics for multi-run experiments.

Every figure of §V averages over 5-10 independent runs; these helpers keep
that aggregation in one place (mean, standard error, and component-wise
averaging of cost breakdowns).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.results import CostBreakdown, RunResult

__all__ = ["MeanStderr", "mean_stderr", "average_breakdown", "average_total"]


@dataclass(frozen=True)
class MeanStderr:
    """A sample mean with its standard error."""

    mean: float
    stderr: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.1f} ± {self.stderr:.1f}"


def mean_stderr(values: Sequence[float]) -> MeanStderr:
    """Mean and standard error of the mean (ddof=1; stderr 0 for n < 2)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("mean_stderr needs at least one value")
    if arr.size == 1:
        return MeanStderr(float(arr[0]), 0.0, 1)
    return MeanStderr(
        float(arr.mean()),
        float(arr.std(ddof=1) / math.sqrt(arr.size)),
        int(arr.size),
    )


def average_total(results: Iterable[RunResult]) -> MeanStderr:
    """Mean ± stderr of the total cost across runs."""
    return mean_stderr([r.total_cost for r in results])


def average_breakdown(results: Iterable[RunResult]) -> CostBreakdown:
    """Component-wise mean cost breakdown across runs."""
    results = list(results)
    if not results:
        raise ValueError("average_breakdown needs at least one run")
    total = results[0].breakdown
    for r in results[1:]:
        total = total + r.breakdown
    return total.scaled(1.0 / len(results))
