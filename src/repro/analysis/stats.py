"""Summary statistics for multi-run experiments.

Every figure of §V averages over 5-10 independent runs; these helpers keep
that aggregation in one place:

* :func:`mean_stderr` — mean and standard error of the mean,
* :func:`confidence_interval` — a t-based (default) or BCa-bootstrap
  confidence interval for the mean,
* :func:`point_summary` / :class:`PointSummary` — the full per-sweep-point
  summary (mean, stderr, CI, n) that adaptive replication and the error-bar
  rendering consume,
* :func:`paired_difference_interval` / :func:`paired_ratio_interval` /
  :func:`paired_summary` / :class:`ComparisonSummary` — *paired* policy
  comparison statistics over per-replicate differences or ratios. Because
  policies sharing a sweep point run on common random numbers (one trace
  per replicate), the difference cancels the trace-to-trace noise both
  policies share, and the paired CI is typically far tighter than either
  marginal one — the classic CRN variance reduction,
* :func:`comparison_matrix` / :class:`ComparisonMatrix` — every-vs-every
  paired comparisons of several aligned series at one sweep point, the
  multi-baseline generalisation of a single :func:`paired_summary`,
* :func:`average_breakdown` / :func:`average_total` — component-wise
  averaging of cost breakdowns and totals.

All estimators reject non-finite samples with a clear :class:`ValueError`
rather than propagating ``nan`` into figures, and are deterministic: the
bootstrap draws from a fixed-seed generator and resamples the *sorted*
sample vector, so the interval is invariant under permutations of the
input samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.results import CostBreakdown, RunResult

__all__ = [
    "CI_METHODS",
    "COMPARISON_MODES",
    "ComparisonMatrix",
    "ComparisonSummary",
    "ConfidenceInterval",
    "MeanStderr",
    "PointSummary",
    "average_breakdown",
    "average_total",
    "comparison_matrix",
    "confidence_interval",
    "mean_stderr",
    "paired_difference_interval",
    "paired_ratio_interval",
    "paired_summary",
    "point_summary",
    "t_critical",
]

#: Interval methods accepted by :func:`confidence_interval`.
CI_METHODS = ("t", "bootstrap")

#: Paired-comparison modes: per-replicate differences or ratios. The single
#: source of truth for :func:`paired_summary`, the spec layer's
#: ``ComparisonSpec`` and the CLI's ``--compare-mode``.
COMPARISON_MODES = ("diff", "ratio")

#: Default resample count of the BCa bootstrap.
DEFAULT_BOOTSTRAP_SAMPLES = 2000


@dataclass(frozen=True)
class MeanStderr:
    """A sample mean with its standard error."""

    mean: float
    stderr: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.1f} ± {self.stderr:.1f}"


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a mean.

    ``level`` is the nominal coverage (0.95 = 95%); ``level = 0`` denotes
    the degenerate interval collapsing to the point estimate.
    """

    low: float
    high: float
    level: float
    method: str = "t"

    def __post_init__(self) -> None:
        if not 0.0 <= self.level < 1.0:
            raise ValueError(
                f"confidence level must be in [0, 1), got {self.level}"
            )
        if self.method not in CI_METHODS:
            raise ValueError(
                f"unknown CI method {self.method!r}; expected one of {CI_METHODS}"
            )
        if self.low > self.high:
            raise ValueError(f"inverted interval [{self.low}, {self.high}]")

    @property
    def halfwidth(self) -> float:
        """Half the interval width — the ± of an error bar."""
        return (self.high - self.low) / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low:.2f}, {self.high:.2f}] @ {self.level:.0%}"


@dataclass(frozen=True)
class PointSummary:
    """Everything a figure needs to know about one sweep point's samples.

    The adaptive replication loop decides from this whether a point needs
    more replicates; the reporting/plotting layers render ``mean ± ci``
    and the per-point ``n``.
    """

    mean: float
    stderr: float
    n: int
    ci: ConfidenceInterval

    @property
    def halfwidth(self) -> float:
        """The CI halfwidth (0 for degenerate intervals)."""
        return self.ci.halfwidth

    def relative_halfwidth(self) -> float:
        """Halfwidth as a fraction of ``|mean|`` (``inf`` for a zero mean)."""
        if self.mean == 0.0:
            return math.inf if self.halfwidth > 0 else 0.0
        return self.halfwidth / abs(self.mean)

    def meets(self, target_halfwidth: float, relative: bool = False) -> bool:
        """Does the CI meet an absolute (or relative) halfwidth target?

        A single sample never meets a positive target: with ``n = 1`` the
        stderr (hence the halfwidth) is identically zero, which says
        nothing about the estimator's precision.
        """
        if target_halfwidth < 0:
            raise ValueError(f"target halfwidth must be >= 0, got {target_halfwidth}")
        if self.n < 2 and target_halfwidth > 0:
            return False
        width = self.relative_halfwidth() if relative else self.halfwidth
        return width <= target_halfwidth

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.1f} ± {self.halfwidth:.1f} (n={self.n})"


@dataclass(frozen=True)
class ComparisonSummary:
    """One sweep point's paired comparison of a contrast against a baseline.

    Depending on :attr:`mode` the statistic is the mean per-replicate
    *difference* ``contrast - baseline`` (null value 0: equal cost) or the
    mean per-replicate *ratio* ``contrast / baseline`` (null value 1). The
    interval is computed over the paired per-replicate values, so shared
    randomness between the two series — policies evaluated on one common
    trace per replicate — cancels out of the spread.
    """

    mode: str
    mean: float
    stderr: float
    n: int
    ci: ConfidenceInterval

    def __post_init__(self) -> None:
        if self.mode not in COMPARISON_MODES:
            raise ValueError(
                f"unknown comparison mode {self.mode!r}; expected one of "
                f"{COMPARISON_MODES}"
            )

    @property
    def null(self) -> float:
        """The no-difference value: 0 for differences, 1 for ratios."""
        return 0.0 if self.mode == "diff" else 1.0

    @property
    def halfwidth(self) -> float:
        """The CI halfwidth (0 for degenerate intervals)."""
        return self.ci.halfwidth

    def relative_halfwidth(self) -> float:
        """Halfwidth as a fraction of ``|mean|`` (``inf`` for a zero mean)."""
        if self.mean == 0.0:
            return math.inf if self.halfwidth > 0 else 0.0
        return self.halfwidth / abs(self.mean)

    def meets(self, target_halfwidth: float, relative: bool = False) -> bool:
        """Does the paired CI meet an absolute (or relative) halfwidth target?

        Mirrors :meth:`PointSummary.meets`: a single pair never meets a
        positive target, its zero halfwidth being vacuous.
        """
        if target_halfwidth < 0:
            raise ValueError(f"target halfwidth must be >= 0, got {target_halfwidth}")
        if self.n < 2 and target_halfwidth > 0:
            return False
        width = self.relative_halfwidth() if relative else self.halfwidth
        return width <= target_halfwidth

    @property
    def decisive(self) -> bool:
        """Whether the CI excludes the null — the ordering is settled."""
        return self.ci.low > self.null or self.ci.high < self.null

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        symbol = "Δ" if self.mode == "diff" else "×"
        return f"{symbol}{self.mean:.3g} ± {self.halfwidth:.3g} (n={self.n})"


def _finite_array(values: Sequence[float], what: str) -> np.ndarray:
    """``values`` as a float array, rejecting NaN/inf with a clear error."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size and not np.isfinite(arr).all():
        bad = arr[~np.isfinite(arr)][0]
        raise ValueError(
            f"{what} requires finite samples, got {bad!r}; non-finite "
            "replicate output indicates a corrupt cache entry or a broken "
            "metric and must not average silently into a figure"
        )
    return arr


def mean_stderr(values: Sequence[float]) -> MeanStderr:
    """Mean and standard error of the mean (ddof=1; stderr 0 for n < 2).

    Raises :class:`ValueError` for an empty sequence and for non-finite
    samples — a ``nan`` replicate must fail loudly, not propagate into
    averaged series.
    """
    arr = _finite_array(values, "mean_stderr")
    if arr.size == 0:
        raise ValueError("mean_stderr needs at least one value")
    if arr.size == 1:
        return MeanStderr(float(arr[0]), 0.0, 1)
    return MeanStderr(
        float(arr.mean()),
        float(arr.std(ddof=1) / math.sqrt(arr.size)),
        int(arr.size),
    )


def t_critical(level: float, dof: int) -> float:
    """The two-sided Student-t critical value at confidence ``level``.

    ``t_critical(0.95, n - 1)`` is the multiplier turning a standard error
    into a 95% CI halfwidth. ``level = 0`` returns 0 (degenerate interval).
    """
    if not 0.0 <= level < 1.0:
        raise ValueError(f"confidence level must be in [0, 1), got {level}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    if level == 0.0:
        return 0.0
    from scipy.stats import t

    return float(t.ppf(0.5 + level / 2.0, dof))


def _t_interval(arr: np.ndarray, level: float) -> ConfidenceInterval:
    stat = mean_stderr(arr)
    if stat.n < 2 or level == 0.0:
        return ConfidenceInterval(stat.mean, stat.mean, level, "t")
    halfwidth = t_critical(level, stat.n - 1) * stat.stderr
    return ConfidenceInterval(
        stat.mean - halfwidth, stat.mean + halfwidth, level, "t"
    )


def _bootstrap_interval(
    arr: np.ndarray,
    level: float,
    n_boot: int,
    seed: int,
) -> ConfidenceInterval:
    """The BCa (bias-corrected and accelerated) bootstrap interval.

    Resamples the *sorted* samples from a fixed-seed generator, so the
    interval depends only on the multiset of samples (permutation
    invariance) and is reproducible. Degenerates gracefully: constant
    samples or ``level = 0`` collapse to the point estimate.
    """
    # Mean of the *sorted* samples: np.mean's pairwise summation is order-
    # sensitive at ULP level, and the bias-correction term compares
    # bootstrap means against this value — summing in sorted order is what
    # actually delivers the documented permutation invariance.
    ordered = np.sort(arr)
    mean = float(ordered.mean())
    if level == 0.0 or arr.size < 2 or float(arr.std()) == 0.0:
        return ConfidenceInterval(mean, mean, level, "bootstrap")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, ordered.size, size=(n_boot, ordered.size))
    boot_means = ordered[indices].mean(axis=1)

    from scipy.stats import norm

    # Bias correction: the normal quantile of the fraction of bootstrap
    # means below the observed mean.
    below = float(np.mean(boot_means < mean))
    below = min(max(below, 1.0 / (n_boot + 1)), 1.0 - 1.0 / (n_boot + 1))
    z0 = float(norm.ppf(below))
    # Acceleration from the jackknife skewness of the mean.
    jackknife = (ordered.sum() - ordered) / (ordered.size - 1)
    centered = jackknife.mean() - jackknife
    denom = float((centered**2).sum()) ** 1.5
    accel = float((centered**3).sum()) / (6.0 * denom) if denom > 0 else 0.0

    z = float(norm.ppf(0.5 + level / 2.0))
    quantiles = []
    for z_alpha in (-z, z):
        adjusted = z0 + (z0 + z_alpha) / (1.0 - accel * (z0 + z_alpha))
        quantiles.append(float(norm.cdf(adjusted)))
    low, high = np.quantile(boot_means, sorted(quantiles))
    return ConfidenceInterval(float(low), float(high), level, "bootstrap")


def confidence_interval(
    values: Sequence[float],
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """A two-sided confidence interval for the mean of ``values``.

    Args:
        values: the samples (at least one; all finite).
        level: nominal coverage in ``[0, 1)``; 0 collapses the interval to
            the point estimate (useful as an "off" switch in sweeps).
        method: ``"t"`` for the Student-t interval (exact under normality,
            the paper-standard choice for 5-10 replicates) or
            ``"bootstrap"`` for the BCa bootstrap (skew-robust, no
            distributional assumption).
        n_boot: bootstrap resample count (ignored for ``"t"``).
        seed: bootstrap generator seed (ignored for ``"t"``). The samples
            are sorted before resampling, so equal multisets yield equal
            intervals regardless of order.

    The t interval always contains the sample mean; with one sample either
    method returns the degenerate interval at that sample.
    """
    if method not in CI_METHODS:
        raise ValueError(
            f"unknown CI method {method!r}; expected one of {CI_METHODS}"
        )
    if not 0.0 <= level < 1.0:
        raise ValueError(f"confidence level must be in [0, 1), got {level}")
    arr = _finite_array(values, "confidence_interval")
    if arr.size == 0:
        raise ValueError("confidence_interval needs at least one value")
    if n_boot < 1:
        raise ValueError(f"n_boot must be >= 1, got {n_boot}")
    if method == "t":
        return _t_interval(arr, level)
    return _bootstrap_interval(arr, level, n_boot, seed)


def point_summary(
    values: Sequence[float],
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> PointSummary:
    """The full :class:`PointSummary` of one sweep point's samples."""
    stat = mean_stderr(values)
    ci = confidence_interval(
        values, level=level, method=method, n_boot=n_boot, seed=seed
    )
    return PointSummary(mean=stat.mean, stderr=stat.stderr, n=stat.n, ci=ci)


def _paired_values(
    contrast: Sequence[float],
    baseline: Sequence[float],
    mode: str,
    what: str,
) -> np.ndarray:
    """The per-replicate paired statistic (difference or ratio).

    Pairing is positional: replicate ``i`` of ``contrast`` is compared to
    replicate ``i`` of ``baseline`` — the two series must come from the
    same replicates (common random numbers), so misaligned lengths are a
    caller bug, not something to truncate silently. An empty paired set
    (n = 0 after alignment) is rejected with a clear error rather than
    propagating ``nan`` into comparison columns.
    """
    if mode not in COMPARISON_MODES:
        raise ValueError(
            f"unknown comparison mode {mode!r}; expected one of "
            f"{COMPARISON_MODES}"
        )
    a = _finite_array(contrast, what)
    b = _finite_array(baseline, what)
    if a.size != b.size:
        raise ValueError(
            f"{what} needs aligned replicates: got {a.size} contrast vs "
            f"{b.size} baseline samples; paired comparisons require both "
            "series from the same replicates (common random numbers)"
        )
    if a.size == 0:
        raise ValueError(
            f"{what} needs at least one aligned pair of samples; an empty "
            "paired sample set (n=0 after alignment) has no comparison to "
            "estimate"
        )
    if mode == "diff":
        return a - b
    if np.any(b == 0.0):
        raise ValueError(
            f"{what} cannot form ratios against a zero baseline sample; "
            "use mode='diff' for baselines that may reach zero"
        )
    return a / b


def paired_difference_interval(
    contrast: Sequence[float],
    baseline: Sequence[float],
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """A CI for the mean per-replicate difference ``contrast - baseline``.

    The interval is :func:`confidence_interval` over the paired differences,
    so it inherits its determinism and its invariance under permutations —
    here permutations of the *pairs* (the pairing itself is sacrosanct:
    replicate ``i`` pairs with replicate ``i``). An interval excluding zero
    settles the ordering of the two series at the chosen level.
    """
    values = _paired_values(
        contrast, baseline, "diff", "paired_difference_interval"
    )
    return confidence_interval(
        values, level=level, method=method, n_boot=n_boot, seed=seed
    )


def paired_ratio_interval(
    contrast: Sequence[float],
    baseline: Sequence[float],
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> ConfidenceInterval:
    """A CI for the mean per-replicate ratio ``contrast / baseline``.

    Like :func:`paired_difference_interval` but for relative claims ("ONTH
    costs 1.8x OPT"): the interval excluding one settles which series is
    cheaper. Baseline samples must be non-zero.
    """
    values = _paired_values(
        contrast, baseline, "ratio", "paired_ratio_interval"
    )
    return confidence_interval(
        values, level=level, method=method, n_boot=n_boot, seed=seed
    )


def paired_summary(
    contrast: Sequence[float],
    baseline: Sequence[float],
    mode: str = "diff",
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> ComparisonSummary:
    """The full :class:`ComparisonSummary` of one paired comparison."""
    values = _paired_values(contrast, baseline, mode, "paired_summary")
    stat = mean_stderr(values)
    ci = confidence_interval(
        values, level=level, method=method, n_boot=n_boot, seed=seed
    )
    return ComparisonSummary(
        mode=mode, mean=stat.mean, stderr=stat.stderr, n=stat.n, ci=ci
    )


@dataclass(frozen=True)
class ComparisonMatrix:
    """Every-vs-every paired comparisons of aligned series at one point.

    Row names are contrasts, column names are baselines: ``cells[i][j]``
    is the :class:`ComparisonSummary` of ``names[i]`` against ``names[j]``
    (``None`` on the diagonal — a series against itself has no spread).
    All pairs share the one set of replicates, so every cell benefits from
    the same common-random-numbers cancellation as a single paired
    comparison; the matrix is the multi-baseline view a single
    ``ComparisonSpec`` (one designated baseline) cannot give.
    """

    mode: str
    level: float
    method: str
    names: "tuple[str, ...]"
    cells: "tuple[tuple[ComparisonSummary | None, ...], ...]"

    def summary(self, contrast: str, baseline: str) -> ComparisonSummary:
        """The cell comparing ``contrast`` against ``baseline``."""
        for name in (contrast, baseline):
            if name not in self.names:
                raise KeyError(
                    f"series {name!r} not in comparison matrix over "
                    f"{list(self.names)}"
                )
        if contrast == baseline:
            raise KeyError(
                f"no self-comparison: contrast and baseline are both "
                f"{contrast!r}"
            )
        return self.cells[self.names.index(contrast)][
            self.names.index(baseline)
        ]


def comparison_matrix(
    samples: "dict[str, Sequence[float]]",
    mode: str = "diff",
    level: float = 0.95,
    method: str = "t",
    n_boot: int = DEFAULT_BOOTSTRAP_SAMPLES,
    seed: int = 0,
) -> ComparisonMatrix:
    """Pair every series against every other at one sweep point.

    ``samples`` maps series name → per-replicate values, aligned
    positionally across series (replicate ``i`` of each series ran on the
    same trace — the common-random-numbers contract every sweep satisfies
    by construction). Order is preserved: rows and columns follow the
    mapping's insertion order. Requires at least two series; misaligned
    replicate counts are rejected by the underlying pairing.
    """
    names = tuple(samples)
    if len(names) < 2:
        raise ValueError(
            "comparison_matrix needs at least two series, got "
            f"{list(names)}"
        )
    cells = tuple(
        tuple(
            None
            if a == b
            else paired_summary(
                samples[a],
                samples[b],
                mode=mode,
                level=level,
                method=method,
                n_boot=n_boot,
                seed=seed,
            )
            for b in names
        )
        for a in names
    )
    return ComparisonMatrix(
        mode=mode, level=level, method=method, names=names, cells=cells
    )


def average_total(results: Iterable[RunResult]) -> MeanStderr:
    """Mean ± stderr of the total cost across runs.

    Like :func:`mean_stderr` this raises on an empty iterable (n=0) and on
    non-finite totals; a single run (n=1) yields stderr 0.
    """
    return mean_stderr([r.total_cost for r in results])


def average_breakdown(results: Iterable[RunResult]) -> CostBreakdown:
    """Component-wise mean cost breakdown across runs.

    Raises on an empty iterable (n=0); a single run (n=1) returns that
    run's breakdown unchanged.
    """
    results = list(results)
    if not results:
        raise ValueError("average_breakdown needs at least one run")
    total = results[0].breakdown
    for r in results[1:]:
        total = total + r.breakdown
    return total.scaled(1.0 / len(results))
