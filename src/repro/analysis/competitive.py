"""Competitive-ratio analysis (§II-E, Figures 11 and 15-19).

The competitive ratio compares an algorithm's cost to the optimal offline
cost on the *same* request sequence. The paper uses two ratio families:

* **online price** — ONTH / OPT (Figure 11): what does the lack of future
  knowledge cost?
* **benefit of flexibility** — OFFSTAT / OPT (Figures 15-19): what does the
  lack of migration/allocation flexibility cost, even with full knowledge?

Both require the exact :class:`~repro.algorithms.opt.Opt` dynamic program,
so — like the paper — these run on small substrates (line graphs).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.opt import Opt
from repro.core.costs import CostModel
from repro.core.policy import AllocationPolicy
from repro.core.simulator import simulate
from repro.topology.substrate import Substrate
from repro.workload.base import Trace

__all__ = ["cost_ratio", "competitive_ratio_vs_opt"]


def cost_ratio(numerator: float, denominator: float) -> float:
    """A guarded ratio: raises on non-positive optimal cost instead of inf."""
    if denominator <= 0:
        raise ValueError(
            f"cannot form a ratio against non-positive cost {denominator!r}"
        )
    return numerator / denominator


def competitive_ratio_vs_opt(
    substrate: Substrate,
    policy: AllocationPolicy,
    trace: Trace,
    costs: "CostModel | None" = None,
    seed: "int | np.random.Generator | None" = None,
    max_servers: "int | None" = None,
) -> tuple[float, float, float]:
    """Run ``policy`` and OPT on the same trace; return (ratio, cost, opt_cost).

    The ratio is ≥ 1 up to floating-point noise — OPT is exact (tested as a
    library invariant).
    """
    costs = costs if costs is not None else CostModel.paper_default()
    run = simulate(substrate, policy, trace, costs, seed=seed)
    opt_cost, _plan = Opt.solve(
        substrate, trace, costs, max_servers=max_servers
    )
    return cost_ratio(run.total_cost, opt_cost), run.total_cost, opt_cost
