"""Experiment engine: seeded multi-run parameter sweeps (§V-B's methodology).

Every quantitative figure of the paper is a sweep: vary one parameter
(network size, λ, T), run several independent replicates per point, and
average the total costs per algorithm. :func:`sweep_experiment` is that
engine; a figure module only supplies the *replicate function* mapping
``(x, rng) -> {series name: value}``.

Determinism: replicate ``j`` of sweep point ``i`` always receives the same
child generator (derived from one master seed through
``numpy.random.SeedSequence`` spawning), so figure results are exactly
reproducible and independent of how many other points are evaluated — and of
the :class:`~repro.api.execution.ExecutionBackend` that runs them: the child
seeds are spawned up front and travel with each task, so a process-pool
sweep is bit-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.stats import (
    COMPARISON_MODES,
    ComparisonSummary,
    ConfidenceInterval,
    PointSummary,
    mean_stderr,
    paired_summary,
    point_summary,
)
from repro.api.execution import ExecutionBackend, ReplicateTask, SerialBackend

__all__ = [
    "ComparisonResult",
    "FigureResult",
    "SeriesValidator",
    "aggregate_point_summaries",
    "aggregate_samples",
    "compute_comparisons",
    "point_meets_target",
    "spawn_point_extension_tasks",
    "spawn_tasks",
    "sweep_experiment",
]


@dataclass(frozen=True)
class ComparisonResult:
    """One paired contrast-vs-baseline comparison across a sweep.

    Per sweep point the comparison holds the mean per-replicate difference
    (``mode="diff"``: ``contrast - baseline``) or ratio (``mode="ratio"``:
    ``contrast / baseline``), its standard error, the ``level`` confidence
    interval over the paired values and the number of aligned replicate
    pairs. Because both series share each replicate's trace (common random
    numbers), these intervals are typically far tighter than the marginal
    per-series ones — the comparison is what the paper's *relative* claims
    actually rest on.
    """

    baseline: str
    contrast: str
    mode: str
    level: float
    values: tuple
    stderr: tuple
    ci: tuple
    counts: tuple

    def __post_init__(self) -> None:
        if self.mode not in COMPARISON_MODES:
            raise ValueError(
                f"unknown comparison mode {self.mode!r}; expected one of "
                f"{COMPARISON_MODES}"
            )
        if not 0.0 < self.level < 1.0:
            raise ValueError(
                f"comparison level must be in (0, 1), got {self.level}"
            )
        if self.contrast == self.baseline:
            raise ValueError(
                f"comparison contrast equals its baseline {self.baseline!r}"
            )
        n_points = len(self.values)
        for name, attr in (("stderr", self.stderr), ("ci", self.ci),
                           ("counts", self.counts)):
            if len(attr) != n_points:
                raise ValueError(
                    f"comparison {self.contrast!r} {name} misaligned with "
                    f"its {n_points} values"
                )
        for pair in self.ci:
            if len(pair) != 2:
                raise ValueError(
                    f"comparison ci must hold (low, high) pairs, got {pair!r}"
                )

    @property
    def null(self) -> float:
        """The no-difference value: 0 for differences, 1 for ratios."""
        return 0.0 if self.mode == "diff" else 1.0

    def summaries(self) -> "tuple[ComparisonSummary, ...]":
        """The :class:`ComparisonSummary` per sweep point."""
        return tuple(
            ComparisonSummary(
                mode=self.mode,
                mean=float(self.values[i]),
                stderr=float(self.stderr[i]),
                n=int(self.counts[i]),
                ci=ConfidenceInterval(
                    float(self.ci[i][0]), float(self.ci[i][1]), self.level
                ),
            )
            for i in range(len(self.values))
        )

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form."""
        return {
            "baseline": self.baseline,
            "contrast": self.contrast,
            "mode": self.mode,
            "level": float(self.level),
            "values": [float(v) for v in self.values],
            "stderr": [float(v) for v in self.stderr],
            "ci": [[float(low), float(high)] for low, high in self.ci],
            "counts": [int(n) for n in self.counts],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ComparisonResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            baseline=data["baseline"],
            contrast=data["contrast"],
            mode=data["mode"],
            level=float(data["level"]),
            values=tuple(float(v) for v in data.get("values", ())),
            stderr=tuple(float(v) for v in data.get("stderr", ())),
            ci=tuple(
                (float(pair[0]), float(pair[1]))
                for pair in data.get("ci", ())
            ),
            counts=tuple(int(n) for n in data.get("counts", ())),
        )


@dataclass(frozen=True)
class FigureResult:
    """The reproduced data behind one paper figure (or table).

    Attributes:
        figure: short identifier, e.g. ``"fig15"``.
        title: human-readable description.
        x_label: meaning of :attr:`x_values`.
        x_values: sweep points (or time stamps for trajectory figures).
        series: mapping series name → y value per sweep point.
        errors: mapping series name → standard error per sweep point
            (empty for single-run figures).
        ci: mapping series name → per-point ``(low, high)`` confidence
            bounds at :attr:`ci_level` (empty unless the sweep ran with a
            :class:`~repro.api.specs.ReplicationSpec` requesting CIs).
        counts: per-point replicate counts — non-empty exactly when
            :attr:`ci` is populated; adaptive replication makes them vary
            across points.
        ci_level: nominal coverage of :attr:`ci` (0 when absent).
        comparisons: paired contrast-vs-baseline statistics
            (:class:`ComparisonResult` per contrast) — non-empty exactly
            when the sweep ran with a
            :class:`~repro.api.specs.ComparisonSpec`.
        notes: free-text observations (paper expectation, caveats).

    The confidence annotations (:attr:`ci`/:attr:`counts`/:attr:`ci_level`)
    and the :attr:`comparisons` payload are strictly additive: results
    without them serialise to exactly the historical dict shape, which is
    what keeps pre-CI/pre-comparison golden data and cache entries
    bit-comparable.
    """

    figure: str
    title: str
    x_label: str
    x_values: tuple
    series: Mapping[str, tuple]
    errors: Mapping[str, tuple] = field(default_factory=dict)
    notes: str = ""
    ci: Mapping[str, tuple] = field(default_factory=dict)
    counts: tuple = ()
    ci_level: float = 0.0
    comparisons: "tuple[ComparisonResult, ...]" = ()

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(self.x_values)} x points"
                )
        for name, values in self.errors.items():
            if name not in self.series:
                raise ValueError(f"errors given for unknown series {name!r}")
            if len(values) != len(self.x_values):
                raise ValueError(f"errors for {name!r} misaligned with x values")
        for name, bounds in self.ci.items():
            if name not in self.series:
                raise ValueError(f"ci given for unknown series {name!r}")
            if len(bounds) != len(self.x_values):
                raise ValueError(f"ci for {name!r} misaligned with x values")
            for pair in bounds:
                if len(pair) != 2:
                    raise ValueError(
                        f"ci for {name!r} must hold (low, high) pairs, "
                        f"got {pair!r}"
                    )
        if self.counts and len(self.counts) != len(self.x_values):
            raise ValueError(
                f"{len(self.counts)} counts for {len(self.x_values)} x points"
            )
        if not 0.0 <= self.ci_level < 1.0:
            raise ValueError(
                f"ci_level must be in [0, 1), got {self.ci_level}"
            )
        if self.ci and not self.counts:
            raise ValueError("ci requires per-point counts")
        object.__setattr__(
            self,
            "comparisons",
            tuple(
                c if isinstance(c, ComparisonResult)
                else ComparisonResult.from_dict(c)
                for c in self.comparisons
            ),
        )
        seen_contrasts = set()
        for comparison in self.comparisons:
            for role, name in (("baseline", comparison.baseline),
                               ("contrast", comparison.contrast)):
                if name not in self.series:
                    raise ValueError(
                        f"comparison {role} {name!r} is not a result series"
                    )
            if len(comparison.values) != len(self.x_values):
                raise ValueError(
                    f"comparison {comparison.contrast!r} misaligned with "
                    f"{len(self.x_values)} x points"
                )
            key = (comparison.contrast, comparison.mode)
            if key in seen_contrasts:
                raise ValueError(
                    f"duplicate comparison for contrast {comparison.contrast!r}"
                )
            seen_contrasts.add(key)

    def y(self, name: str) -> tuple:
        """The y series called ``name``."""
        return tuple(self.series[name])

    @property
    def series_names(self) -> tuple[str, ...]:
        """All series names in insertion order."""
        return tuple(self.series.keys())

    @property
    def has_confidence(self) -> bool:
        """Whether per-point confidence intervals are attached."""
        return bool(self.ci)

    @property
    def has_comparisons(self) -> bool:
        """Whether paired comparison payloads are attached."""
        return bool(self.comparisons)

    def comparison_for(self, contrast: str) -> ComparisonResult:
        """The attached comparison whose contrast series is ``contrast``."""
        for comparison in self.comparisons:
            if comparison.contrast == contrast:
                return comparison
        raise KeyError(
            f"no comparison for contrast {contrast!r}; attached: "
            f"{sorted(c.contrast for c in self.comparisons)}"
        )

    def point_summaries(self, name: str) -> "tuple[PointSummary, ...]":
        """The :class:`PointSummary` per sweep point of series ``name``.

        Requires confidence annotations (``has_confidence``); plain
        fixed-``runs`` results only carry means and standard errors.
        """
        if name not in self.series:
            raise KeyError(name)
        if not self.has_confidence or name not in self.ci:
            raise ValueError(
                f"series {name!r} carries no confidence intervals; run the "
                "sweep with SweepSpec(replication=ReplicationSpec(...))"
            )
        errors = self.errors.get(name, (0.0,) * len(self.x_values))
        return tuple(
            PointSummary(
                mean=float(self.series[name][i]),
                stderr=float(errors[i]),
                n=int(self.counts[i]),
                ci=ConfidenceInterval(
                    float(self.ci[name][i][0]),
                    float(self.ci[name][i][1]),
                    self.ci_level,
                ),
            )
            for i in range(len(self.x_values))
        )

    def to_dict(self) -> dict:
        """Plain JSON-safe dict form (``--json`` and caching use this).

        Confidence annotations are emitted only when present, so results
        without them round-trip through exactly the historical dict shape.
        """
        data = {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": [_json_value(v) for v in self.x_values],
            "series": {
                name: [float(v) for v in values]
                for name, values in self.series.items()
            },
            "errors": {
                name: [float(v) for v in values]
                for name, values in self.errors.items()
            },
            "notes": self.notes,
        }
        if self.ci:
            data["ci"] = {
                name: [[float(low), float(high)] for low, high in bounds]
                for name, bounds in self.ci.items()
            }
            data["counts"] = [int(n) for n in self.counts]
            data["ci_level"] = float(self.ci_level)
        if self.comparisons:
            data["comparisons"] = [c.to_dict() for c in self.comparisons]
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FigureResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            figure=data["figure"],
            title=data.get("title", ""),
            x_label=data.get("x_label", ""),
            x_values=tuple(data.get("x_values", ())),
            series={k: tuple(v) for k, v in data.get("series", {}).items()},
            errors={k: tuple(v) for k, v in data.get("errors", {}).items()},
            notes=data.get("notes", ""),
            ci={
                k: tuple((float(pair[0]), float(pair[1])) for pair in v)
                for k, v in data.get("ci", {}).items()
            },
            counts=tuple(int(n) for n in data.get("counts", ())),
            ci_level=float(data.get("ci_level", 0.0)),
            comparisons=tuple(
                ComparisonResult.from_dict(c)
                for c in data.get("comparisons", ())
            ),
        )


def _json_value(value):
    """A JSON-safe scalar for a sweep-point value."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def spawn_tasks(x_values: Sequence, runs: int, seed: int) -> "list[ReplicateTask]":
    """The full task list of a sweep: ``runs`` tasks per point, seeds attached.

    Child generator ``k`` is ``SeedSequence(seed)``'s ``k``-th spawn, so the
    seed of replicate ``j`` at point index ``i`` (task ``i * runs + j``)
    depends only on ``(seed, i * runs + j)`` — never on which subset of the
    tasks actually executes. That positional contract is what per-point
    caching and sharded execution rely on: recomputing one point, or
    splitting the list across processes, reproduces the exact streams of a
    full serial sweep.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    x_values = list(x_values)
    children = np.random.SeedSequence(seed).spawn(len(x_values) * runs)
    return [
        ReplicateTask(x=x_values[index // runs], seed=children[index])
        for index in range(len(x_values) * runs)
    ]


def spawn_point_extension_tasks(
    x: object,
    point_index: int,
    start: int,
    count: int,
    seed: int,
) -> "list[ReplicateTask]":
    """Top-up tasks for one sweep point: replicates ``start .. start+count``.

    While the *initial* replicates of a sweep keep the flat layout of
    :func:`spawn_tasks` (replicate ``j`` of point ``i`` = spawn child
    ``i * runs + j`` — the PR-3 contract that existing point cache entries
    encode), adaptive top-ups extend each point's seed sequence in a second
    spawn dimension: replicate ``j >= runs`` of point ``i`` draws from
    ``SeedSequence(seed, spawn_key=(i, j))``. NumPy guarantees distinct
    spawn-key tuples yield independent streams, so top-ups collide neither
    with any flat child nor with each other, and the seed of a top-up
    replicate depends only on ``(seed, i, j)`` — never on batch sizes,
    execution order, shards, or how many replicates *other* points needed.
    Appending sweep values (grid refinement) leaves every existing point's
    top-up stream untouched.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if start < 1:
        raise ValueError(
            f"extension start must be >= 1 (after the initial replicates), "
            f"got {start}"
        )
    return [
        ReplicateTask(
            x=x,
            seed=np.random.SeedSequence(seed, spawn_key=(int(point_index), j)),
        )
        for j in range(start, start + count)
    ]


class SeriesValidator:
    """A :data:`~repro.api.execution.ResultHook` pinning the series key set.

    Every replicate of a sweep must report the same series names; a ragged
    key set would merge silently into misaligned series. The first sample
    seen fixes the expectation, every later one is compared against it.
    ``calls`` counts hook invocations so callers can detect backends that
    ignored (or only partially invoked) the hook and re-validate.
    """

    def __init__(self, runs: int) -> None:
        self.runs = runs
        self.expected: "set[str] | None" = None
        self.calls = 0

    def __call__(self, index: int, task: ReplicateTask, sample) -> None:
        self.calls += 1
        keys = set(sample)
        if self.expected is None:
            self.expected = keys
        elif keys != self.expected:
            raise RuntimeError(
                f"replicate at x={task.x!r} (run {index % self.runs}) returned "
                f"series {sorted(keys)}, expected {sorted(self.expected)}"
            )


def point_meets_target(
    samples: "Sequence[Mapping[str, float]]",
    replication: "ReplicationSpec",
    comparison: "ComparisonSpec | None" = None,
) -> bool:
    """Does this point's sample block meet its CI halfwidth target?

    Without a comparison every *marginal* series interval must meet the
    replication target. With one, the criterion is the *paired* halfwidth
    of every contrast-vs-baseline interval instead: the paired spread is
    what the relative claims rest on, and — replicates sharing one trace —
    it is typically far tighter, so paired sweeps stop with fewer
    replicates while settling the same orderings. The paired target is the
    comparison's own ``target_halfwidth`` when set, else the replication
    one.

    A point with fewer than two replicates never qualifies — its stderr is
    identically zero, which proves nothing about precision.

    The check is a pure function of the sample block, which is what lets
    every executor of an adaptive sweep — serial, sharded, or uncoordinated
    queue workers — replay the exact same top-up schedule from the same
    cached samples.
    """
    rep = replication
    if len(samples) < 2:
        return False
    if comparison is not None:
        # resolve first: it validates the baseline, so a typo'd name raises
        # ComparisonSeriesError here instead of a raw KeyError below
        contrasts = comparison.resolve_contrasts(tuple(samples[0]))
        baseline = [sample[comparison.baseline] for sample in samples]
        if comparison.target_halfwidth is not None:
            target, relative = comparison.target_halfwidth, comparison.relative
        else:
            target, relative = rep.target_halfwidth, rep.relative
        for name in contrasts:
            summary = paired_summary(
                [sample[name] for sample in samples],
                baseline,
                mode=comparison.mode,
                level=comparison.ci_level,
                method=comparison.method,
            )
            if not summary.meets(target, relative):
                return False
        return True
    for name in samples[0]:
        summary = point_summary(
            [sample[name] for sample in samples],
            level=rep.ci_level,
            method=rep.method,
        )
        if not summary.meets(rep.target_halfwidth, rep.relative):
            return False
    return True


def compute_comparisons(
    point_values: "Mapping[str, Sequence[Sequence[float]]]",
    comparison: "ComparisonSpec",
) -> "tuple[ComparisonResult, ...]":
    """Paired comparison payloads over per-point, per-replicate values.

    ``point_values`` maps each series name to its per-point lists of
    per-replicate values, replicate-aligned across series (every replicate
    of a sweep point reports every series — the shape both aggregators
    build). ``comparison`` is a
    :class:`~repro.api.specs.ComparisonSpec`; its baseline/contrast names
    are resolved against the series here, raising a clear
    :class:`ValueError` for unknown names. Pure arithmetic over the sample
    floats: cached and fresh samples compare bit-identically.
    """
    names = tuple(point_values)
    contrasts = comparison.resolve_contrasts(names)
    baseline_points = point_values[comparison.baseline]
    results = []
    for contrast in contrasts:
        summaries = [
            paired_summary(
                values,
                base,
                mode=comparison.mode,
                level=comparison.ci_level,
                method=comparison.method,
            )
            for values, base in zip(point_values[contrast], baseline_points)
        ]
        results.append(
            ComparisonResult(
                baseline=comparison.baseline,
                contrast=contrast,
                mode=comparison.mode,
                level=comparison.ci_level,
                values=tuple(s.mean for s in summaries),
                stderr=tuple(s.stderr for s in summaries),
                ci=tuple((s.ci.low, s.ci.high) for s in summaries),
                counts=tuple(s.n for s in summaries),
            )
        )
    return tuple(results)


def aggregate_samples(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    samples: Sequence[Mapping[str, float]],
    runs: int,
    notes: str = "",
    comparison: "ComparisonSpec | None" = None,
) -> FigureResult:
    """Fold flat per-replicate samples into a :class:`FigureResult`.

    ``samples`` is in task order (``runs`` consecutive entries per point,
    points in ``x_values`` order) — the exact list a backend returns for
    :func:`spawn_tasks`'s tasks. Aggregation is pure arithmetic over the
    sample floats, so samples that round-tripped through a JSON point cache
    aggregate bit-identically to freshly computed ones. ``comparison``
    additionally attaches paired contrast-vs-baseline payloads (see
    :func:`compute_comparisons`) without touching the marginal series.
    """
    x_values = list(x_values)
    if len(samples) != len(x_values) * runs:
        raise ValueError(
            f"{len(samples)} samples for {len(x_values)} points x {runs} runs"
        )
    collected: "dict[str, list[list[float]]]" = {}
    for i, _x in enumerate(x_values):
        point_samples: dict[str, list[float]] = {}
        for j in range(runs):
            sample = samples[i * runs + j]
            for name, value in sample.items():
                point_samples.setdefault(name, []).append(float(value))
        for name, values in point_samples.items():
            collected.setdefault(name, []).append(values)

    series = {}
    errors = {}
    for name, per_point in collected.items():
        stats = [mean_stderr(values) for values in per_point]
        series[name] = tuple(s.mean for s in stats)
        errors[name] = tuple(s.stderr for s in stats)

    return FigureResult(
        figure=figure,
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        series=series,
        errors=errors,
        notes=notes,
        # a 0-point partial (shard mode) has no series to resolve against
        comparisons=(
            compute_comparisons(collected, comparison)
            if comparison is not None and collected
            else ()
        ),
    )


def aggregate_point_summaries(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    point_samples: "Sequence[Sequence[Mapping[str, float]]]",
    ci_level: float,
    method: str = "t",
    notes: str = "",
    comparison: "ComparisonSpec | None" = None,
) -> FigureResult:
    """Fold *ragged* per-point samples into a CI-annotated :class:`FigureResult`.

    ``point_samples[i]`` holds point ``i``'s replicate sample mappings —
    lengths may differ across points (adaptive replication). Means and
    standard errors use the same arithmetic as :func:`aggregate_samples`,
    so a uniform-count input aggregates to identical series; on top of
    that every series gets per-point ``(low, high)`` confidence bounds at
    ``ci_level`` and the result records per-point replicate counts.
    ``comparison`` attaches paired payloads exactly as in
    :func:`aggregate_samples`.
    """
    x_values = list(x_values)
    if len(point_samples) != len(x_values):
        raise ValueError(
            f"{len(point_samples)} sample groups for {len(x_values)} points"
        )
    counts = []
    collected: "dict[str, list[list[float]]]" = {}
    for i, group in enumerate(point_samples):
        group = list(group)
        if not group:
            raise ValueError(f"sweep point {x_values[i]!r} has no samples")
        counts.append(len(group))
        point_values: dict[str, list[float]] = {}
        for sample in group:
            for name, value in sample.items():
                point_values.setdefault(name, []).append(float(value))
        for name, values in point_values.items():
            collected.setdefault(name, []).append(values)

    series = {}
    errors = {}
    ci = {}
    for name, per_point in collected.items():
        summaries = [
            point_summary(values, level=ci_level, method=method)
            for values in per_point
        ]
        series[name] = tuple(s.mean for s in summaries)
        errors[name] = tuple(s.stderr for s in summaries)
        ci[name] = tuple((s.ci.low, s.ci.high) for s in summaries)

    return FigureResult(
        figure=figure,
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        series=series,
        errors=errors,
        ci=ci,
        counts=tuple(counts),
        ci_level=float(ci_level),
        notes=notes,
        # a 0-point partial (shard mode) has no series to resolve against
        comparisons=(
            compute_comparisons(collected, comparison)
            if comparison is not None and collected
            else ()
        ),
    )


def sweep_experiment(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    replicate: Callable[[object, np.random.Generator], Mapping[str, float]],
    runs: int = 5,
    seed: int = 0,
    notes: str = "",
    backend: "ExecutionBackend | None" = None,
    comparison: "ComparisonSpec | None" = None,
) -> FigureResult:
    """Run ``replicate`` ``runs`` times per sweep point and average.

    Args:
        figure/title/x_label: metadata copied into the result.
        x_values: the sweep points.
        replicate: one independent experiment at a sweep point; returns a
            mapping of series name to measured value. Every replicate must
            return the same set of keys.
        runs: replicates per point (the paper uses 5 or 10).
        seed: master seed; see module docstring for the derivation scheme.
        notes: carried through to the result.
        backend: where the replicates execute (``None`` = in-process serial).
            The result is backend-independent: every task carries its
            pre-spawned child seed.
        comparison: optional :class:`~repro.api.specs.ComparisonSpec`
            attaching paired contrast-vs-baseline payloads to the result.

    Returns:
        A :class:`FigureResult` with per-series means and standard errors.
    """
    x_values = list(x_values)
    tasks = spawn_tasks(x_values, runs, seed)
    if backend is None:
        backend = SerialBackend()

    # Validate every replicate against the very first one — a ragged key set
    # within the first sweep point must fail too, not merge silently into
    # misaligned series. Running the check as a result hook fails fast: a
    # serial sweep aborts at the offending replicate instead of burning the
    # rest of a long run first.
    check_series = SeriesValidator(runs)
    samples = backend.run_replicates(replicate, tasks, on_result=check_series)

    if check_series.calls < len(tasks):
        # Backstop for third-party backends that ignore (or partially
        # invoke) on_result; skipped entirely when the hook already saw
        # every result — no double validation pass on large serial sweeps.
        for index, (task, sample) in enumerate(zip(tasks, samples)):
            check_series(index, task, sample)

    return aggregate_samples(
        figure, title, x_label, x_values, samples, runs, notes=notes,
        comparison=comparison,
    )
