"""Experiment engine: seeded multi-run parameter sweeps (§V-B's methodology).

Every quantitative figure of the paper is a sweep: vary one parameter
(network size, λ, T), run several independent replicates per point, and
average the total costs per algorithm. :func:`sweep_experiment` is that
engine; a figure module only supplies the *replicate function* mapping
``(x, rng) -> {series name: value}``.

Determinism: replicate ``j`` of sweep point ``i`` always receives the same
child generator (derived from one master seed through
``numpy.random.SeedSequence`` spawning), so figure results are exactly
reproducible and independent of how many other points are evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.analysis.stats import mean_stderr

__all__ = ["FigureResult", "sweep_experiment"]


@dataclass(frozen=True)
class FigureResult:
    """The reproduced data behind one paper figure (or table).

    Attributes:
        figure: short identifier, e.g. ``"fig15"``.
        title: human-readable description.
        x_label: meaning of :attr:`x_values`.
        x_values: sweep points (or time stamps for trajectory figures).
        series: mapping series name → y value per sweep point.
        errors: mapping series name → standard error per sweep point
            (empty for single-run figures).
        notes: free-text observations (paper expectation, caveats).
    """

    figure: str
    title: str
    x_label: str
    x_values: tuple
    series: Mapping[str, tuple]
    errors: Mapping[str, tuple] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self) -> None:
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(self.x_values)} x points"
                )
        for name, values in self.errors.items():
            if name not in self.series:
                raise ValueError(f"errors given for unknown series {name!r}")
            if len(values) != len(self.x_values):
                raise ValueError(f"errors for {name!r} misaligned with x values")

    def y(self, name: str) -> tuple:
        """The y series called ``name``."""
        return tuple(self.series[name])

    @property
    def series_names(self) -> tuple[str, ...]:
        """All series names in insertion order."""
        return tuple(self.series.keys())


def sweep_experiment(
    figure: str,
    title: str,
    x_label: str,
    x_values: Sequence,
    replicate: Callable[[object, np.random.Generator], Mapping[str, float]],
    runs: int = 5,
    seed: int = 0,
    notes: str = "",
) -> FigureResult:
    """Run ``replicate`` ``runs`` times per sweep point and average.

    Args:
        figure/title/x_label: metadata copied into the result.
        x_values: the sweep points.
        replicate: one independent experiment at a sweep point; returns a
            mapping of series name to measured value. Every replicate must
            return the same set of keys.
        runs: replicates per point (the paper uses 5 or 10).
        seed: master seed; see module docstring for the derivation scheme.
        notes: carried through to the result.

    Returns:
        A :class:`FigureResult` with per-series means and standard errors.
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    x_values = list(x_values)
    children = np.random.SeedSequence(seed).spawn(len(x_values) * runs)

    collected: "dict[str, list[list[float]]]" = {}
    for i, x in enumerate(x_values):
        point_samples: dict[str, list[float]] = {}
        for j in range(runs):
            rng = np.random.default_rng(children[i * runs + j])
            sample = replicate(x, rng)
            for name, value in sample.items():
                point_samples.setdefault(name, []).append(float(value))
        if collected and set(point_samples) != set(collected):
            raise RuntimeError(
                f"replicate at x={x!r} returned series {sorted(point_samples)}, "
                f"expected {sorted(collected)}"
            )
        for name, values in point_samples.items():
            collected.setdefault(name, []).append(values)

    series = {}
    errors = {}
    for name, per_point in collected.items():
        stats = [mean_stderr(values) for values in per_point]
        series[name] = tuple(s.mean for s in stats)
        errors[name] = tuple(s.stderr for s in stats)

    return FigureResult(
        figure=figure,
        title=title,
        x_label=x_label,
        x_values=tuple(x_values),
        series=series,
        errors=errors,
        notes=notes,
    )
