"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each ablation isolates one modelling or
algorithmic knob and measures its effect, using the same sweep engine and
reporting as the figure reproductions.

* routing strategy (nearest vs load-aware) under convex load,
* the inactive-server cache size of ONBR/ONTH,
* ONBR's epoch threshold factor θ/c,
* constant-β vs bandwidth-derived migration costs,
* demand correlation in the §II-D mobility model,
* a continuous sweep of the migration/creation cost ratio β/c.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostModel, bandwidth_migration_matrix
from repro.core.load import QuadraticLoad
from repro.core.routing import RoutingStrategy
from repro.core.simulator import simulate
from repro.algorithms import OffStat, OnBR, OnTH
from repro.api.registry import register_figure
from repro.experiments.figures import DEFAULT_SEED, _commuter_trace, _timezone_trace
from repro.experiments.runner import FigureResult, sweep_experiment
from repro.topology.generators import erdos_renyi
from repro.topology.rocketfuel import att_like_topology
from repro.workload.base import generate_trace
from repro.workload.mobility import MobilityScenario

__all__ = [
    "ablation_routing",
    "ablation_cache_size",
    "ablation_threshold",
    "ablation_migration_model",
    "ablation_mobility_correlation",
    "ablation_beta_over_c",
]


@register_figure("abl-routing", quick=dict(sizes=(50, 100), horizon=200, runs=3))
def ablation_routing(
    sizes=(50, 100, 200),
    horizon: int = 300,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """Nearest vs load-aware request routing under quadratic load.

    With convex load, piling requests on the latency-closest server is
    super-linear; load-aware routing should never be worse.
    """
    costs = CostModel.paper_default(load=QuadraticLoad())

    def replicate(n, rng):
        substrate = erdos_renyi(int(n), seed=rng)
        trace = _commuter_trace(substrate, horizon, sojourn, False, rng)
        return {
            "nearest": simulate(
                substrate, OnTH(), trace, costs,
                routing=RoutingStrategy.NEAREST, seed=rng,
            ).total_cost,
            "load-aware": simulate(
                substrate, OnTH(), trace, costs,
                routing=RoutingStrategy.LOAD_AWARE, seed=rng,
            ).total_cost,
        }

    return sweep_experiment(
        "abl-routing", "routing strategy under quadratic load (ONTH)",
        "network size", sizes, replicate, runs=runs, seed=seed,
        notes="load-aware routing balances convex load at equal latency cost",
        backend=backend,
    )


@register_figure("abl-cache", quick=dict(cache_sizes=(1, 3, 8), n=100, horizon=300, runs=3))
def ablation_cache_size(
    cache_sizes=(1, 2, 3, 5, 8),
    n: int = 200,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """Effect of the inactive-server FIFO cache size (paper fixes 3)."""
    costs = CostModel.paper_default()

    def replicate(size, rng):
        substrate = erdos_renyi(n, seed=rng)
        trace = _commuter_trace(substrate, horizon, sojourn, True, rng)
        return {
            "ONTH": simulate(
                substrate, OnTH(cache_size=int(size)), trace, costs, seed=rng
            ).total_cost,
            "ONBR": simulate(
                substrate, OnBR(cache_size=int(size)), trace, costs, seed=rng
            ).total_cost,
        }

    return sweep_experiment(
        "abl-cache", "inactive cache size sweep (commuter dynamic)",
        "cache size", cache_sizes, replicate, runs=runs, seed=seed,
        notes="paper fixes size 3; diminishing returns expected beyond that",
        backend=backend,
    )


@register_figure("abl-threshold", quick=dict(factors=(0.5, 2.0, 8.0), n=100, horizon=300, runs=3))
def ablation_threshold(
    factors=(0.5, 1.0, 2.0, 4.0, 8.0),
    n: int = 200,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """ONBR's epoch threshold θ = factor·c (paper fixes factor 2)."""
    costs = CostModel.paper_default()

    def replicate(factor, rng):
        substrate = erdos_renyi(n, seed=rng)
        trace = _commuter_trace(substrate, horizon, sojourn, True, rng)
        run = simulate(
            substrate, OnBR(threshold_factor=float(factor)), trace, costs, seed=rng
        )
        return {"ONBR total": run.total_cost}

    return sweep_experiment(
        "abl-threshold", "ONBR threshold factor sweep (θ = factor·c)",
        "θ/c", factors, replicate, runs=runs, seed=seed,
        notes="small θ reacts faster but pays more transitions",
        backend=backend,
    )


@register_figure("abl-migration", quick=dict(runs=3))
def ablation_migration_model(
    horizon: int = 300,
    sojourn: int = 15,
    period: int = 8,
    requests_per_round: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """Constant β vs bandwidth-derived per-pair migration costs.

    Uses the AT&T-like backbone (25 PoPs) whose T1/T2 links make the
    bandwidth-derived matrix heterogeneous; the matrix is scaled so its mean
    equals the constant β for a like-for-like comparison.
    """
    topo = att_like_topology(access_routers=False)
    base = CostModel(migration=40.0, creation=400.0, run_active=2.5, run_inactive=0.5)
    matrix = bandwidth_migration_matrix(topo)
    off_diagonal = matrix[~np.eye(topo.n, dtype=bool)]
    scaled = matrix * (base.migration / off_diagonal.mean())
    matrix_costs = CostModel(
        migration=base.migration,
        creation=base.creation,
        run_active=base.run_active,
        run_inactive=base.run_inactive,
        migration_matrix=scaled,
    )

    def replicate(_x, rng):
        trace = _timezone_trace(
            topo, horizon, sojourn, rng, period=period,
            requests_per_round=requests_per_round,
        )
        return {
            "constant β": simulate(topo, OnTH(), trace, base, seed=rng).total_cost,
            "bandwidth β(u,v)": simulate(
                topo, OnTH(), trace, matrix_costs, seed=rng
            ).total_cost,
        }

    return sweep_experiment(
        "abl-migration", "constant vs bandwidth-derived migration cost (ONTH)",
        "metric", ["total cost"], replicate, runs=runs, seed=seed,
        notes="distance-dependent β changes which moves are worthwhile",
        backend=backend,
    )


@register_figure("abl-beta", quick=dict(ratios=(0.1, 0.5, 1.0, 10.0), n=60, horizon=250, runs=3))
def ablation_beta_over_c(
    ratios=(0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 10.0),
    creation: float = 400.0,
    n: int = 100,
    horizon: int = 400,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """Continuous sweep of the paper's β<c vs β>c dichotomy.

    The paper evaluates two points (β/c = 0.1 and 10); this ablation sweeps
    the ratio continuously with ``c`` fixed, tracking ONTH's total cost and
    how many migrations it still performs. Migrations taper off as β
    approaches c and hit exactly zero beyond it (the pricer never migrates
    once β > c — a tested model invariant). Note that the *total* is not
    monotone in β: ONTH's small-epoch threshold is ``y·β``, so a very cheap
    β also makes the algorithm reconfigure myopically every few rounds —
    an ONTH coupling worth knowing about when transplanting the algorithm.
    """
    def replicate(ratio, rng):
        costs = CostModel(
            migration=float(ratio) * creation,
            creation=creation,
            run_active=2.5,
            run_inactive=0.5,
        )
        substrate = erdos_renyi(n, seed=rng)
        trace = _timezone_trace(substrate, horizon, sojourn, rng)
        run = simulate(substrate, OnTH(), trace, costs, seed=rng)
        return {
            "ONTH total": run.total_cost,
            "migrations": float(run.total_migrations),
        }

    return sweep_experiment(
        "abl-beta", "migration/creation cost ratio sweep (ONTH, time zones)",
        "β/c", ratios, replicate, runs=runs, seed=seed,
        notes="migrations must vanish for β/c > 1 (§II-C)",
        backend=backend,
    )


@register_figure("abl-mobility", quick=dict(correlations=(0.0, 0.5, 1.0), n=60, horizon=250, runs=3))
def ablation_mobility_correlation(
    correlations=(0.0, 0.25, 0.5, 0.75, 1.0),
    n: int = 100,
    n_users: int = 20,
    horizon: int = 400,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
) -> FigureResult:
    """Benefit of adaptation vs crowd correlation in the mobility model.

    With i.i.d. churn (correlation 0) demand has no structure to exploit;
    a coherent crowd (correlation 1) is where migration pays off, so the
    gap between the static baseline and ONTH should widen.
    """
    costs = CostModel.paper_default()

    def replicate(corr, rng):
        substrate = erdos_renyi(n, seed=rng)
        scenario = MobilityScenario(
            substrate, n_users=n_users, mean_sojourn=10.0,
            correlation=float(corr), attractor_period=50,
        )
        trace = generate_trace(scenario, horizon, rng)
        onth = simulate(substrate, OnTH(), trace, costs, seed=rng)
        offstat = simulate(substrate, OffStat(), trace, costs, seed=rng)
        return {
            "ONTH": onth.total_cost,
            "OFFSTAT": offstat.total_cost,
            "OFFSTAT/ONTH": offstat.total_cost / onth.total_cost,
        }

    return sweep_experiment(
        "abl-mobility", "mobility correlation sweep (ONTH vs static)",
        "correlation", correlations, replicate, runs=runs, seed=seed,
        notes="adaptivity should pay off more as the crowd moves coherently",
        backend=backend,
    )
