"""Command-line figure regeneration: ``python -m repro.experiments <figure>``.

Examples::

    python -m repro.experiments fig03            # quick-scale reproduction
    python -m repro.experiments fig15 --paper    # exact caption parameters
    python -m repro.experiments rocketfuel
    python -m repro.experiments --list

Quick scale shrinks network sizes, horizons and run counts to keep any
single figure under roughly a minute while preserving its qualitative
shape; ``--paper`` uses the caption parameters recorded in
:mod:`repro.experiments.figures`.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ablations, figures
from repro.experiments.reporting import format_figure

#: figure id -> (callable, quick-scale overrides)
_REGISTRY: dict = {
    "fig01": (figures.figure01, dict(n=300, period=10, sojourn=10, horizon=400,
                                     sample_every=10)),
    "fig02": (figures.figure02, dict(n=200, period=10, sojourn=10, horizon=400,
                                     sample_every=10)),
    "fig03": (figures.figure03, dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)),
    "fig04": (figures.figure04, dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)),
    "fig05": (figures.figure05, dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)),
    "fig06": (figures.figure06, dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)),
    "fig07": (figures.figure07, dict(periods=(4, 8, 12), n=300, horizon=300,
                                     sojourn=10, runs=3)),
    "fig08": (figures.figure08, dict(lambdas=(1, 5, 20, 50), n=100, period=8,
                                     horizon=400, runs=3)),
    "fig09": (figures.figure09, dict(lambdas=(1, 5, 20, 50), n=100, period=8,
                                     horizon=400, runs=3)),
    "fig10": (figures.figure10, dict(lambdas=(1, 5, 20, 50), n=100, period=8,
                                     horizon=400, runs=3)),
    "fig11": (figures.figure11, dict(lambdas=(1, 5, 20, 50, 100, 200), runs=5)),
    "fig12": (figures.figure12, dict(n=100, horizon=300, max_servers=10)),
    "fig13": (figures.figure13, dict(runs=5)),
    "fig14": (figures.figure14, dict(runs=5)),
    "fig15": (figures.figure15, dict(runs=5)),
    "fig16": (figures.figure16, dict(runs=5)),
    "fig17": (figures.figure17, dict(runs=5)),
    "fig18": (figures.figure18, dict(runs=5)),
    "fig19": (figures.figure19, dict(runs=5)),
    "rocketfuel": (figures.rocketfuel_table, dict(horizon=400, runs=2)),
    "abl-routing": (ablations.ablation_routing, dict(sizes=(50, 100), horizon=200,
                                                     runs=3)),
    "abl-cache": (ablations.ablation_cache_size, dict(cache_sizes=(1, 3, 8), n=100,
                                                      horizon=300, runs=3)),
    "abl-threshold": (ablations.ablation_threshold, dict(factors=(0.5, 2.0, 8.0),
                                                         n=100, horizon=300, runs=3)),
    "abl-migration": (ablations.ablation_migration_model, dict(runs=3)),
    "abl-mobility": (ablations.ablation_mobility_correlation,
                     dict(correlations=(0.0, 0.5, 1.0), n=60, horizon=250, runs=3)),
    "abl-beta": (ablations.ablation_beta_over_c,
                 dict(ratios=(0.1, 0.5, 1.0, 10.0), n=60, horizon=250, runs=3)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table of the paper's evaluation.",
    )
    parser.add_argument(
        "figure",
        nargs="?",
        help="figure id (fig01..fig19, rocketfuel, abl-*); see --list",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the exact caption parameters instead of the quick scale",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render the series as an ASCII chart",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list or not args.figure:
        for name, (fn, _quick) in sorted(_REGISTRY.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<14} {doc}")
        return 0

    key = args.figure.lower()
    if key == "all":
        return _run_all(args)
    if key not in _REGISTRY:
        print(f"unknown figure {args.figure!r}; use --list", file=sys.stderr)
        return 2

    _run_one(key, args)
    return 0


def _run_one(key: str, args) -> None:
    fn, quick = _REGISTRY[key]
    kwargs = {} if args.paper else dict(quick)
    if args.seed is not None:
        kwargs["seed"] = args.seed

    started = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - started
    print(format_figure(result))
    if args.plot:
        from repro.experiments.plotting import render_figure_chart

        print()
        print(render_figure_chart(result))
    print(f"  ({elapsed:.1f}s, {'paper' if args.paper else 'quick'} scale)")


def _run_all(args) -> int:
    """Regenerate every registered figure in sequence (`all`)."""
    started = time.perf_counter()
    for i, key in enumerate(sorted(_REGISTRY)):
        if i:
            print()
        _run_one(key, args)
    total = time.perf_counter() - started
    print(f"\nregenerated {len(_REGISTRY)} experiments in {total:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
