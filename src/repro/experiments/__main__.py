"""Command-line experiment runner: ``python -m repro.experiments``.

Two modes:

* **figure regeneration** — rerun a registered reproduction by id::

      python -m repro.experiments fig03            # quick-scale reproduction
      python -m repro.experiments fig15 --paper    # exact caption parameters
      python -m repro.experiments fig03 --workers 4 --runs 10
      python -m repro.experiments rocketfuel --json
      python -m repro.experiments --list

* **declarative runs** — compose any registered policy/scenario/topology
  triple (plus derived metrics) without writing code::

      python -m repro.experiments run --policy onth --scenario commuter \\
          --topology erdos_renyi:n=200 --horizon 200
      python -m repro.experiments run --policy onth --policy onbr \\
          --topology erdos_renyi:n=100 --sweep scenario.sojourn=5,10,20 \\
          --runs 5 --workers 4 --json
      python -m repro.experiments run --policy onth --topology line:n=5 \\
          --metric cost_ratio_vs:reference=OPT --sweep scenario.sojourn=2,5

* **inventory** — print every registered component with its parameters::

      python -m repro.experiments list
      python -m repro.experiments list metrics

* **cache maintenance** — inspect or trim a ``--cache-dir``::

      python -m repro.experiments cache stats --cache-dir ~/.cache/repro
      python -m repro.experiments cache prune --cache-dir ~/.cache/repro \\
          --max-entries 5000 --max-age 604800
      python -m repro.experiments cache clear --cache-dir ~/.cache/repro

* **trace tooling** — validate, summarise or convert external request logs
  for the ``replay`` scenario::

      python -m repro.experiments trace validate requests.csv
      python -m repro.experiments trace stats requests.jsonl --json
      python -m repro.experiments trace convert requests.csv \\
          --out requests.npz --nodes 50 --mapping hash
      python -m repro.experiments run --policy onth --topology line:n=5 \\
          --scenario replay:path=requests.csv

Quick scale shrinks network sizes, horizons and run counts to keep any
single figure under roughly a minute while preserving its qualitative
shape; ``--paper`` uses the caption parameters registered next to each
figure function. ``--workers N`` fans sweep replicates out over N processes
(results are bit-identical to the serial run), ``--runs`` overrides the
replicate count at any scale and ``--json`` emits the machine-readable
result including the resolved spec. ``--cache-dir DIR`` memoizes results on
disk keyed on the spec (``--no-cache`` bypasses an enabled cache): whole
sweeps *and* every individual sweep point, so an interrupted or partially
invalidated sweep resumes from the per-point entries instead of restarting
(``--no-resume`` restores all-or-nothing caching). ``--shard I/N`` computes
only every N-th sweep point starting at the I-th (1-based) into the shared
cache directory — run the N shards as N independent processes or CI jobs,
then rerun without ``--shard`` to assemble the full figure from the warm
cache, bit-identical to a serial run.

Confidence-aware replication (both modes): ``--ci LEVEL`` attaches
per-point confidence intervals to the result (``±`` halfwidth columns in
tables, shaded bands with ``--plot``); ``--target-halfwidth X`` (absolute)
or ``X%`` (relative to the mean) additionally makes replication adaptive —
every sweep point tops up replicates, cache-first, until its CI meets the
target or hits ``--max-runs`` — and the per-point replicate counts are
reported on stderr. ``--ci-method bootstrap`` swaps the Student-t interval
for a BCa bootstrap.

Paired comparisons (both modes): ``--compare BASELINE`` reports, next to
the marginal series, the *paired* per-replicate difference of every other
series against the ``BASELINE`` series (``--compare-mode ratio`` for
ratios) with a paired confidence interval — policies share each
replicate's trace, so these intervals are far tighter than the marginal
ones. Combined with ``--target-halfwidth``, adaptive replication stops as
soon as the paired intervals (not the marginal ones) meet the target —
same conclusions, fewer simulated replicates. Comparisons reuse the exact
replicate samples (and cache entries) of a plain run.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.stats import CI_METHODS, COMPARISON_MODES
from repro.api.cache import ResultCache
from repro.api.execution import ProcessPoolBackend
from repro.api.registry import (
    FIGURES,
    METRICS,
    POLICIES,
    SCENARIOS,
    TOPOLOGIES,
    FigureEntry,
    UnknownNameError,
    list_metrics,
    list_policies,
    list_scenarios,
    list_topologies,
    normalize_name,
)
from repro.api.specs import (
    ComparisonSeriesError,
    ComparisonSpec,
    CostSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
    parse_component,
    parse_value,
)
from repro.experiments.reporting import format_figure

#: figure id -> (callable, quick-scale overrides); materialised from the
#: figure registry so the inventory lives next to the figure functions.
#: Kept as a plain module-level dict (a one-time snapshot) so callers can
#: inspect or monkeypatch the CLI's inventory independently of the live
#: registry; figures registered after this module imports are reachable
#: through repro.api.FIGURES but not through the CLI.
_REGISTRY: dict = {name: entry for name, entry in FIGURES.items()}


def _backend_for(workers: "int | None"):
    """The execution backend selected by ``--workers`` (None or 1 = serial)."""
    if workers is None or workers == 1:
        return None
    return ProcessPoolBackend(workers)


def _backend_from_args(args):
    """The backend selected by ``--workers``/``--queue``; they conflict.

    Callers must have rejected the combination already (see
    :func:`_validate_backend_args`) — both flags claim the same decision,
    and silently preferring one would mislead.
    """
    queue = getattr(args, "queue", None)
    if queue is not None:
        from repro.api.execution import QueueBackend

        return QueueBackend(queue)
    return _backend_for(getattr(args, "workers", None))


def _validate_backend_args(args) -> None:
    """Reject ``--queue`` + ``--workers`` (one execution strategy at a time)."""
    if getattr(args, "queue", None) is not None and getattr(
        args, "workers", None
    ) is not None:
        raise ValueError(
            "--queue and --workers are mutually exclusive: the queue "
            "backend already fans out to every worker process on the "
            "queue file"
        )


def _worker_count(text: str) -> int:
    """argparse type for ``--workers``: a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (``--runs``, ...).

    Keeps ``--runs 0`` a clean exit-2 flag error instead of a
    ``ValueError`` traceback out of the sweep engine mid-run.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_queue(text: str) -> str:
    """argparse type for ``--queue PATH``: the queue database file.

    Rejects the obviously-wrong shapes up front (empty, an existing
    directory) with a one-line flag error; everything else is handed to
    the broker, whose own failures the commands turn into exit 2.
    """
    from pathlib import Path

    value = text.strip()
    if not value:
        raise argparse.ArgumentTypeError("queue path must not be empty")
    if Path(value).expanduser().is_dir():
        raise argparse.ArgumentTypeError(
            f"queue path {text!r} is a directory; pass a database file path"
        )
    return value


def _cache_for(args) -> "ResultCache | None":
    """The result cache selected by ``--cache-dir`` / ``--no-cache``."""
    if getattr(args, "no_cache", False) or not getattr(args, "cache_dir", None):
        return None
    return ResultCache(args.cache_dir)


def _parse_shard(text: str) -> "tuple[int, int]":
    """argparse type for ``--shard I/N`` (1-based): returns 0-based (I-1, N)."""
    index, slash, count = text.partition("/")
    try:
        if not slash:
            raise ValueError(text)
        index, count = int(index), int(count)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 1/4), got {text!r}"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise argparse.ArgumentTypeError(
            f"shard index must satisfy 1 <= I <= N, got {text!r}"
        )
    return (index - 1, count)


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help=(
            "memoize results on disk under DIR, keyed on the spec — whole "
            "sweeps and individual sweep points; an identical re-run loads "
            "instead of simulating, a partial one resumes"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass --cache-dir (force a fresh simulation, store nothing)",
    )
    parser.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="I/N",
        help=(
            "compute only every N-th sweep point starting at the I-th "
            "(1-based) into the shared --cache-dir; run all N shards as "
            "independent processes, then rerun without --shard to assemble"
        ),
    )


def _parse_ci_level(text: str) -> float:
    """argparse type for ``--ci``: a confidence level in (0, 1)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid level: {text!r}")
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(
            f"confidence level must be in (0, 1), got {text!r}"
        )
    return value


def _parse_halfwidth(text: str) -> "tuple[float, bool]":
    """argparse type for ``--target-halfwidth X[%]``: (value, relative)."""
    raw = text.strip()
    relative = raw.endswith("%")
    if relative:
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number or percentage (e.g. 50 or 5%), got {text!r}"
        )
    if relative:
        value /= 100.0
    # `not value > 0` (rather than `value <= 0`) also rejects NaN, whose
    # comparisons are all false.
    if not value > 0 or value == float("inf"):
        raise argparse.ArgumentTypeError(
            f"target halfwidth must be positive and finite, got {text!r}"
        )
    return (value, relative)


#: --max-runs fallback when adaptive replication is requested without one.
DEFAULT_MAX_RUNS = 30


def _add_confidence_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ci", type=_parse_ci_level, default=None, metavar="LEVEL",
        help=(
            "attach per-point confidence intervals at LEVEL (e.g. 0.95) to "
            "the result: ± columns in tables, shaded bands with --plot"
        ),
    )
    parser.add_argument(
        "--target-halfwidth", type=_parse_halfwidth, default=None,
        metavar="X[%]",
        help=(
            "adaptive replication: top every sweep point up with extra "
            "replicates until its CI halfwidth is <= X (absolute) or X%% "
            "of the mean (with the %% suffix), capped by --max-runs"
        ),
    )
    parser.add_argument(
        "--max-runs", type=int, default=None, metavar="N",
        help=(
            "adaptive replication cap per point "
            f"(default {DEFAULT_MAX_RUNS} when --target-halfwidth is set)"
        ),
    )
    parser.add_argument(
        "--ci-method", choices=CI_METHODS, default="t",
        help="interval estimator: Student-t (default) or BCa bootstrap",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help=(
            "report paired comparisons of every other series against the "
            "BASELINE series (policies share each replicate's trace, so "
            "paired intervals are much tighter than marginal ones); with "
            "--target-halfwidth, adaptive replication stops on the paired "
            "halfwidths instead of the marginal ones"
        ),
    )
    parser.add_argument(
        "--compare-mode", choices=COMPARISON_MODES, default="diff",
        help=(
            "paired statistic: per-replicate difference contrast-baseline "
            "(default) or ratio contrast/baseline"
        ),
    )


def _comparison_for(args) -> "ComparisonSpec | None":
    """The :class:`ComparisonSpec` requested by ``--compare``."""
    baseline = getattr(args, "compare", None)
    if baseline is None:
        return None
    level = getattr(args, "ci", None)
    return ComparisonSpec(
        baseline=baseline,
        mode=args.compare_mode,
        ci_level=level if level is not None else 0.95,
        method=args.ci_method,
    )


def _replication_for(args) -> "ReplicationSpec | None":
    """The :class:`ReplicationSpec` requested by the confidence flags."""
    target = getattr(args, "target_halfwidth", None)
    level = getattr(args, "ci", None)
    if target is None and level is None:
        return None
    halfwidth, relative = target if target is not None else (None, False)
    max_runs = getattr(args, "max_runs", None)
    if halfwidth is not None and max_runs is None:
        max_runs = DEFAULT_MAX_RUNS
    return ReplicationSpec(
        ci_level=level if level is not None else 0.95,
        target_halfwidth=halfwidth,
        relative=relative,
        max_runs=max_runs,
        method=args.ci_method,
    )


def _validate_confidence_args(args) -> None:
    """Surface bad confidence-flag combinations before anything simulates.

    Flags that would be silently dead are hard errors: a user passing
    ``--max-runs`` without ``--target-halfwidth`` (or ``--ci-method``
    without any confidence flag) believes adaptivity is active when
    nothing would happen.
    """
    target = getattr(args, "target_halfwidth", None)
    level = getattr(args, "ci", None)
    runs = getattr(args, "runs", None)
    max_runs = getattr(args, "max_runs", None)
    if max_runs is not None and target is None:
        raise ValueError(
            "--max-runs only caps adaptive replication; it needs "
            "--target-halfwidth"
        )
    compare = getattr(args, "compare", None)
    if (
        getattr(args, "ci_method", "t") != "t"
        and target is None
        and level is None
        and compare is None
    ):
        raise ValueError(
            "--ci-method has no effect without --ci, --target-halfwidth or "
            "--compare"
        )
    if getattr(args, "compare_mode", "diff") != "diff" and compare is None:
        raise ValueError("--compare-mode has no effect without --compare")
    _replication_for(args)  # ReplicationSpec validation (levels, caps)
    _comparison_for(args)   # ComparisonSpec validation (baseline, mode)
    if (
        target is not None
        and runs is not None
        and max_runs is not None
        and max_runs < runs
    ):
        raise ValueError(
            f"--max-runs ({max_runs}) must be >= --runs ({runs})"
        )


def _figure_runs(key: str, args) -> "int | None":
    """The replicate count figure ``key`` will use, if statically known.

    ``--runs`` wins; otherwise the quick-scale override applies (unless
    ``--paper``), falling back to the figure function's own default.
    """
    if args.runs is not None:
        return args.runs
    fn, quick = _REGISTRY[key]
    if not args.paper and "runs" in quick:
        return quick["runs"]
    parameter = inspect.signature(fn).parameters.get("runs")
    if parameter is not None and isinstance(parameter.default, int):
        return parameter.default
    return None


def _validate_figure_replication(key: str, args) -> None:
    """Reject --max-runs below figure ``key``'s effective replicate count.

    Without this, the conflict would only surface as a mid-run
    :class:`ValueError` traceback out of the sweep engine — every other
    bad flag combination exits cleanly with code 2.
    """
    replication = _replication_for(args)
    if replication is None or not replication.adaptive:
        return
    runs = _figure_runs(key, args)
    if runs is not None and replication.initial_runs(runs) > replication.max_runs:
        raise ValueError(
            f"--max-runs ({replication.max_runs}) is below {key}'s replicate "
            f"count ({runs}); raise --max-runs or lower --runs"
        )


def _replication_stats_line(result) -> str:
    """The per-point replicate summary printed after a confidence sweep."""
    counts = [int(n) for n in result.counts]
    low, high = min(counts), max(counts)
    spread = str(low) if low == high else f"{low}-{high}"
    return (
        f"replicates/point: {spread} "
        f"(total {sum(counts)} across {len(counts)} points)"
    )


def _point_stats_line(cache: ResultCache) -> str:
    """The per-point hit/miss summary printed to stderr after a sweep.

    Derived purely from the cache counters: every sweep point is probed
    exactly once per resumable run, so hits + misses is the point total and
    misses not recomputed here belong to other shards.
    """
    total = cache.point_hits + cache.point_misses
    pending = cache.point_misses - cache.point_stores
    line = (
        f"points: {cache.point_hits}/{total} cached, "
        f"{cache.point_stores} computed"
    )
    if pending > 0:
        line += f", {pending} left to other shards"
    if cache.extension_hits or cache.extension_stores:
        line += (
            f"; top-up batches: {cache.extension_hits} cached, "
            f"{cache.extension_stores} computed"
        )
    return line


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a figure/table of the paper's evaluation.",
        epilog=(
            "There is also a declarative subcommand composing any registered "
            "policy/scenario/topology triple: "
            "'python -m repro.experiments run --help'."
        ),
    )
    parser.add_argument(
        "figure",
        nargs="?",
        help="figure id (fig01..fig19, rocketfuel, abl-*); see --list",
    )
    parser.add_argument(
        "--paper",
        action="store_true",
        help="use the exact caption parameters instead of the quick scale",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--runs", type=_positive_int, default=None,
        help="override the replicate count per sweep point",
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=None,
        help="run sweep replicates on N worker processes (default: serial)",
    )
    parser.add_argument(
        "--queue", type=_parse_queue, default=None, metavar="PATH",
        help=(
            "run sweep replicates through the work queue at PATH; any "
            "'worker' processes on the same queue file share the load; "
            "incompatible with --workers"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as machine-readable JSON",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also render the series as an ASCII chart",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    _add_cache_flags(parser)
    _add_confidence_flags(parser)
    return parser


def _add_spec_flags(parser: argparse.ArgumentParser) -> None:
    """The flags composing a declarative :class:`SweepSpec`.

    Shared verbatim between ``run`` (execute now) and ``enqueue`` (publish
    onto a work queue) so the two commands describe identical sweeps —
    same defaults, same cache keys.
    """
    parser.add_argument(
        "--policy", action="append", required=True, metavar="KIND[:PARAMS]",
        help=(
            "policy to run (repeatable); the reserved param 'label' names "
            f"the result series; known: {', '.join(list_policies())}"
        ),
    )
    parser.add_argument(
        "--scenario", default="commuter", metavar="KIND[:PARAMS]",
        help=f"demand scenario; known: {', '.join(list_scenarios())}",
    )
    parser.add_argument(
        "--topology", default="erdos_renyi:n=100", metavar="KIND[:PARAMS]",
        help=f"substrate topology; known: {', '.join(list_topologies())}",
    )
    parser.add_argument(
        "--metric", action="append", default=None, metavar="KIND[:PARAMS]",
        help=(
            "derived result metric (repeatable; default: total_cost per "
            "policy); the reserved param 'label' renames/prefixes the "
            f"series; known: {', '.join(list_metrics())}"
        ),
    )
    parser.add_argument("--horizon", type=int, default=500, help="rounds to simulate")
    parser.add_argument(
        "--routing", default="nearest", choices=("nearest", "load-aware", "load_aware"),
        help="request routing strategy",
    )
    parser.add_argument("--beta", type=float, default=40.0, help="migration cost β")
    parser.add_argument("--creation", type=float, default=400.0, help="creation cost c")
    parser.add_argument(
        "--run-active", type=float, default=2.5, help="per-round active running cost"
    )
    parser.add_argument(
        "--run-inactive", type=float, default=0.5,
        help="per-round inactive running cost",
    )
    parser.add_argument(
        "--load", default="linear", choices=("linear", "quadratic", "power"),
        help="server load model",
    )
    parser.add_argument(
        "--load-exponent", type=float, default=1.0,
        help="exponent for --load power",
    )
    parser.add_argument(
        "--sweep", default=None, metavar="PARAM=V1,V2,...",
        help=(
            "sweep a spec parameter, e.g. scenario.sojourn=5,10,20 or "
            "topology.n=100,200 (default: single point)"
        ),
    )
    parser.add_argument(
        "--runs", type=_positive_int, default=3, help="replicates per point"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments run",
        description=(
            "Run any registered policy/scenario/topology combination from a "
            "declarative spec. Component arguments take the form "
            "kind[:key=value,...], e.g. erdos_renyi:n=200,p=0.02."
        ),
    )
    _add_spec_flags(parser)
    parser.add_argument(
        "--workers", type=_worker_count, default=None,
        help="run replicates on N worker processes (default: serial)",
    )
    parser.add_argument(
        "--queue", type=_parse_queue, default=None, metavar="PATH",
        help=(
            "run replicates through the work queue at PATH (see the "
            "'worker' subcommand): this process drains blocks itself and "
            "any workers on the same queue file help; incompatible with "
            "--workers"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the result (with the resolved spec) as JSON",
    )
    parser.add_argument(
        "--plot", action="store_true", help="also render an ASCII chart"
    )
    _add_cache_flags(parser)
    _add_confidence_flags(parser)
    parser.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help=(
            "reuse per-point cache entries and recompute only missing sweep "
            "points (the default whenever --cache-dir is set)"
        ),
    )
    parser.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="all-or-nothing caching: ignore and do not write per-point entries",
    )
    return parser


#: first-positional subcommands; anything else is treated as a figure id.
_SUBCOMMANDS = {
    "run": lambda argv: run_command(argv),
    "list": lambda argv: list_command(argv),
    "cache": lambda argv: cache_command(argv),
    "trace": lambda argv: trace_command(argv),
    "enqueue": lambda argv: enqueue_command(argv),
    "worker": lambda argv: worker_command(argv),
    "serve": lambda argv: serve_command(argv),
    "report": lambda argv: report_command(argv),
}


def main(argv: "list[str] | None" = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])

    args = build_parser().parse_args(argv)

    if args.shard is not None and _cache_for(args) is None:
        print(
            "error: --shard needs a shared --cache-dir (without --no-cache)",
            file=sys.stderr,
        )
        return 2
    try:
        _validate_backend_args(args)
        _validate_confidence_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.list or not args.figure:
        for name, (fn, _quick) in sorted(_REGISTRY.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<14} {doc}")
        return 0

    if args.figure.lower() == "all":
        return _run_all(args)
    try:
        key = _lookup_figure(args.figure)
    except UnknownNameError as error:
        print(
            f"{error}; use --list, or one of the subcommands: "
            f"{', '.join(sorted(_SUBCOMMANDS))}",
            file=sys.stderr,
        )
        return 2
    try:
        _validate_figure_replication(key, args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        _run_one(key, args)
    except ComparisonSeriesError as error:
        # a typo'd --compare baseline only surfaces once the figure's
        # series exist; still a user error, not a traceback
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ImportError as error:
        # optimizer figures with backend=pulp but no [opt] extra: the
        # message already names the install command
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _lookup_figure(name: str) -> str:
    """Resolve ``name`` to a ``_REGISTRY`` key with the registry's leniency.

    Matches case-insensitively with ``-``/``_`` interchangeable, and raises
    :class:`UnknownNameError` (typo suggestions included) otherwise.
    """
    normalized = normalize_name(name)
    for key in _REGISTRY:
        if normalize_name(key) == normalized:
            return key
    # Aliases are not enumerated by the snapshot; resolve through the live
    # registry and map the entry back to its primary key.
    try:
        entry = FIGURES.resolve(name)
    except UnknownNameError:
        raise UnknownNameError("figure", name, tuple(sorted(_REGISTRY))) from None
    for key, value in _REGISTRY.items():
        if value is entry:
            return key
    raise UnknownNameError("figure", name, tuple(sorted(_REGISTRY)))


def _figure_kwargs(key: str, args, cache) -> "dict":
    """The keyword arguments one figure function takes from CLI flags.

    Shared between the figure mode and the ``report`` subcommand so both
    thread seed/runs/backend/cache/replication/comparison identically;
    flags a figure does not accept are noted on stderr and dropped.
    """
    fn, quick = _REGISTRY[key]
    kwargs = {} if args.paper else dict(quick)
    accepted = set(inspect.signature(fn).parameters)
    for flag, option, value in (
        ("seed", "seed", args.seed),
        ("runs", "runs", args.runs),
        ("backend", "workers/--queue", _backend_from_args(args)),
        ("cache", "cache-dir", cache),
        ("shard", "shard", getattr(args, "shard", None)),
        ("replication", "ci/--target-halfwidth", _replication_for(args)),
        ("comparison", "compare", _comparison_for(args)),
    ):
        if value is None:
            continue
        if flag in accepted:
            kwargs[flag] = value
        else:
            print(f"note: {key} does not take --{option}; ignored",
                  file=sys.stderr)
    return kwargs


def _run_one(key: str, args, emit_json: bool = True) -> "dict | None":
    """Run one figure; returns the JSON payload when ``--json`` is active."""
    fn, _quick = _REGISTRY[key]
    cache = _cache_for(args)
    kwargs = _figure_kwargs(key, args, cache)

    started = time.perf_counter()
    result = fn(**kwargs)
    elapsed = time.perf_counter() - started
    if cache is not None and (cache.point_hits or cache.point_misses):
        print(_point_stats_line(cache), file=sys.stderr)
    if getattr(result, "counts", ()):
        print(_replication_stats_line(result), file=sys.stderr)
    if args.json:
        if args.plot:
            print("note: --plot is ignored with --json", file=sys.stderr)
        payload = result.to_dict()
        payload["params"] = {
            k: (
                v.to_dict()
                if isinstance(v, (ReplicationSpec, ComparisonSpec))
                else v
            )
            for k, v in kwargs.items()
            # execution/orchestration knobs, not figure parameters
            if k not in ("backend", "cache", "shard")
        }
        payload["elapsed_seconds"] = round(elapsed, 3)
        if emit_json:
            print(json.dumps(payload, indent=2))
        return payload
    print(format_figure(result))
    if args.plot:
        from repro.experiments.plotting import (
            render_comparison_chart,
            render_figure_chart,
        )

        print()
        print(render_figure_chart(result))
        if result.has_comparisons:
            print()
            print(render_comparison_chart(result))
    print(f"  ({elapsed:.1f}s, {'paper' if args.paper else 'quick'} scale)")
    return None


def _run_all(args) -> int:
    """Regenerate every registered figure in sequence (`all`).

    With ``--json`` the output is one JSON array (stdout stays a single
    machine-readable document; the summary line goes to stderr).
    """
    started = time.perf_counter()
    payloads = []
    for key in sorted(_REGISTRY):
        try:
            _validate_figure_replication(key, args)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    for i, key in enumerate(sorted(_REGISTRY)):
        if i and not args.json:
            print()
        try:
            payloads.append(_run_one(key, args, emit_json=False))
        except ComparisonSeriesError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    total = time.perf_counter() - started
    if args.json:
        print(json.dumps(payloads, indent=2))
        print(f"regenerated {len(_REGISTRY)} experiments in {total:.0f}s",
              file=sys.stderr)
    else:
        print(f"\nregenerated {len(_REGISTRY)} experiments in {total:.0f}s")
    return 0


# ---------------------------------------------------------------------------
# The declarative `run` subcommand
# ---------------------------------------------------------------------------


def _parse_sweep(text: str) -> "tuple[str, tuple]":
    """Parse ``--sweep param=v1,v2,...`` into (parameter path, values)."""
    param, eq, tail = text.partition("=")
    param = param.strip()
    values = tuple(
        parse_value(item) for item in tail.split(",") if item.strip()
    )
    if not eq or not param or not values:
        raise ValueError(
            f"malformed --sweep {text!r}; expected param=v1,v2,... "
            "(e.g. scenario.sojourn=5,10,20)"
        )
    return param, values


def spec_from_args(args) -> SweepSpec:
    """Build the :class:`SweepSpec` described by ``run`` subcommand flags."""
    policies = []
    for item in args.policy:
        kind, params = parse_component(item)
        # "label" is reserved for the series name, so same-name variants can
        # be disambiguated from the CLI: --policy onth:cache_size=5,label=ONTH-5
        label = params.pop("label", None)
        policies.append(PolicySpec(kind, params, label=label))
    metrics = []
    for item in args.metric or ():
        kind, params = parse_component(item)
        # same reserved param as --policy: label renames/prefixes the series
        label = params.pop("label", None)
        metrics.append(MetricSpec(kind, params, label=label))
    topo_kind, topo_params = parse_component(args.topology)
    scen_kind, scen_params = parse_component(args.scenario)
    experiment = ExperimentSpec(
        topology=TopologySpec(topo_kind, topo_params),
        scenario=ScenarioSpec(scen_kind, scen_params),
        policies=tuple(policies),
        costs=CostSpec(
            migration=args.beta,
            creation=args.creation,
            run_active=args.run_active,
            run_inactive=args.run_inactive,
            load=args.load,
            load_exponent=args.load_exponent,
        ),
        horizon=args.horizon,
        routing=args.routing,
        seed=args.seed,
        **({"metrics": tuple(metrics)} if metrics else {}),
    )
    parameter, values = (None, ("total cost",))
    if args.sweep:
        parameter, values = _parse_sweep(args.sweep)
    return SweepSpec(
        experiment=experiment,
        parameter=parameter,
        values=values,
        runs=args.runs,
        seed=args.seed,
        figure="run",
        replication=_replication_for(args),
        comparison=_comparison_for(args),
    )


def _validated_spec(args) -> SweepSpec:
    """Build and pre-flight the sweep a ``run``/``enqueue`` call describes.

    Builds every sweep point's components up front (substrate, scenario,
    policies, metrics — everything but the simulation) so typos and bad
    values anywhere in ``--sweep`` fail fast with a one-line message
    instead of a traceback after earlier points already ran — or, worse
    for ``enqueue``, a poisoned job failing worker by worker. Raises the
    same :class:`ValueError`-family errors the flag validators do.
    """
    from repro.api.experiment import resolve_series_labels

    _validate_confidence_args(args)
    spec = spec_from_args(args)
    substrate = None
    topology_swept = any(
        path.startswith("topology.") for path in spec.parameter_paths
    )
    for value in spec.values:
        probe = spec.experiment_at(value)
        if substrate is None or topology_swept:
            substrate = probe.topology.build(np.random.default_rng(spec.seed))
        probe.scenario.build(substrate)
        resolve_series_labels(probe)
    for metric in spec.experiment.metrics:
        # Resolve the kind and check the parameter names against the
        # metric's signature (the leading placeholder stands in for the
        # evaluation context).
        inspect.signature(metric.resolve()).bind(None, **metric.params)
    if spec.comparison is not None and all(
        m.kind == "total_cost" and m.label is None
        for m in spec.experiment.metrics
    ):
        # With the default metric the result series are exactly the
        # policy labels, so a typo'd --compare baseline can fail fast
        # here; metric-derived series names only exist after simulating.
        spec.comparison.resolve_contrasts(
            resolve_series_labels(spec.experiment)
        )
    return spec


def build_from_bundle_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments run --from-bundle",
        description=(
            "Replay every SweepSpec of a repro bundle (written by the "
            "'report' subcommand's --bundle flag) through run_sweep. With "
            "the warm cache the report ran over, nothing re-simulates and "
            "the results are bit-identical to the bundled report."
        ),
    )
    parser.add_argument(
        "--from-bundle", dest="from_bundle", required=True, metavar="DIR",
        help="bundle directory holding MANIFEST.json + specs/*.json",
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=None,
        help="run replicates on N worker processes (default: serial)",
    )
    parser.add_argument(
        "--queue", type=_parse_queue, default=None, metavar="PATH",
        help="run replicates through the work queue at PATH",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON array with every replayed result (+ its spec)",
    )
    _add_cache_flags(parser)
    parser.add_argument(
        "--resume", dest="resume", action="store_true", default=True,
        help="reuse per-point cache entries (the default)",
    )
    parser.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="all-or-nothing caching: ignore per-point entries",
    )
    return parser


def _run_from_bundle(argv: "list[str]") -> int:
    """``run --from-bundle DIR``: replay a repro bundle's sweeps."""
    from repro.api.cache import _code_fingerprint
    from repro.api.experiment import run_sweep
    from repro.experiments.report import load_bundle

    args = build_from_bundle_parser().parse_args(argv)
    if args.shard is not None:
        print(
            "error: bundle replay renders complete sweeps; --shard is not "
            "supported here",
            file=sys.stderr,
        )
        return 2
    try:
        _validate_backend_args(args)
        manifest, pairs = load_bundle(args.from_bundle)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    fingerprint = manifest.get("environment", {}).get("code_fingerprint")
    if fingerprint is not None and fingerprint != _code_fingerprint():
        print(
            "note: the bundle was built from different package sources "
            "(code fingerprint mismatch); sweeps recompute from the "
            "current code instead of loading the bundled cache keys",
            file=sys.stderr,
        )

    cache = _cache_for(args)
    backend = _backend_from_args(args)
    payloads = []
    for i, (key, spec) in enumerate(pairs):
        result = run_sweep(
            spec, backend=backend, cache=cache, resume=args.resume
        )
        if args.json:
            payload = result.to_dict()
            payload["key"] = key
            payload["spec"] = spec.to_dict()
            payloads.append(payload)
        else:
            if i:
                print()
            print(format_figure(result))
    if args.json:
        print(json.dumps(payloads, indent=2))
    else:
        print(f"\nreplayed {len(pairs)} sweeps from {args.from_bundle}")
    return 0


def run_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments run ...``."""
    from repro.api.experiment import run_sweep

    if "--from-bundle" in argv:
        return _run_from_bundle(argv)

    args = build_run_parser().parse_args(argv)
    if args.shard is not None and _cache_for(args) is None:
        print(
            "error: --shard needs a shared --cache-dir (without --no-cache)",
            file=sys.stderr,
        )
        return 2
    if args.shard is not None and not args.resume:
        print(
            "error: --shard requires per-point resume; drop --no-resume",
            file=sys.stderr,
        )
        return 2
    try:
        _validate_backend_args(args)
        spec = _validated_spec(args)
    except (UnknownNameError, ValueError, TypeError, ImportError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = _cache_for(args)
    started = time.perf_counter()
    try:
        result = run_sweep(
            spec,
            backend=_backend_from_args(args),
            cache=cache,
            shard=args.shard,
            resume=args.resume,
        )
    except ComparisonSeriesError as error:
        # --compare against a metric-derived series name the pre-flight
        # could not know; clean exit like every other bad flag
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if cache is not None:
        status = "hit" if cache.hits else "miss"
        print(
            f"cache {status} {cache.key_for(spec)[:12]} in {cache.root}",
            file=sys.stderr,
        )
        if cache.point_hits or cache.point_misses:
            print(_point_stats_line(cache), file=sys.stderr)
    if result.counts:
        print(_replication_stats_line(result), file=sys.stderr)

    if args.json:
        if args.plot:
            print("note: --plot is ignored with --json", file=sys.stderr)
        payload = result.to_dict()
        payload["spec"] = spec.to_dict()
        payload["elapsed_seconds"] = round(elapsed, 3)
        print(json.dumps(payload, indent=2))
        return 0
    print(format_figure(result))
    if args.plot:
        from repro.experiments.plotting import (
            render_comparison_chart,
            render_figure_chart,
        )

        print()
        print(render_figure_chart(result))
        if result.has_comparisons:
            print()
            print(render_comparison_chart(result))
    if args.queue:
        backend_label = f"queue {args.queue}"
    elif args.workers and args.workers > 1:
        backend_label = f"{args.workers} workers"
    else:
        backend_label = "serial"
    print(f"  ({elapsed:.1f}s, backend={backend_label})")
    return 0


# ---------------------------------------------------------------------------
# The `report` subcommand: publishable EXPERIMENTS.md + repro bundles
# ---------------------------------------------------------------------------


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments report",
        description=(
            "Render a publishable EXPERIMENTS.md: each requested figure as "
            "a CI-annotated table plus chart, paired-comparison columns and "
            "an every-vs-every paired comparison matrix, replicate counts, "
            "cache provenance and environment capture. --bundle DIR "
            "additionally writes a self-contained repro bundle (spec JSONs "
            "+ cache manifest + versions) that 'run --from-bundle DIR' "
            "replays and 'report --from-bundle DIR' re-renders — "
            "byte-identically from the same warm cache."
        ),
    )
    parser.add_argument(
        "figures", nargs="*", metavar="FIGURE",
        help="figure ids to render (fig01..fig19, rocketfuel, abl-*)",
    )
    parser.add_argument(
        "--paper", action="store_true",
        help="use the exact caption parameters instead of the quick scale",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    parser.add_argument(
        "--runs", type=_positive_int, default=None,
        help="override the replicate count per sweep point",
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=None,
        help="run sweep replicates on N worker processes (default: serial)",
    )
    parser.add_argument(
        "--queue", type=_parse_queue, default=None, metavar="PATH",
        help="run sweep replicates through the work queue at PATH",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown to PATH instead of stdout",
    )
    parser.add_argument(
        "--bundle", default=None, metavar="DIR",
        help=(
            "also write a self-contained repro bundle under DIR: "
            "MANIFEST.json (environment + cache manifest), specs/*.json "
            "and the rendered EXPERIMENTS.md"
        ),
    )
    parser.add_argument(
        "--from-bundle", dest="from_bundle", default=None, metavar="DIR",
        help=(
            "re-render from a bundle's spec JSONs instead of figure ids "
            "(byte-identical from the same warm cache)"
        ),
    )
    parser.add_argument(
        "--no-matrices", dest="matrices", action="store_false", default=True,
        help="skip the per-figure paired comparison matrices",
    )
    _add_cache_flags(parser)
    _add_confidence_flags(parser)
    return parser


def report_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments report ...``."""
    from repro.api.experiment import capture_sweeps, run_sweep
    from repro.experiments.report import (
        ReportSection,
        capture_environment,
        load_bundle,
        render_report,
        write_bundle,
    )

    args = build_report_parser().parse_args(argv)
    if args.shard is not None:
        print(
            "error: reports render complete figures; run the shards first, "
            "then report without --shard over the shared cache",
            file=sys.stderr,
        )
        return 2
    if args.from_bundle and args.figures:
        print(
            "error: --from-bundle re-renders the bundled specs; figure ids "
            "cannot be combined with it",
            file=sys.stderr,
        )
        return 2
    if args.from_bundle and args.bundle:
        print(
            "error: --bundle cannot be combined with --from-bundle (that "
            "bundle already exists)",
            file=sys.stderr,
        )
        return 2
    if not args.from_bundle and not args.figures:
        print(
            "error: name at least one figure to report, or --from-bundle "
            "DIR",
            file=sys.stderr,
        )
        return 2
    try:
        _validate_backend_args(args)
        _validate_confidence_args(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    cache = _cache_for(args)
    backend = _backend_from_args(args)
    sections = []
    try:
        if args.from_bundle:
            _manifest, pairs = load_bundle(args.from_bundle)
            for key, spec in pairs:
                result = run_sweep(spec, backend=backend, cache=cache)
                sections.append(ReportSection(key, spec, result))
        else:
            keys = [_lookup_figure(name) for name in args.figures]
            for key in keys:
                _validate_figure_replication(key, args)
            for key in keys:
                fn, _quick = _REGISTRY[key]
                kwargs = _figure_kwargs(key, args, cache)
                with capture_sweeps() as captured:
                    fn(**kwargs)
                if not captured:
                    print(
                        f"note: {key} runs no sweeps; skipped",
                        file=sys.stderr,
                    )
                    continue
                for index, (spec, result) in enumerate(captured):
                    section_key = (
                        key if len(captured) == 1 else f"{key}-{index + 1}"
                    )
                    sections.append(ReportSection(section_key, spec, result))
    except (UnknownNameError, ComparisonSeriesError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not sections:
        print("error: nothing to report (no sweeps ran)", file=sys.stderr)
        return 2

    environment = capture_environment()
    text = render_report(
        sections,
        cache=cache,
        backend=backend,
        environment=environment,
        matrices=args.matrices,
    )
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(sections)} sections)", file=sys.stderr)
    else:
        print(text, end="")
    if args.bundle:
        manifest_path = write_bundle(
            args.bundle,
            sections,
            cache=cache,
            environment=environment,
            report_text=text,
        )
        print(
            f"wrote repro bundle under {manifest_path.parent}",
            file=sys.stderr,
        )
    return 0


# ---------------------------------------------------------------------------
# The `cache` subcommand: maintenance of a --cache-dir
# ---------------------------------------------------------------------------


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cache",
        description=(
            "Inspect or trim a result cache directory (the --cache-dir of "
            "the figure and run commands)."
        ),
    )
    parser.add_argument(
        "action", choices=("stats", "clear", "prune"),
        help=(
            "stats: entry/byte counts per kind; clear: delete every entry; "
            "prune: trim by --max-entries / --max-age"
        ),
    )
    parser.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the cache directory to operate on",
    )
    parser.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="prune: keep at most N entries (oldest removed first)",
    )
    parser.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="prune: remove entries older than SECONDS (by file mtime)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the outcome as machine-readable JSON",
    )
    return parser


def cache_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments cache ...``."""
    args = build_cache_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        payload = cache.stats()
    elif args.action == "clear":
        payload = {"root": str(cache.root), "removed": cache.clear()}
    else:  # prune
        if args.max_entries is None and args.max_age is None:
            print(
                "error: prune needs --max-entries and/or --max-age",
                file=sys.stderr,
            )
            return 2
        try:
            removed = cache.prune(
                max_entries=args.max_entries, max_age=args.max_age
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        payload = {"root": str(cache.root), "removed": removed}
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    return 0


# ---------------------------------------------------------------------------
# The trace subcommand: validate / stats / convert request logs
# ---------------------------------------------------------------------------


class _DenseMapper:
    """First-appearance dense indices — inspection without a substrate.

    Negative integer keys are rejected rather than remapped: such a log can
    never replay with ``mapping=none`` (the simulator refuses negative node
    indices), so hiding them behind dense renumbering would make ``validate``
    pass on a log that ``run`` rejects.
    """

    name = "dense"

    def __init__(self) -> None:
        self.assigned: "dict[object, int]" = {}

    def __call__(self, key) -> int:
        node = self.assigned.get(key)
        if node is None:
            try:
                raw = int(key)
            except (TypeError, ValueError):
                raw = 0
            if raw < 0:
                raise ValueError(f"negative node key {key!r} in request log")
            node = len(self.assigned)
            self.assigned[key] = node
        return node


def _identity_key(key) -> int:
    """``mapping='none'`` without ``--nodes``: keys must be node indices >= 0."""
    node = int(key)
    if node < 0:
        raise ValueError(f"negative node key {key!r} in request log")
    return node


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace",
        description=(
            "Validate, summarise or convert an external request log "
            "(CSV/JSONL/saved .npz trace) for replay through the 'replay' "
            "scenario: repro-experiments run --scenario "
            "replay:path=requests.csv ..."
        ),
    )
    parser.add_argument(
        "action", choices=("validate", "stats", "convert"),
        help=(
            "validate: parse the whole log and report problems; stats: "
            "per-round and per-node summaries; convert: write a mapped "
            ".npz trace ready for replay:path=OUT,mapping=none"
        ),
    )
    parser.add_argument("log", metavar="LOG", help="the request log file")
    parser.add_argument(
        "--out", metavar="OUT", default=None,
        help="convert: the output .npz path (required)",
    )
    parser.add_argument(
        "--format", choices=("csv", "jsonl", "npz"), default=None,
        help="log format (default: inferred from the suffix)",
    )
    parser.add_argument(
        "--node-field", default="node", metavar="NAME",
        help="CSV column / JSONL field holding the source key (default: node)",
    )
    parser.add_argument(
        "--round-field", default="round", metavar="NAME",
        help=(
            "CSV column / JSONL field holding the round index or timestamp "
            "(default: round)"
        ),
    )
    parser.add_argument(
        "--round-duration", type=float, default=None, metavar="SECONDS",
        help="treat round values as timestamps, one round per SECONDS",
    )
    parser.add_argument(
        "--requests-per-round", type=_positive_int, default=None, metavar="N",
        help="ignore round values and batch the log into N-request rounds",
    )
    parser.add_argument(
        "--mapping", choices=("hash", "round_robin", "table", "none"),
        default=None,
        help=(
            "convert: node-mapping strategy onto --nodes (default: none "
            "for .npz, hash otherwise)"
        ),
    )
    parser.add_argument(
        "--nodes", type=_positive_int, default=None, metavar="N",
        help="convert: map source keys onto nodes 0..N-1",
    )
    parser.add_argument(
        "--sort", action="store_true",
        help="convert: sort records by round index first (materialises the log)",
    )
    parser.add_argument(
        "--limit", type=_positive_int, default=None, metavar="N",
        help="use at most the first N rounds",
    )
    parser.add_argument(
        "--top", type=_positive_int, default=5, metavar="N",
        help="stats: how many busiest nodes to report (default 5)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the outcome as machine-readable JSON",
    )
    return parser


def _trace_rounds(args, mapper, sort: bool = False):
    from repro.traces.replay import iter_records, rounds_from_records

    records = iter_records(
        args.log, args.format, args.node_field, args.round_field
    )
    return rounds_from_records(
        records,
        mapper,
        round_duration=args.round_duration,
        requests_per_round=args.requests_per_round,
        sort=sort,
        limit=args.limit,
        where=args.log,
    )


def trace_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments trace ...``."""
    from repro.traces.replay import file_digest, make_mapper, replay_stats
    from repro.workload.base import Trace

    args = build_trace_parser().parse_args(argv)

    try:
        if args.action == "convert":
            if args.out is None:
                print("error: convert needs --out OUT.npz", file=sys.stderr)
                return 2
            mapping = args.mapping
            if mapping is None:
                from repro.traces.replay import infer_format

                fmt = args.format or infer_format(args.log)
                mapping = "none" if fmt == "npz" else "hash"
            if mapping != "none" and args.nodes is None:
                print(
                    f"error: mapping {mapping!r} needs --nodes N to map onto",
                    file=sys.stderr,
                )
                return 2
            if args.nodes is not None:
                mapper = make_mapper(mapping, np.arange(args.nodes), n_nodes=args.nodes)
            else:
                mapper = _identity_key  # mapping == "none": keys already node indices
            rounds = tuple(_trace_rounds(args, mapper, sort=args.sort))
            trace = Trace(
                rounds,
                scenario_name=f"replay({args.log})",
                metadata={
                    "scenario": "replay",
                    "converted_from": file_digest(args.log),
                    "mapping": mapping,
                },
            )
            written = trace.save(args.out)
            payload = {
                "ok": True,
                "out": str(written),
                **replay_stats(rounds, top=args.top),
            }
        else:
            rounds = _trace_rounds(args, _DenseMapper())
            payload = {"ok": True, "log": args.log, **replay_stats(rounds, top=args.top)}
            if args.action == "validate":
                payload.pop("busiest_nodes")
    except (ValueError, OSError) as error:
        if args.json:
            print(json.dumps({"ok": False, "error": str(error)}, indent=2))
        else:
            print(f"error: {error}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key}: {value}")
    return 0


# ---------------------------------------------------------------------------
# The queue subcommands: enqueue / worker / serve
# ---------------------------------------------------------------------------


def _add_queue_flags(
    parser: argparse.ArgumentParser, cache_required: bool = True
) -> None:
    parser.add_argument(
        "--queue", type=_parse_queue, required=True, metavar="PATH",
        help="the shared queue database file (created on first use)",
    )
    parser.add_argument(
        "--cache-dir", required=cache_required, metavar="DIR",
        help=(
            "the shared result cache directory; workers commit replicate "
            "samples here and the final figure assembles from it"
        ),
    )


def build_enqueue_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments enqueue",
        description=(
            "Publish a declarative sweep onto a work queue as per-point "
            "tasks (same spec flags as 'run'); 'worker' processes on the "
            "same --queue/--cache-dir execute them and assemble the "
            "figure. A warm cache answers immediately without enqueueing "
            "anything."
        ),
    )
    _add_spec_flags(parser)
    _add_confidence_flags(parser)
    _add_queue_flags(parser)
    parser.add_argument(
        "--requeue", action="store_true",
        help="re-create the job if a previous identical one failed",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print the figure result",
    )
    parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="status poll interval with --wait (default 0.5)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit job state (and, with --wait, the result) as JSON",
    )
    return parser


def enqueue_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments enqueue ...``."""
    import sqlite3

    from repro.queue.broker import Broker
    from repro.queue.worker import enqueue_sweep

    args = build_enqueue_parser().parse_args(argv)
    try:
        spec = _validated_spec(args)
    except (UnknownNameError, ValueError, TypeError, ImportError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    try:
        broker = Broker(args.queue)
        state = enqueue_sweep(broker, cache, spec, requeue=args.requeue)
    except (sqlite3.Error, OSError, ValueError) as error:
        print(f"error: cannot open queue {args.queue!r}: {error}",
              file=sys.stderr)
        return 2

    if args.wait and not state.get("cached"):
        while state is not None and state["status"] not in ("done", "failed"):
            time.sleep(args.poll)
            state = broker.job_state(state["job"])
        if state is None:
            print("error: job vanished from the queue", file=sys.stderr)
            return 1

    if state["status"] == "failed":
        print(f"error: job failed: {state.get('error')}", file=sys.stderr)
        return 1

    result = cache.load(spec) if state["status"] == "done" else None
    if args.json:
        payload = dict(state)
        if result is not None and (args.wait or state.get("cached")):
            payload["result"] = result.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    if state.get("cached"):
        print(f"cache hit {state['job'][:12]}; nothing enqueued",
              file=sys.stderr)
    else:
        pending = state["tasks"].get("pending", 0)
        verb = "enqueued" if state.get("created") else "already queued"
        print(
            f"job {state['job'][:12]} {verb}: {pending} pending task(s) "
            f"on {args.queue}",
            file=sys.stderr,
        )
    if result is not None and (args.wait or state.get("cached")):
        print(format_figure(result))
    return 0


def build_worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments worker",
        description=(
            "Drain a work queue: lease tasks, run them into the shared "
            "cache, assemble finished figures. Run any number of these "
            "against one --queue/--cache-dir; killed workers' leases "
            "expire and their tasks are re-served."
        ),
    )
    _add_queue_flags(parser)
    parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="sleep between polls when the queue is empty (default 0.5)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="lease lifetime; a silent worker's task re-serves after this",
    )
    parser.add_argument(
        "--max-tasks", type=_positive_int, default=None, metavar="N",
        help="exit after executing N tasks (default: unlimited)",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after the queue stayed empty this long (default: never)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-task log lines"
    )
    return parser


def worker_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments worker ...``."""
    import sqlite3

    from repro.queue.broker import DEFAULT_TTL, Broker, default_worker_id
    from repro.queue.worker import worker_loop

    args = build_worker_parser().parse_args(argv)
    if args.ttl is not None and not args.ttl > 0:
        print(f"error: --ttl must be > 0, got {args.ttl}", file=sys.stderr)
        return 2
    ttl = args.ttl if args.ttl is not None else DEFAULT_TTL
    worker_id = default_worker_id()
    log = None if args.quiet else (
        lambda message: print(f"[{worker_id}] {message}", file=sys.stderr)
    )
    try:
        broker = Broker(args.queue, ttl=ttl)
    except (sqlite3.Error, OSError, ValueError) as error:
        print(f"error: cannot open queue {args.queue!r}: {error}",
              file=sys.stderr)
        return 2
    try:
        executed = worker_loop(
            broker,
            ResultCache(args.cache_dir),
            poll=args.poll,
            ttl=ttl,
            max_tasks=args.max_tasks,
            idle_exit=args.idle_exit,
            worker_id=worker_id,
            log=log,
        )
    except KeyboardInterrupt:
        print(f"[{worker_id}] interrupted", file=sys.stderr)
        return 130
    if log is not None:
        log(f"exiting after {executed} task(s)")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Serve sweep results over HTTP: POST /sweep with a SweepSpec "
            "JSON answers warm specs from the cache instantly and queues "
            "cold ones for the workers; GET /jobs/<id> polls to "
            "completion."
        ),
    )
    _add_queue_flags(parser)
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8765, help="bind port (default 8765; 0 = pick)"
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=0, metavar="N",
        help=(
            "also drain the queue with N in-process worker threads "
            "(default 0: rely on external 'worker' processes)"
        ),
    )
    return parser


def serve_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments serve ...``."""
    import sqlite3

    from repro.queue.service import ResultsServer

    args = build_serve_parser().parse_args(argv)
    try:
        server = ResultsServer(
            (args.host, args.port), args.queue, args.cache_dir
        )
    except (sqlite3.Error, OSError, ValueError) as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    if args.workers:
        server.start_workers(args.workers)
    print(
        f"serving results on {server.url} "
        f"(queue {args.queue}, cache {args.cache_dir}, "
        f"{args.workers} in-process worker(s)) — Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


# ---------------------------------------------------------------------------
# The `list` subcommand: the full component inventory
# ---------------------------------------------------------------------------

#: family name -> (registry, drop the leading parameter from signatures?).
#: Scenario factories take the substrate first and metrics the evaluation
#: context — neither is a user-settable parameter.
_FAMILIES = {
    "policies": (POLICIES, False),
    "scenarios": (SCENARIOS, True),
    "topologies": (TOPOLOGIES, False),
    "figures": (FIGURES, False),
    "metrics": (METRICS, True),
}


def _entry_target(entry):
    """The callable behind a registry entry (figures wrap theirs)."""
    return entry.fn if isinstance(entry, FigureEntry) else entry


def _entry_signature(entry, drop_first: bool) -> str:
    """A printable parameter signature for one registry entry."""
    try:
        signature = inspect.signature(_entry_target(entry))
    except (TypeError, ValueError):
        return "(...)"
    parameters = list(signature.parameters.values())
    if drop_first and parameters:
        parameters = parameters[1:]
    return str(
        signature.replace(
            parameters=parameters, return_annotation=inspect.Signature.empty
        )
    )


def _entry_doc(entry) -> str:
    """The first docstring line of one registry entry (may be empty)."""
    doc = (inspect.getdoc(_entry_target(entry)) or "").strip()
    return doc.splitlines()[0] if doc else ""


def build_list_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments list",
        description=(
            "List every registered policy/scenario/topology/figure/metric "
            "with its parameter signature."
        ),
    )
    parser.add_argument(
        "family",
        nargs="?",
        choices=tuple(_FAMILIES),
        help="restrict the inventory to one component family",
    )
    return parser


def list_command(argv: "list[str]") -> int:
    """Entry point of ``python -m repro.experiments list ...``."""
    args = build_list_parser().parse_args(argv)
    selected = (args.family,) if args.family else tuple(_FAMILIES)
    for position, family in enumerate(selected):
        registry, drop_first = _FAMILIES[family]
        if position:
            print()
        print(f"{family}:")
        for name, entry in registry.items():
            print(f"  {name}{_entry_signature(entry, drop_first)}")
            doc = _entry_doc(entry)
            if doc:
                print(f"      {doc}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
