"""Plain-text rendering of figure results.

The benchmark harness prints, for every reproduced figure, the same rows or
series the paper plots; these helpers format them as aligned ASCII tables so
``pytest benchmarks/ --benchmark-only`` output doubles as the experiment
report (EXPERIMENTS.md quotes them).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.stats import ComparisonMatrix
from repro.experiments.runner import FigureResult

__all__ = ["format_table", "format_figure", "format_comparison_matrix"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    min_width: int = 6,
) -> str:
    """Align ``rows`` under ``headers``; floats rendered with 4 significant digits."""
    rendered = [[_cell(value) for value in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(min_width, len(str(h)), *(len(r[i]) for r in rendered))
        if rendered
        else max(min_width, len(str(h)))
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def comparison_header(comparison) -> str:
    """The column header of one attached comparison.

    ``Δ CONTRAST`` for paired differences (read: contrast minus baseline),
    ``CONTRAST/BASELINE`` for paired ratios.
    """
    if comparison.mode == "diff":
        return f"Δ {comparison.contrast}"
    return f"{comparison.contrast}/{comparison.baseline}"


def format_comparison_matrix(
    matrix: ComparisonMatrix, x: object = None, x_label: str = "x"
) -> str:
    """Render a :class:`~repro.analysis.stats.ComparisonMatrix` as a table.

    Rows are contrasts, columns are baselines: each cell holds the paired
    mean of *row vs column* (difference or ratio per the matrix mode) ±
    its CI halfwidth, starred when the interval excludes the null — the
    ordering of the two series is settled at the matrix's level. The
    diagonal (a series against itself) is blank. Pass the sweep point's
    ``x``/``x_label`` to say where the replicates came from.
    """
    headers: "list[object]" = ["vs", *matrix.names]
    rows = []
    counts = set()
    for i, name in enumerate(matrix.names):
        row: "list[object]" = [name]
        for cell in matrix.cells[i]:
            if cell is None:
                row.append("·")
            else:
                star = "*" if cell.decisive else ""
                row.append(
                    f"{_cell(float(cell.mean))} "
                    f"±{_cell(float(cell.halfwidth))}{star}"
                )
                counts.add(cell.n)
        rows.append(row)

    where = f" at {x_label} = {_cell(x)}" if x is not None else ""
    n = f"{min(counts)}" if len(counts) == 1 else f"{min(counts)}-{max(counts)}"
    title = f"paired comparison matrix{where} (n={n} shared replicates)"
    what = (
        "Δ = row − column" if matrix.mode == "diff" else "ratio = row / column"
    )
    null = 0 if matrix.mode == "diff" else 1
    footer = (
        f"  {what}; ±{matrix.level:.0%} {matrix.method} CI halfwidth; "
        f"* = CI excludes {null} (ordering settled)"
    )
    return f"{title}\n{format_table(headers, rows)}\n{footer}"


def format_figure(result: FigureResult, show_errors: bool = True) -> str:
    """Render a :class:`FigureResult` as a titled table.

    One row per sweep point, one column per series; with ``show_errors``
    set, ``±`` columns appear for series with non-zero standard errors.
    When the result carries confidence intervals (a sweep run with a
    :class:`~repro.api.specs.ReplicationSpec`), the ``±`` columns show CI
    *halfwidths* instead — headed by the level, e.g. ``±95%`` — and a
    final ``n`` column reports the per-point replicate count, which
    adaptive replication makes vary across points.

    Attached paired comparisons (a sweep run with a
    :class:`~repro.api.specs.ComparisonSpec`) append one column per
    contrast — ``Δ CONTRAST`` against the baseline, or
    ``CONTRAST/BASELINE`` in ratio mode — each with its own paired-CI
    ``±`` column; a footer line names the baseline.
    """
    confident = result.has_confidence
    halfwidths = {
        name: tuple((high - low) / 2.0 for low, high in bounds)
        for name, bounds in result.ci.items()
    }

    headers: list[object] = [result.x_label]
    use_errors = {}
    for name in result.series_names:
        if confident:
            use_errors[name] = show_errors and any(
                h > 0 for h in halfwidths.get(name, ())
            )
        else:
            use_errors[name] = (
                show_errors
                and name in result.errors
                and any(e > 0 for e in result.errors[name])
            )
    error_header = f"±{result.ci_level:.0%}" if confident else "±"
    for name in result.series_names:
        headers.append(name)
        if use_errors[name]:
            headers.append(error_header)
    comparison_halfwidths = {}
    for comparison in result.comparisons:
        headers.append(comparison_header(comparison))
        comparison_halfwidths[comparison.contrast] = tuple(
            (high - low) / 2.0 for low, high in comparison.ci
        )
        if show_errors:
            headers.append(f"±{comparison.level:.0%}")
    show_counts = confident and bool(result.counts)
    if show_counts:
        headers.append("n")

    rows = []
    for i, x in enumerate(result.x_values):
        row: list[object] = [x]
        for name in result.series_names:
            row.append(result.series[name][i])
            if use_errors[name]:
                row.append(
                    halfwidths[name][i] if confident else result.errors[name][i]
                )
        for comparison in result.comparisons:
            row.append(comparison.values[i])
            if show_errors:
                row.append(comparison_halfwidths[comparison.contrast][i])
        if show_counts:
            row.append(int(result.counts[i]))
        rows.append(row)

    title = f"[{result.figure}] {result.title}"
    body = format_table(headers, rows)
    footer = ""
    if result.comparisons:
        first = result.comparisons[0]
        what = "Δ = contrast − baseline" if first.mode == "diff" else \
            "ratio = contrast / baseline"
        footer += f"\n  paired vs {first.baseline}: {what}"
    if result.notes:
        footer += f"\n  note: {result.notes}"
    return f"{title}\n{body}{footer}"
