"""ASCII line charts for figure results — plots without a display server.

The reproduction runs in terminals and CI logs, so instead of matplotlib
the reporting stack renders :class:`~repro.experiments.runner.FigureResult`
series as fixed-width ASCII charts: one marker per series, a labelled y
axis, and the sweep values along x. Used by the CLI's ``--plot`` flag and
handy in notebooks-over-ssh; the tabular renderer in
:mod:`repro.experiments.reporting` remains the precise view.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.runner import FigureResult

__all__ = ["ascii_chart", "render_figure_chart"]

#: Series markers, assigned in order.
_MARKERS = "ox*+#%@&"


def ascii_chart(
    series: "dict[str, list[float]]",
    width: int = 64,
    height: int = 16,
    y_label: str = "",
) -> str:
    """Render named numeric series as an ASCII chart.

    All series share the x axis by index (they must have equal lengths) and
    the y axis is scaled to the joint min/max. Returns a multi-line string;
    a legend line maps markers to series names.

    Args:
        series: mapping name -> values; at least one non-empty series.
        width: plot area width in characters.
        height: plot area height in rows.
        y_label: optional axis annotation shown above the axis.
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if width < 8 or height < 4:
        raise ValueError("chart needs width >= 8 and height >= 4")

    values = np.asarray([list(v) for v in series.values()], dtype=float)
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        raise ValueError("series contain no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    if math.isclose(lo, hi):
        lo, hi = lo - 0.5, hi + 0.5

    grid = [[" "] * width for _ in range(height)]
    for row_series, marker in zip(values, _MARKERS):
        for i, value in enumerate(row_series):
            if not math.isfinite(value):
                continue
            x = round(i * (width - 1) / max(n_points - 1, 1))
            y = round((value - lo) / (hi - lo) * (height - 1))
            row = height - 1 - y
            cell = grid[row][x]
            grid[row][x] = marker if cell in (" ", marker) else "?"

    gutter = max(len(f"{hi:.4g}"), len(f"{lo:.4g}"))
    lines = []
    if y_label:
        lines.append(f"{'':>{gutter}} {y_label}")
    for row in range(height):
        if row == 0:
            label = f"{hi:.4g}"
        elif row == height - 1:
            label = f"{lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(grid[row]))
    lines.append(f"{'':>{gutter}} +" + "-" * width)

    legend = "   ".join(
        f"{marker}={name}" for name, marker in zip(series, _MARKERS)
    )
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)


def render_figure_chart(
    result: FigureResult, width: int = 64, height: int = 16
) -> str:
    """Chart a :class:`FigureResult`: title, plot, and the x-value range."""
    chart = ascii_chart(
        {name: list(result.series[name]) for name in result.series_names},
        width=width,
        height=height,
    )
    xs = result.x_values
    footer = f"{result.x_label}: {xs[0]} .. {xs[-1]} ({len(xs)} points)"
    return f"[{result.figure}] {result.title}\n{chart}\n{footer}"
