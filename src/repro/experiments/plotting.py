"""ASCII line charts for figure results — plots without a display server.

The reproduction runs in terminals and CI logs, so instead of matplotlib
the reporting stack renders :class:`~repro.experiments.runner.FigureResult`
series as fixed-width ASCII charts: one marker per series, a labelled y
axis, the sweep values along x, and — when the result carries confidence
intervals or standard errors — a shaded band (``·``) spanning each series'
uncertainty around its mean. Used by the CLI's ``--plot`` flag and handy in
notebooks-over-ssh; the tabular renderer in
:mod:`repro.experiments.reporting` remains the precise view.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.runner import FigureResult

__all__ = ["ascii_chart", "render_comparison_chart", "render_figure_chart"]

#: Series markers, assigned in order.
_MARKERS = "ox*+#%@&"

#: The shading character of error bands (never overwrites a marker).
_BAND = "·"

#: The character of a reference line (never overwrites markers or bands).
_HLINE = "-"


def ascii_chart(
    series: "dict[str, list[float]]",
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    bands: "dict[str, tuple[list[float], list[float]]] | None" = None,
    hline: "float | None" = None,
) -> str:
    """Render named numeric series as an ASCII chart.

    All series share the x axis by index (they must have equal lengths) and
    the y axis is scaled to the joint min/max — including any band bounds,
    so error bands never clip. Returns a multi-line string; a legend line
    maps markers to series names.

    Args:
        series: mapping name -> values; at least one non-empty series.
        width: plot area width in characters.
        height: plot area height in rows.
        y_label: optional axis annotation shown above the axis.
        bands: optional per-series ``(lows, highs)`` uncertainty bounds
            (each aligned with the series values); the vertical span
            between them is shaded with ``·`` wherever no marker sits.
        hline: optional horizontal reference value (e.g. 0 for difference
            charts, 1 for ratio charts), drawn with ``-`` under markers and
            bands and included in the y scaling so it is always visible.
    """
    if not series:
        raise ValueError("ascii_chart needs at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series are empty")
    if width < 8 or height < 4:
        raise ValueError("chart needs width >= 8 and height >= 4")
    bands = bands or {}
    for name, (lows, highs) in bands.items():
        if name not in series:
            raise ValueError(f"band given for unknown series {name!r}")
        if len(lows) != n_points or len(highs) != n_points:
            raise ValueError(f"band for {name!r} misaligned with series values")

    if hline is not None and not math.isfinite(hline):
        raise ValueError(f"hline must be finite, got {hline!r}")

    values = np.asarray([list(v) for v in series.values()], dtype=float)
    stack = [values]
    for lows, highs in bands.values():
        stack.append(np.asarray([list(lows), list(highs)], dtype=float))
    joint = np.concatenate(stack)
    finite = joint[np.isfinite(joint)]
    if finite.size == 0:
        raise ValueError("series contain no finite values")
    lo, hi = float(finite.min()), float(finite.max())
    if hline is not None:
        lo, hi = min(lo, float(hline)), max(hi, float(hline))
    if math.isclose(lo, hi):
        lo, hi = lo - 0.5, hi + 0.5

    def column(i: int) -> int:
        return round(i * (width - 1) / max(n_points - 1, 1))

    def row(value: float) -> int:
        y = round((value - lo) / (hi - lo) * (height - 1))
        return height - 1 - y

    grid = [[" "] * width for _ in range(height)]
    # Reference line first, bands next, markers last — a marker always wins
    # its cell and a band wins over the line.
    if hline is not None:
        r = row(float(hline))
        for x in range(width):
            grid[r][x] = _HLINE
    for name, (lows, highs) in bands.items():
        for i in range(n_points):
            low, high = lows[i], highs[i]
            if not (math.isfinite(low) and math.isfinite(high)):
                continue
            x = column(i)
            for r in range(row(high), row(low) + 1):
                if grid[r][x] in (" ", _HLINE):
                    grid[r][x] = _BAND
    for row_series, marker in zip(values, _MARKERS):
        for i, value in enumerate(row_series):
            if not math.isfinite(value):
                continue
            x = column(i)
            r = row(value)
            cell = grid[r][x]
            grid[r][x] = marker if cell in (" ", _BAND, _HLINE, marker) else "?"

    gutter = max(len(f"{hi:.4g}"), len(f"{lo:.4g}"))
    lines = []
    if y_label:
        lines.append(f"{'':>{gutter}} {y_label}")
    for r in range(height):
        if r == 0:
            label = f"{hi:.4g}"
        elif r == height - 1:
            label = f"{lo:.4g}"
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |" + "".join(grid[r]))
    lines.append(f"{'':>{gutter}} +" + "-" * width)

    legend = "   ".join(
        f"{marker}={name}" for name, marker in zip(series, _MARKERS)
    )
    lines.append(f"{'':>{gutter}}  {legend}")
    return "\n".join(lines)


def _result_bands(
    result: FigureResult,
) -> "dict[str, tuple[list[float], list[float]]]":
    """The uncertainty bands of ``result``: CIs, else mean ± stderr.

    Confidence intervals (when the sweep ran with a
    :class:`~repro.api.specs.ReplicationSpec`) are preferred; plain
    multi-run figures fall back to one standard error around the mean.
    Series with all-zero spread contribute no band.
    """
    bands: "dict[str, tuple[list[float], list[float]]]" = {}
    for name in result.series_names:
        if result.has_confidence and name in result.ci:
            lows = [low for low, _high in result.ci[name]]
            highs = [high for _low, high in result.ci[name]]
        elif name in result.errors:
            means = result.series[name]
            errors = result.errors[name]
            lows = [m - e for m, e in zip(means, errors)]
            highs = [m + e for m, e in zip(means, errors)]
        else:
            continue
        if any(h > l for l, h in zip(lows, highs)):
            bands[name] = (lows, highs)
    return bands


def render_figure_chart(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
    show_bands: bool = True,
) -> str:
    """Chart a :class:`FigureResult`: title, plot, and the x-value range.

    With ``show_bands`` (the default), per-point uncertainty — confidence
    intervals when attached, otherwise ± one standard error — is shaded
    around each series; the footer then names what the shading is.
    """
    bands = _result_bands(result) if show_bands else {}
    chart = ascii_chart(
        {name: list(result.series[name]) for name in result.series_names},
        width=width,
        height=height,
        bands=bands,
    )
    xs = result.x_values
    footer = f"{result.x_label}: {xs[0]} .. {xs[-1]} ({len(xs)} points)"
    if bands:
        what = (
            f"{result.ci_level:.0%} CI"
            if result.has_confidence
            else "±1 stderr"
        )
        footer += f"; {_BAND} = {what}"
    return f"[{result.figure}] {result.title}\n{chart}\n{footer}"


def render_comparison_chart(
    result: FigureResult,
    width: int = 64,
    height: int = 16,
    show_bands: bool = True,
) -> str:
    """Chart a result's paired comparisons around their null line.

    One series per contrast — the per-point paired difference (or ratio)
    against the baseline — with its paired CI shaded (``show_bands``) and
    the no-difference reference (0 for differences, 1 for ratios) drawn as
    a horizontal line: a band clear of the line is an ordering settled at
    the comparison's confidence level. Requires attached comparisons (a
    sweep run with a :class:`~repro.api.specs.ComparisonSpec`).
    """
    if not result.has_comparisons:
        raise ValueError(
            "result carries no comparisons; run the sweep with "
            "SweepSpec(comparison=ComparisonSpec(...))"
        )
    first = result.comparisons[0]
    series = {}
    bands: "dict[str, tuple[list[float], list[float]]]" = {}
    for comparison in result.comparisons:
        symbol = "Δ" if comparison.mode == "diff" else "/"
        name = f"{symbol} {comparison.contrast}"
        series[name] = list(comparison.values)
        if show_bands:
            lows = [low for low, _high in comparison.ci]
            highs = [high for _low, high in comparison.ci]
            if any(h > l for l, h in zip(lows, highs)):
                bands[name] = (lows, highs)
    chart = ascii_chart(
        series, width=width, height=height, bands=bands, hline=first.null
    )
    xs = result.x_values
    what = "Δ" if first.mode == "diff" else "ratio"
    footer = (
        f"{result.x_label}: {xs[0]} .. {xs[-1]} ({len(xs)} points); "
        f"{what} vs {first.baseline}, {_HLINE} = no difference"
    )
    if bands:
        footer += f"; {_BAND} = {first.level:.0%} paired CI"
    return f"[{result.figure}] {result.title} — paired vs {first.baseline}\n{chart}\n{footer}"
