"""One reproduction function per figure/table of the paper's evaluation (§V).

Each ``figureNN`` function regenerates the data behind the corresponding
paper figure: same scenario, same caption parameters (overridable for quick
runs), same series. The benchmark suite calls these and prints the resulting
tables; EXPERIMENTS.md records the measured shapes next to the paper's
claims.

Captions and defaults:

====== ============================================================
Fig 1  ONTH trajectory, commuter dynamic (1000 rounds, T=14, n=1000, λ=20)
Fig 2  ONTH trajectory, commuter static (1000 rounds, T=12, n=500, λ=20)
Fig 3  cost vs n, commuter dynamic (500 rounds, λ=10, 5 runs)
Fig 4  cost vs n, commuter static
Fig 5  cost vs n, time zones
Fig 6  ONBR cost breakdown vs n, β=400 > c=40
Fig 7  cost vs T, commuter static (600 rounds, λ=20, n=1000, 10 runs)
Fig 8  cost vs λ, commuter dynamic (900 rounds, T=10, n=200, 10 runs)
Fig 9  cost vs λ, commuter static
Fig 10 cost vs λ, time zones (p=50%)
Fig 11 ONTH/OPT ratio vs λ (200 rounds, n=5, 10 runs)
Fig 12 OFFSTAT cost vs fleet size (the kopt selection curve)
Fig 13 OFFSTAT & OPT absolute cost vs λ (200 rounds, n=5, T=4, 10 runs)
Fig 14 like 13 with β=400, c=40
Fig 15 OFFSTAT/OPT vs λ, commuter dynamic (both β regimes)
Fig 16 OFFSTAT/OPT vs λ, commuter static
Fig 17 OFFSTAT/OPT vs λ, time zones (3 requests/round)
Fig 18 OFFSTAT/OPT vs T, commuter dynamic (λ=10)
Fig 19 OFFSTAT/OPT vs T, commuter static
Tab R  Rocketfuel AS-7018 totals (time zones, 600 rounds, λ=20, p=50%)
====== ============================================================

The network-size sweeps couple the commuter day length to the size via
``T(n) = 2(⌊log2 n⌋ − 2)`` (DESIGN.md §3). OPT-based figures run on line
graphs, exactly as §V-A prescribes.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import OffStat, OnBR, OnTH
from repro.api.experiment import run_sweep
from repro.api.registry import register_figure
from repro.api.specs import (
    ComparisonSpec,
    CostSpec,
    ExperimentSpec,
    MetricSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.core.costs import CostModel
from repro.core.load import LinearLoad, QuadraticLoad
from repro.core.simulator import simulate
from repro.experiments.runner import FigureResult, sweep_experiment
from repro.topology.generators import erdos_renyi
from repro.topology.substrate import Substrate
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario, default_period_for
from repro.workload.timezones import TimeZoneScenario

__all__ = [
    "figure01", "figure02", "figure03", "figure04", "figure05", "figure06",
    "figure07", "figure08", "figure09", "figure10", "figure11", "figure12",
    "figure13", "figure14", "figure15", "figure16", "figure17", "figure18",
    "figure19", "figure_optim", "rocketfuel_table",
]

#: Default master seed for all figures (any fixed value works; this one is
#: simply the paper's publication date).
DEFAULT_SEED = 20110330

_SIZES = (100, 200, 400, 700, 1000)
_LAMBDAS = (1, 2, 5, 10, 20, 50)
#: λ sweep for the OPT-based figures: extends to the 200-round horizon so
#: the largest value is a fully static pattern (the paper's "low dynamics"
#: end where the ratio returns to one).
_OPT_LAMBDAS = (1, 2, 5, 10, 20, 50, 100, 200)
_PERIODS = (2, 4, 6, 8, 10)
#: Latency range for the OPT line graphs. The paper does not publish its
#: latency scale; this range makes access costs commensurate with β=40 and
#: c=400 the way Rocketfuel's millisecond latencies are in the AS-7018
#: experiment (DESIGN.md §3).
_LINE_LATENCIES = (5.0, 20.0)

#: The three online contenders of Figures 3-10 as policy specs.
_ONLINE_TRIO = (
    PolicySpec("onth", label="ONTH"),
    PolicySpec("onbr", label="ONBR-fixed"),
    PolicySpec("onbr-dyn", label="ONBR-dyn"),
)

#: The OPT-vs-policy metric of the ratio figures (11, 15-19).
_OPT_RATIO = (MetricSpec("cost_ratio_vs", {"reference": "OPT"}),)


def _line_topology(n: int) -> TopologySpec:
    """The line substrate of all OPT-based figures, as a spec."""
    return TopologySpec(
        "line",
        {"n": int(n), "unit_latency": False, "latency_range": _LINE_LATENCIES},
    )


def _commuter_trace(
    substrate: Substrate,
    horizon: int,
    sojourn: int,
    dynamic: bool,
    rng: np.random.Generator,
    period: "int | None" = None,
) -> Trace:
    scenario = CommuterScenario(
        substrate,
        period=period if period is not None else default_period_for(substrate.n),
        sojourn=sojourn,
        dynamic_load=dynamic,
    )
    return generate_trace(scenario, horizon, rng)


def _timezone_trace(
    substrate: Substrate,
    horizon: int,
    sojourn: int,
    rng: np.random.Generator,
    period: "int | None" = None,
    requests_per_round: int = 10,
    hotspot_share: float = 0.5,
) -> Trace:
    scenario = TimeZoneScenario(
        substrate,
        period=period if period is not None else default_period_for(substrate.n),
        sojourn=sojourn,
        hotspot_share=hotspot_share,
        requests_per_round=requests_per_round,
    )
    return generate_trace(scenario, horizon, rng)


# ---------------------------------------------------------------------------
# Figures 1-2: exemplary ONTH executions (server count trajectories)
# ---------------------------------------------------------------------------


def _onth_trajectory(
    dynamic: bool,
    n: int,
    period: int,
    sojourn: int,
    horizon: int,
    sample_every: int,
    seed: int,
    figure: str,
    title: str,
) -> FigureResult:
    rng = np.random.default_rng(seed)
    substrate = erdos_renyi(n, seed=rng)
    trace = _commuter_trace(substrate, horizon, sojourn, dynamic, rng, period=period)

    series: dict[str, tuple] = {}
    for label, load in (("linear load", LinearLoad()), ("quadratic load", QuadraticLoad())):
        costs = CostModel.paper_default(load=load)
        result = simulate(substrate, OnTH(), trace, costs, seed=seed)
        series[f"servers ({label})"] = tuple(
            int(v) for v in result.n_active[::sample_every]
        )
    sampled_rounds = tuple(range(0, horizon, sample_every))
    series["requests/round"] = tuple(
        int(trace[t].size) for t in sampled_rounds
    )
    return FigureResult(
        figure=figure,
        title=title,
        x_label="round",
        x_values=sampled_rounds,
        series=series,
        notes="paper: server count tracks demand; quadratic load uses more servers",
    )


@register_figure(
    "fig01",
    quick=dict(n=300, period=10, sojourn=10, horizon=400, sample_every=10),
)
def figure01(
    n: int = 1000,
    period: int = 14,
    sojourn: int = 20,
    horizon: int = 1000,
    sample_every: int = 25,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """ONTH in the commuter scenario with dynamic load (linear vs quadratic)."""
    return _onth_trajectory(
        True, n, period, sojourn, horizon, sample_every, seed,
        "fig01", "ONTH execution, commuter dynamic load",
    )


@register_figure(
    "fig02",
    quick=dict(n=200, period=10, sojourn=10, horizon=400, sample_every=10),
)
def figure02(
    n: int = 500,
    period: int = 12,
    sojourn: int = 20,
    horizon: int = 1000,
    sample_every: int = 25,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """ONTH in the commuter scenario with static load (linear vs quadratic)."""
    return _onth_trajectory(
        False, n, period, sojourn, horizon, sample_every, seed,
        "fig02", "ONTH execution, commuter static load",
    )


# ---------------------------------------------------------------------------
# Figures 3-5: cost vs network size
# ---------------------------------------------------------------------------


def _commuter_size_sweep(
    figure: str,
    title: str,
    dynamic: bool,
    sizes,
    horizon: int,
    sojourn: int,
    runs: int,
    seed: int,
) -> SweepSpec:
    """The declarative form of the Figure 3/4 size sweeps."""
    return SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi"),
            scenario=ScenarioSpec(
                "commuter", {"sojourn": sojourn, "dynamic_load": dynamic}
            ),
            policies=_ONLINE_TRIO,
            costs=CostSpec.paper_default(),
            horizon=horizon,
        ),
        parameter="topology.n",
        values=tuple(int(n) for n in sizes),
        runs=runs,
        seed=seed,
        figure=figure,
        title=title,
        x_label="network size",
        notes="paper: ONTH below both ONBR variants; T grows with n",
    )


@register_figure(
    "fig03", quick=dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)
)
def figure03(
    sizes=_SIZES,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Algorithm cost vs network size, commuter scenario with dynamic load."""
    return run_sweep(
        _commuter_size_sweep(
            "fig03", "cost vs network size, commuter dynamic load",
            True, sizes, horizon, sojourn, runs, seed,
        ),
        backend=backend,
        cache=cache,
        shard=shard,
        replication=replication,
        comparison=comparison,
    )


@register_figure(
    "fig04", quick=dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)
)
def figure04(
    sizes=_SIZES,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Like Figure 3, but with static load."""
    return run_sweep(
        _commuter_size_sweep(
            "fig04", "cost vs network size, commuter static load",
            False, sizes, horizon, sojourn, runs, seed,
        ),
        backend=backend,
        cache=cache,
        shard=shard,
        replication=replication,
        comparison=comparison,
    )


@register_figure(
    "fig05", quick=dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)
)
def figure05(
    sizes=_SIZES,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Like Figure 3, but for the time zone scenario.

    The request volume scales with the network size (one request per round
    per ten nodes, at least ten) — constant per-user demand with more users
    on bigger networks, so the size sweep is apples-to-apples with the
    commuter variants whose volume also grows with ``n`` (DESIGN.md §3).
    The size-coupled volume and day length ride along as a coupled sweep:
    each point substitutes (n, requests/round, T) together.
    """
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi"),
            scenario=ScenarioSpec("timezones", {"sojourn": sojourn}),
            policies=_ONLINE_TRIO,
            costs=CostSpec.paper_default(),
            horizon=horizon,
        ),
        parameter=(
            "topology.n", "scenario.requests_per_round", "scenario.period",
        ),
        values=tuple(
            (int(n), max(10, int(n) // 10), default_period_for(int(n)))
            for n in sizes
        ),
        runs=runs,
        seed=seed,
        figure="fig05",
        title="cost vs network size, time zone scenario",
        x_label="network size",
        notes="paper: ONTH below both ONBR variants; T grows with n",
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


@register_figure(
    "fig06", quick=dict(sizes=(50, 100, 200, 400), horizon=300, runs=3)
)
def figure06(
    sizes=_SIZES,
    horizon: int = 500,
    sojourn: int = 10,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """ONBR cost breakdown vs network size in the β=400 > c=40 regime."""
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi"),
            scenario=ScenarioSpec(
                "commuter", {"sojourn": sojourn, "dynamic_load": True}
            ),
            policies=(PolicySpec("onbr"),),
            costs=CostSpec.migration_expensive(),
            horizon=horizon,
            metrics=(
                MetricSpec(
                    "cost_breakdown",
                    {"parts": ("access", "running", "migration+creation",
                               "total")},
                ),
            ),
        ),
        parameter="topology.n",
        values=tuple(int(n) for n in sizes),
        runs=runs,
        seed=seed,
        figure="fig06",
        title="ONBR cost components vs network size (β > c)",
        x_label="network size",
        notes="paper: access cost dominates and grows with n",
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


# ---------------------------------------------------------------------------
# Figures 7-10: cost vs T and vs λ
# ---------------------------------------------------------------------------


@register_figure(
    "fig07",
    quick=dict(periods=(4, 8, 12), n=300, horizon=300, sojourn=10, runs=3),
)
def figure07(
    periods=(4, 6, 8, 10, 12, 14, 16),
    n: int = 1000,
    horizon: int = 600,
    sojourn: int = 20,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Cost vs T in the commuter scenario with static load."""
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": n}),
            scenario=ScenarioSpec(
                "commuter", {"sojourn": sojourn, "dynamic_load": False}
            ),
            policies=_ONLINE_TRIO,
            costs=CostSpec.paper_default(),
            horizon=horizon,
        ),
        parameter="scenario.period",
        values=tuple(int(p) for p in periods),
        runs=runs,
        seed=seed,
        figure="fig07",
        title=f"cost vs T, commuter static load (n={n})",
        x_label="T",
        notes="paper: cost rises slightly with T; ONTH best throughout",
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


def _lambda_sweep(
    figure: str,
    title: str,
    scenario: ScenarioSpec,
    lambdas,
    n: int,
    horizon: int,
    runs: int,
    seed: int,
) -> SweepSpec:
    """Figures 8-10 as data: sweep the sojourn time λ of ``scenario``."""
    return SweepSpec(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": n}),
            scenario=scenario,
            policies=_ONLINE_TRIO,
            costs=CostSpec.paper_default(),
            horizon=horizon,
        ),
        parameter="scenario.sojourn",
        values=tuple(int(lam) for lam in lambdas),
        runs=runs,
        seed=seed,
        figure=figure,
        title=title,
        x_label="λ",
        notes="paper: total roughly independent of λ; ONTH ~2x better",
    )


@register_figure(
    "fig08", quick=dict(lambdas=(1, 5, 20, 50), n=100, period=8, horizon=400, runs=3)
)
def figure08(
    lambdas=_LAMBDAS,
    n: int = 200,
    period: int = 10,
    horizon: int = 900,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Cost vs λ, commuter scenario with dynamic load."""
    spec = _lambda_sweep(
        "fig08", f"cost vs λ, commuter dynamic load (n={n}, T={period})",
        ScenarioSpec("commuter", {"period": period, "dynamic_load": True}),
        lambdas, n, horizon, runs, seed,
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


@register_figure(
    "fig09", quick=dict(lambdas=(1, 5, 20, 50), n=100, period=8, horizon=400, runs=3)
)
def figure09(
    lambdas=_LAMBDAS,
    n: int = 200,
    period: int = 10,
    horizon: int = 900,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Cost vs λ, commuter scenario with static load."""
    spec = _lambda_sweep(
        "fig09", f"cost vs λ, commuter static load (n={n}, T={period})",
        ScenarioSpec("commuter", {"period": period, "dynamic_load": False}),
        lambdas, n, horizon, runs, seed,
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


@register_figure(
    "fig10", quick=dict(lambdas=(1, 5, 20, 50), n=100, period=8, horizon=400, runs=3)
)
def figure10(
    lambdas=_LAMBDAS,
    n: int = 200,
    period: int = 10,
    horizon: int = 900,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Cost vs λ, time zone scenario with p = 50%."""
    spec = _lambda_sweep(
        "fig10", f"cost vs λ, time zones p=50% (n={n}, T={period})",
        ScenarioSpec("timezones", {"period": period}),
        lambdas, n, horizon, runs, seed,
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


# ---------------------------------------------------------------------------
# Figure 11: the price of online decisions (ONTH vs OPT)
# ---------------------------------------------------------------------------


@register_figure("fig11", quick=dict(lambdas=(1, 5, 20, 50, 100, 200), runs=5))
def figure11(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Competitive ratio of ONTH against OPT as a function of λ.

    Run on line graphs (the paper constrains OPT experiments to those) for
    all three demand scenarios: one spec with three ONTH entries, two of
    them overriding the base scenario, all ratioed against OPT by the
    ``cost_ratio_vs`` metric. Sweeping ``scenario.sojourn`` moves every
    scenario's λ in lockstep.
    """
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=_line_topology(n),
            scenario=ScenarioSpec("commuter", {"period": period}),
            policies=(
                PolicySpec("onth", label="commuter dynamic"),
                PolicySpec(
                    "onth",
                    label="commuter static",
                    scenario=ScenarioSpec(
                        "commuter", {"period": period, "dynamic_load": False}
                    ),
                ),
                PolicySpec(
                    "onth",
                    label="time zones",
                    scenario=ScenarioSpec(
                        "timezones",
                        {"period": period, "requests_per_round": 3},
                    ),
                ),
            ),
            costs=CostSpec.paper_default(),
            horizon=horizon,
            metrics=_OPT_RATIO,
        ),
        parameter="scenario.sojourn",
        values=tuple(int(lam) for lam in lambdas),
        runs=runs,
        seed=seed,
        figure="fig11",
        title="ONTH/OPT competitive ratio vs λ (line graph)",
        x_label="λ",
        notes="paper: ratios fairly low; commuter static peaks at intermediate λ",
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


# ---------------------------------------------------------------------------
# Figure 12: how OFFSTAT selects its fleet size
# ---------------------------------------------------------------------------


@register_figure("fig12", quick=dict(n=100, horizon=300, max_servers=10))
def figure12(
    n: int = 100,
    horizon: int = 300,
    sojourn: int = 10,
    max_servers: int = 12,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """OFFSTAT total cost as a function of the static fleet size.

    The curve's minimum is ``kopt`` — the paper's illustration of the
    static baseline's inner optimisation.
    """
    rng = np.random.default_rng(seed)
    substrate = erdos_renyi(n, seed=rng)
    trace = _commuter_trace(substrate, horizon, sojourn, False, rng)
    costs = CostModel.paper_default()

    offstat = OffStat(max_servers=max_servers)
    simulate(substrate, offstat, trace, costs, seed=seed)
    curve = offstat.cost_curve
    return FigureResult(
        figure="fig12",
        title="OFFSTAT cost vs number of static servers",
        x_label="servers",
        x_values=tuple(range(1, curve.size + 1)),
        series={"total cost": tuple(float(v) for v in curve)},
        notes=f"kopt = {offstat.kopt} (curve minimum)",
    )


# ---------------------------------------------------------------------------
# Figures 13-19: the benefit of dynamic allocation (OFFSTAT vs OPT)
# ---------------------------------------------------------------------------


#: The two cost regimes of the OFFSTAT/OPT ratio figures, on one shared
#: trace per replicate: OFFSTAT under β<c and under β>c, each ratioed
#: against OPT solved under the same regime.
_REGIME_PAIR = (
    PolicySpec("offstat", label="β<c"),
    PolicySpec(
        "offstat", label="β>c", costs=CostSpec.migration_expensive()
    ),
)


def _absolute_vs_lambda(
    figure: str,
    title: str,
    costs: CostSpec,
    lambdas,
    n: int,
    period: int,
    horizon: int,
    runs: int,
    seed: int,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=_line_topology(n),
            scenario=ScenarioSpec("commuter", {"period": period}),
            policies=(PolicySpec("offstat", label="OFFSTAT"),),
            costs=costs,
            horizon=horizon,
            metrics=(
                MetricSpec("total_cost"),
                MetricSpec("reference_cost", {"reference": "OPT"}),
            ),
        ),
        parameter="scenario.sojourn",
        values=tuple(int(lam) for lam in lambdas),
        runs=runs,
        seed=seed,
        figure=figure,
        title=title,
        x_label="λ",
        notes="paper: absolute cost falls as dynamics slow (larger λ)",
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


@register_figure("fig13", quick=dict(runs=5))
def figure13(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Absolute OFFSTAT and OPT costs vs λ, commuter dynamic load, β < c."""
    return _absolute_vs_lambda(
        "fig13", "OFFSTAT vs OPT absolute cost (β=40 < c=400)",
        CostSpec.paper_default(), lambdas, n, period, horizon, runs, seed,
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


@register_figure("fig14", quick=dict(runs=5))
def figure14(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Like Figure 13 with β = 400 > c = 40."""
    return _absolute_vs_lambda(
        "fig14", "OFFSTAT vs OPT absolute cost (β=400 > c=40)",
        CostSpec.migration_expensive(), lambdas, n, period, horizon, runs,
        seed, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


def _ratio_sweep(
    figure: str,
    title: str,
    x_label: str,
    parameter: str,
    values,
    scenario: ScenarioSpec,
    n: int,
    horizon: int,
    runs: int,
    seed: int,
    notes: str,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """The OFFSTAT/OPT two-regime ratio figures (15-19) as one spec each."""
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=_line_topology(n),
            scenario=scenario,
            policies=_REGIME_PAIR,
            costs=CostSpec.paper_default(),
            horizon=horizon,
            metrics=_OPT_RATIO,
        ),
        parameter=parameter,
        values=values,
        runs=runs,
        seed=seed,
        figure=figure,
        title=title,
        x_label=x_label,
        notes=notes,
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


@register_figure("fig15", quick=dict(runs=5))
def figure15(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """OFFSTAT/OPT ratio vs λ, commuter dynamic load."""
    return _ratio_sweep(
        "fig15", "OFFSTAT/OPT vs λ, commuter dynamic load", "λ",
        "scenario.sojourn", tuple(int(lam) for lam in lambdas),
        ScenarioSpec("commuter", {"period": period}),
        n, horizon, runs, seed,
        "paper: benefit of flexibility peaks (≈2x) at moderate dynamics",
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


@register_figure("fig16", quick=dict(runs=5))
def figure16(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """OFFSTAT/OPT ratio vs λ, commuter static load."""
    return _ratio_sweep(
        "fig16", "OFFSTAT/OPT vs λ, commuter static load", "λ",
        "scenario.sojourn", tuple(int(lam) for lam in lambdas),
        ScenarioSpec("commuter", {"period": period, "dynamic_load": False}),
        n, horizon, runs, seed,
        "paper: β<c ≈1.2 flat then →1; β>c up to ≈2 at intermediate λ",
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


@register_figure("fig17", quick=dict(runs=5))
def figure17(
    lambdas=_OPT_LAMBDAS,
    n: int = 5,
    period: int = 4,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """OFFSTAT/OPT ratio vs λ, time zones with 3 requests/round."""
    return _ratio_sweep(
        "fig17", "OFFSTAT/OPT vs λ, time zones (3 req/round)", "λ",
        "scenario.sojourn", tuple(int(lam) for lam in lambdas),
        ScenarioSpec("timezones", {"period": period, "requests_per_round": 3}),
        n, horizon, runs, seed,
        "paper: ratio rises quickly for small λ then declines ~linearly; "
        "β<c similar to β>c",
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


@register_figure("fig18", quick=dict(runs=5))
def figure18(
    periods=_PERIODS,
    sojourn: int = 10,
    n: int = 5,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """OFFSTAT/OPT ratio vs T, commuter dynamic load."""
    return _ratio_sweep(
        "fig18", "OFFSTAT/OPT vs T, commuter dynamic load", "T",
        "scenario.period", tuple(int(T) for T in periods),
        ScenarioSpec("commuter", {"sojourn": sojourn}),
        n, horizon, runs, seed,
        "paper: ratio grows with T; β>c benefits more from flexibility",
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


@register_figure("fig19", quick=dict(runs=5))
def figure19(
    periods=_PERIODS,
    sojourn: int = 10,
    n: int = 5,
    horizon: int = 200,
    runs: int = 10,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """OFFSTAT/OPT ratio vs T, commuter static load."""
    return _ratio_sweep(
        "fig19", "OFFSTAT/OPT vs T, commuter static load", "T",
        "scenario.period", tuple(int(T) for T in periods),
        ScenarioSpec("commuter", {"sojourn": sojourn, "dynamic_load": False}),
        n, horizon, runs, seed,
        "paper: as Figure 18 but static load",
        backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison,
    )


# ---------------------------------------------------------------------------
# The Rocketfuel AS-7018 experiment (§V-B closing paragraph)
# ---------------------------------------------------------------------------


_ROCKETFUEL_TITLE = "Rocketfuel AS-7018 (AT&T-like) totals, time zone scenario"
_ROCKETFUEL_NOTES = "paper: OFFSTAT 26063.8 < ONTH 44176.3 (<2x) < ONBR 111470.3"


@register_figure("rocketfuel", quick=dict(horizon=400, runs=2))
def rocketfuel_table(
    horizon: int = 600,
    sojourn: int = 20,
    period: int = 10,
    requests_per_round: int = 10,
    runs: int = 3,
    seed: int = DEFAULT_SEED,
    substrate: "Substrate | None" = None,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Total costs of OFFSTAT, ONTH and ONBR on the AT&T-like topology.

    Paper values (real Rocketfuel AS 7018): OFFSTAT 26063.8, ONTH 44176.3
    (a factor < 2 above OFFSTAT), ONBR 111470.3. We check the ordering and
    the <2x ONTH/OFFSTAT gap; absolute values differ because the real map
    and the paper's request volume are unpublished (DESIGN.md §3).

    ``substrate`` injects a custom topology object — which cannot be
    expressed as spec data, so that path runs (and stays cached-off) as an
    inline sweep; the default AT&T-like run is a pure :class:`SweepSpec`.
    """
    if substrate is not None:
        if replication is not None:
            raise ValueError(
                "replication needs the spec-driven path; a custom substrate "
                "object cannot be expressed as spec data"
            )
        costs = CostModel(
            migration=40.0, creation=400.0, run_active=2.5, run_inactive=0.5
        )

        def replicate(_x, rng):
            trace = _timezone_trace(
                substrate, horizon, sojourn, rng, period=period,
                requests_per_round=requests_per_round, hotspot_share=0.5,
            )
            return {
                "OFFSTAT": simulate(
                    substrate, OffStat(), trace, costs, seed=rng
                ).total_cost,
                "ONTH": simulate(
                    substrate, OnTH(), trace, costs, seed=rng
                ).total_cost,
                "ONBR": simulate(
                    substrate, OnBR(), trace, costs, seed=rng
                ).total_cost,
            }

        return sweep_experiment(
            "tabR", _ROCKETFUEL_TITLE, "metric", ["total cost"], replicate,
            runs=runs, seed=seed, notes=_ROCKETFUEL_NOTES, backend=backend,
        )

    spec = SweepSpec(
        experiment=ExperimentSpec(
            # seed pinned so every replicate sees the same deterministic map
            # (the closure built it once, outside the replicate loop).
            topology=TopologySpec("att", {"seed": 7018}),
            scenario=ScenarioSpec(
                "timezones",
                {"period": period, "sojourn": sojourn, "hotspot_share": 0.5,
                 "requests_per_round": requests_per_round},
            ),
            policies=(
                PolicySpec("offstat", label="OFFSTAT"),
                PolicySpec("onth", label="ONTH"),
                PolicySpec("onbr", label="ONBR"),
            ),
            costs=CostSpec(),  # β=40, c=400, Ra=2.5, Ri=0.5 — the defaults
            horizon=horizon,
        ),
        parameter=None,
        values=("total cost",),
        runs=runs,
        seed=seed,
        figure="tabR",
        title=_ROCKETFUEL_TITLE,
        x_label="metric",
        notes=_ROCKETFUEL_NOTES,
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication, comparison=comparison)


# ---------------------------------------------------------------------------
# Heuristics vs optimal placement: the optimizer-backed policy family
# ---------------------------------------------------------------------------


@register_figure("optim", quick=dict(sojourns=(2, 5), horizon=40, runs=3))
def figure_optim(
    sojourns=(2, 5, 10),
    n: int = 5,
    epoch: int = 10,
    period: int = 4,
    horizon: int = 60,
    runs: int = 5,
    seed: int = DEFAULT_SEED,
    backend=None,
    cache=None,
    shard=None,
    replication=None,
    comparison=None,
) -> FigureResult:
    """Heuristics vs ILP vs LP-relaxation vs OPT: paired cost ratios.

    The question the reproduction was built for: how close do the paper's
    threshold heuristics get to optimizer-backed placement?  One sweep on
    the OPT line substrate runs ONTH, ONBR, the periodic re-solve ILP, its
    LP relaxation and OPT over *shared* replicate traces, and publishes
    every series as a paired (CRN) cost ratio against the ILP baseline —
    OPT's ratio shows how much optimality the one-epoch lookahead gives
    away, the heuristics' ratios what the thresholds leave on the table.

    Not a figure of the paper: the optimizer family comes from the related
    work (Stillwell et al.; Stolyar), solved per epoch as a placement MILP
    (see ``repro.algorithms.optim``).
    """
    spec = SweepSpec(
        experiment=ExperimentSpec(
            topology=_line_topology(n),
            scenario=ScenarioSpec("commuter", {"period": period}),
            policies=(
                PolicySpec("ilp", {"epoch": int(epoch)}, label="ILP"),
                PolicySpec(
                    "ilp", {"epoch": int(epoch), "relax": True}, label="LP"
                ),
                PolicySpec("onth", label="ONTH"),
                PolicySpec("onbr", label="ONBR"),
                PolicySpec("opt", label="OPT"),
            ),
            costs=CostSpec.paper_default(),
            horizon=horizon,
        ),
        parameter="scenario.sojourn",
        values=tuple(int(s) for s in sojourns),
        runs=runs,
        seed=seed,
        figure="optim",
        title="Heuristics vs ILP vs LP vs OPT (paired cost ratios, line graph)",
        x_label="λ",
        notes=(
            "ratios are paired against the ILP baseline on shared replicate "
            "traces; OPT < 1 bounds the optimality gap, heuristics > 1 is "
            "the threshold overhead"
        ),
        comparison=(
            comparison
            if comparison is not None
            else ComparisonSpec(baseline="ILP", mode="ratio")
        ),
    )
    return run_sweep(spec, backend=backend, cache=cache, shard=shard, replication=replication)
