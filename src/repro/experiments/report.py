"""Publishable experiment reports and self-contained repro bundles.

The ``report`` subcommand of ``python -m repro.experiments`` renders a
full ``EXPERIMENTS.md`` — every requested figure as a CI-annotated table,
an ASCII chart with confidence bands, paired-comparison columns, an
every-vs-every paired comparison matrix, replicate counts, cache
provenance and environment capture — and, with ``--bundle DIR``, writes a
self-contained repro bundle next to it:

``MANIFEST.json``
    environment + version capture, the figure list, and a manifest of
    every cache entry (relative path, size, sha256) the report ran over.
``specs/<key>.json``
    one JSON :class:`~repro.api.specs.SweepSpec` per rendered sweep — the
    *complete* input of the computation, so ``run --from-bundle DIR``
    replays the exact experiments and ``report --from-bundle DIR``
    re-renders the exact document.
``EXPERIMENTS.md``
    the rendered report itself.

Everything here is deterministic by construction: no timestamps, no
elapsed times, stable JSON key order — rendering twice from the same warm
cache (or once fresh and once from the bundle) is byte-identical, which
CI gates on.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

import repro
from repro.analysis.stats import comparison_matrix
from repro.api.cache import CACHE_SCHEMA, ResultCache, _code_fingerprint
from repro.api.experiment import collect_point_samples
from repro.api.specs import SweepSpec
from repro.experiments.reporting import (
    format_comparison_matrix,
    format_figure,
)
from repro.experiments.runner import FigureResult

__all__ = [
    "BUNDLE_SCHEMA",
    "ReportSection",
    "capture_environment",
    "load_bundle",
    "render_report",
    "write_bundle",
]

#: Version of the bundle layout; bumped on incompatible changes.
BUNDLE_SCHEMA = 1


@dataclass(frozen=True)
class ReportSection:
    """One rendered sweep: its key, the spec that ran, and its result."""

    key: str
    spec: SweepSpec
    result: FigureResult


def capture_environment() -> "dict[str, object]":
    """The reproducibility-relevant facts of the executing environment.

    Everything that participates in cache keys or could change results:
    interpreter, numpy, the package version and the sha256 fingerprint of
    its sources. Deliberately excludes anything time-valued so reports
    stay byte-stable across re-renders on one machine.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "repro": repro.__version__,
        "code_fingerprint": _code_fingerprint(),
        "cache_schema": CACHE_SCHEMA,
    }


def _matrix_index(spec: SweepSpec) -> int:
    """The sweep point the comparison matrix is computed at.

    The largest numeric x — where the paper's sweeps separate policies the
    most — falling back to the last grid point for non-numeric axes.
    """
    values = spec.values
    if all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in values
    ):
        return max(range(len(values)), key=lambda i: (values[i], i))
    return len(values) - 1


def _section_matrix(
    section: ReportSection,
    cache: "ResultCache | None",
    backend=None,
) -> "str | None":
    """The rendered paired-comparison matrix of one section, if possible.

    Needs at least two series and the raw per-replicate samples (loaded
    from the warm per-point cache, simulated only when missing). Mode,
    level and CI method follow the spec's :class:`ComparisonSpec` when it
    has one, defaulting to 95% Student-t differences.
    """
    result = section.result
    if len(result.series_names) < 2:
        return None
    spec = section.spec
    index = _matrix_index(spec)
    block = collect_point_samples(spec, backend=backend, cache=cache)[index]
    samples = {
        name: [replicate[name] for replicate in block]
        for name in result.series_names
    }
    comparison = spec.comparison
    matrix = comparison_matrix(
        samples,
        mode=comparison.mode if comparison else "diff",
        level=comparison.ci_level if comparison else 0.95,
        method=comparison.method if comparison else "t",
    )
    return format_comparison_matrix(
        matrix,
        x=spec.display_x(spec.values[index]),
        x_label=result.x_label,
    )


def _replication_line(section: ReportSection) -> str:
    """One bullet summarising how many replicates stand behind each point."""
    result = section.result
    spec = section.spec
    if result.counts:
        rep = spec.replication
        low, high = min(result.counts), max(result.counts)
        runs = f"{low}" if low == high else f"{low}-{high}"
        line = (
            f"replicates: {runs} per point ({sum(result.counts)} total), "
            f"{result.ci_level:.0%} {rep.method if rep else 't'} CIs"
        )
        if rep is not None and rep.adaptive:
            line += " (adaptive)"
        return line
    return f"replicates: {spec.effective_runs} per point (fixed)"


def _comparison_line(section: ReportSection) -> "str | None":
    """One bullet naming the paired baseline and how settled the sweep is."""
    result = section.result
    if not result.has_comparisons:
        return None
    first = result.comparisons[0]
    decisive = 0
    points = 0
    for comparison in result.comparisons:
        for summary in comparison.summaries():
            points += 1
            decisive += bool(summary.decisive)
    mode = "Δ = contrast − baseline" if first.mode == "diff" else \
        "ratio = contrast / baseline"
    return (
        f"paired vs {first.baseline} ({mode}, {first.level:.0%} CIs): "
        f"{decisive}/{points} point comparisons decisive"
    )


def _fence(text: str) -> str:
    return f"```text\n{text}\n```"


def render_report(
    sections: Sequence[ReportSection],
    cache: "ResultCache | None" = None,
    backend=None,
    environment: "dict | None" = None,
    matrices: bool = True,
) -> str:
    """Render ``sections`` as the full EXPERIMENTS.md markdown document.

    Deterministic for a fixed environment and warm cache: the document
    contains no timestamps and every number is a pure function of the
    specs. ``matrices`` adds, per multi-series figure, the every-vs-every
    paired comparison matrix at the sweep's largest x (computing it needs
    the raw per-replicate samples; with a warm ``cache`` nothing
    re-simulates).
    """
    environment = dict(environment or capture_environment())
    lines: "list[str]" = [
        "# Experiment report",
        "",
        "Reproduction of *On the Benefit of Virtualization: Strategies for "
        "Flexible Server Allocation* (NSDI 2011). Rendered by "
        "`repro-experiments report`; every figure below is computed from a "
        "declarative `SweepSpec` (bundled as JSON alongside this document "
        "when `--bundle` is used), so the report is deterministic: "
        "re-rendering from the same cache is byte-identical.",
        "",
        "## Environment",
        "",
        "| field | value |",
        "| --- | --- |",
    ]
    for field_name, value in environment.items():
        shown = value
        if field_name == "code_fingerprint":
            shown = f"`{str(value)[:16]}…`"
        lines.append(f"| {field_name} | {shown} |")
    lines.append("")

    for section in sections:
        result = section.result
        lines += ["", f"## {section.key} — {result.title}", ""]
        lines += [_fence(format_figure(result)), ""]
        if len(result.x_values) >= 2:
            from repro.experiments.plotting import render_figure_chart

            lines += [_fence(render_figure_chart(result)), ""]

        bullets = [
            f"grid: {len(result.x_values)} × {result.x_label} "
            f"∈ [{result.x_values[0]}, {result.x_values[-1]}]",
            _replication_line(section),
        ]
        comparison_line = _comparison_line(section)
        if comparison_line:
            bullets.append(comparison_line)
        bullets.append(f"seed: {section.spec.seed}")
        if cache is not None:
            bullets.append(
                f"cache provenance: sweep key `{cache.key_for(section.spec)}`"
            )
        lines += [f"- {bullet}" for bullet in bullets]
        lines.append("")

        if matrices:
            rendered = _section_matrix(section, cache, backend=backend)
            if rendered is not None:
                lines += [
                    f"### Paired comparison matrix — {section.key}",
                    "",
                    _fence(rendered),
                    "",
                ]

    return "\n".join(lines).rstrip("\n") + "\n"


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _cache_manifest(cache: "ResultCache | None") -> "dict | None":
    """Relative path, size and sha256 of every cache entry on disk."""
    if cache is None:
        return None
    entries = []
    for path in cache.entries():
        entries.append(
            {
                "path": str(path.relative_to(cache.root)),
                "bytes": path.stat().st_size,
                "sha256": _sha256(path),
            }
        )
    stats = cache.stats()
    return {
        "entries": entries,
        "count": stats["entries"],
        "bytes": stats["bytes"],
        "kinds": stats["kinds"],
    }


def _dump(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_bundle(
    root: "str | Path",
    sections: Sequence[ReportSection],
    cache: "ResultCache | None" = None,
    environment: "dict | None" = None,
    report_text: "str | None" = None,
) -> Path:
    """Write a self-contained repro bundle under ``root``.

    The bundle holds everything needed to replay and re-render the report:
    one spec JSON per section (``specs/<key>.json``), a ``MANIFEST.json``
    with the environment/version capture and a sha256 manifest of the
    cache entries the report ran over, and the rendered ``EXPERIMENTS.md``
    itself when ``report_text`` is given. Returns the manifest path.
    """
    root = Path(root)
    (root / "specs").mkdir(parents=True, exist_ok=True)
    figures = []
    for section in sections:
        spec_rel = f"specs/{section.key}.json"
        payload = {
            "schema": BUNDLE_SCHEMA,
            "key": section.key,
            "sweep": section.spec.to_dict(),
        }
        (root / spec_rel).write_text(_dump(payload))
        entry = {
            "key": section.key,
            "spec": spec_rel,
            "figure": section.result.figure,
            "title": section.result.title,
            "points": len(section.result.x_values),
            "series": list(section.result.series_names),
        }
        if cache is not None:
            entry["cache_key"] = cache.key_for(section.spec)
        figures.append(entry)

    manifest = {
        "schema": BUNDLE_SCHEMA,
        "tool": "repro-experiments report",
        "environment": dict(environment or capture_environment()),
        "figures": figures,
        "cache": _cache_manifest(cache),
    }
    manifest_path = root / "MANIFEST.json"
    manifest_path.write_text(_dump(manifest))
    if report_text is not None:
        (root / "EXPERIMENTS.md").write_text(report_text)
    return manifest_path


def load_bundle(
    root: "str | Path",
) -> "tuple[dict, list[tuple[str, SweepSpec]]]":
    """Read a bundle back: its manifest and the ``(key, spec)`` pairs.

    The inverse of :func:`write_bundle` as far as replaying goes:
    ``run --from-bundle`` and ``report --from-bundle`` feed the returned
    specs straight to :func:`~repro.api.experiment.run_sweep`. Raises
    :class:`ValueError` on a missing manifest, wrong schema, or a spec
    file that does not match its manifest entry.
    """
    root = Path(root)
    manifest_path = root / "MANIFEST.json"
    if not manifest_path.is_file():
        raise ValueError(f"no repro bundle at {root}: MANIFEST.json missing")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"unsupported bundle schema {manifest.get('schema')!r} "
            f"(this version reads schema {BUNDLE_SCHEMA})"
        )
    specs: "list[tuple[str, SweepSpec]]" = []
    for entry in manifest.get("figures", ()):
        spec_path = root / entry["spec"]
        if not spec_path.is_file():
            raise ValueError(
                f"bundle manifest names {entry['spec']!r} but the file is "
                "missing"
            )
        payload = json.loads(spec_path.read_text())
        if payload.get("key") != entry["key"]:
            raise ValueError(
                f"bundle spec {entry['spec']!r} holds key "
                f"{payload.get('key')!r}, manifest says {entry['key']!r}"
            )
        specs.append((entry["key"], SweepSpec.from_dict(payload["sweep"])))
    return manifest, specs
