"""Experiment harness: figure reproductions, ablations, sweeps and reports.

``repro.experiments.figures`` holds one function per figure/table of the
paper's §V; ``repro.experiments.ablations`` holds the extra design-choice
studies; :func:`sweep_experiment` is the multi-run engine and
:func:`format_figure` the plain-text renderer used by the benchmarks.

Every figure/ablation registers itself in :data:`repro.api.FIGURES` via
``@register_figure`` (together with its quick-scale parameters), and the
sweep-based ones accept a ``backend=`` argument to parallelise replicates;
see :mod:`repro.api` for the declarative spec layer and the CLI's generic
``run`` subcommand.
"""

from repro.experiments import ablations, figures
from repro.experiments.reporting import format_figure, format_table
from repro.experiments.runner import FigureResult, sweep_experiment

__all__ = [
    "figures",
    "ablations",
    "FigureResult",
    "sweep_experiment",
    "format_figure",
    "format_table",
]
