"""Tests for the declarative CLI (`python -m repro.experiments run`), the
`list` inventory subcommand and the --json/--runs/--workers flags of the
figure-regeneration path."""

import json

from repro.experiments.__main__ import build_run_parser, main, spec_from_args


class TestListCommand:
    def test_lists_every_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for family in ("policies:", "scenarios:", "topologies:", "figures:",
                       "metrics:"):
            assert family in out
        assert "onth(" in out
        assert "cost_ratio_vs(" in out

    def test_family_filter(self, capsys):
        assert main(["list", "metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics:" in out and "policies:" not in out
        assert "total_cost()" in out

    def test_scenario_signatures_drop_substrate(self, capsys):
        assert main(["list", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "substrate" not in out
        assert "sojourn" in out


class TestRunParser:
    def test_minimal(self):
        args = build_run_parser().parse_args(["--policy", "onth"])
        assert args.policy == ["onth"]
        assert args.scenario == "commuter"
        assert args.runs == 3

    def test_spec_from_args(self):
        args = build_run_parser().parse_args([
            "--policy", "onth", "--policy", "onbr:cache_size=5",
            "--topology", "erdos_renyi:n=80,p=0.05",
            "--scenario", "timezones:requests_per_round=4",
            "--horizon", "120", "--beta", "10", "--seed", "3",
        ])
        spec = spec_from_args(args)
        experiment = spec.experiment
        assert experiment.topology.kind == "erdos_renyi"
        assert experiment.topology.params == {"n": 80, "p": 0.05}
        assert experiment.scenario.params == {"requests_per_round": 4}
        assert [p.kind for p in experiment.policies] == ["onth", "onbr"]
        assert experiment.policies[1].params == {"cache_size": 5}
        assert experiment.costs.migration == 10.0
        assert experiment.horizon == 120 and experiment.seed == 3

    def test_sweep_flag(self):
        args = build_run_parser().parse_args([
            "--policy", "onth", "--sweep", "scenario.sojourn=5,10,20",
        ])
        spec = spec_from_args(args)
        assert spec.parameter == "scenario.sojourn"
        assert spec.values == (5, 10, 20)

    def test_sweep_flag_parses_booleans(self):
        # Same value grammar as component params: true/false become bools,
        # so sweeping e.g. dynamic_load actually flips the variant.
        args = build_run_parser().parse_args([
            "--policy", "onth", "--sweep", "scenario.dynamic_load=true,false",
        ])
        assert spec_from_args(args).values == (True, False)


class TestRunCommand:
    def test_acceptance_invocation(self, capsys):
        # The ISSUE acceptance command (scaled down in runs only).
        rc = main([
            "run", "--policy", "onth", "--scenario", "commuter",
            "--topology", "erdos_renyi:n=100", "--horizon", "200",
            "--runs", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ONTH" in out and "total cost" in out

    def test_multi_policy_run(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--policy", "offstat",
            "--topology", "erdos_renyi:n=40", "--horizon", "60", "--runs", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ONTH" in out and "OFFSTAT" in out

    def test_json_output_includes_spec(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--topology", "erdos_renyi:n=40",
            "--horizon", "50", "--runs", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series"]["ONTH"]
        assert payload["spec"]["experiment"]["topology"]["params"]["n"] == 40

    def test_sweep_run(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--topology", "erdos_renyi:n=40",
            "--horizon", "60", "--sweep", "scenario.sojourn=4,8",
            "--runs", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["x_values"] == [4, 8]
        assert payload["x_label"] == "scenario.sojourn"

    def test_unknown_policy_fails_with_suggestion(self, capsys):
        rc = main(["run", "--policy", "onthh", "--horizon", "10"])
        assert rc == 2
        assert "did you mean" in capsys.readouterr().err

    def test_series_label_collision_fails_cleanly(self, capsys):
        # onbr and onbr-fixed are distinct kinds that build the same policy
        # name; without explicit labels their series would collide.
        rc = main([
            "run", "--policy", "onbr", "--policy", "onbr-fixed",
            "--topology", "erdos_renyi:n=20", "--horizon", "10", "--runs", "1",
        ])
        assert rc == 2
        assert "collide on series label" in capsys.readouterr().err

    def test_label_param_disambiguates_same_name_policies(self, capsys):
        rc = main([
            "run", "--policy", "onth:label=onth-default",
            "--policy", "onth:cache_size=5,label=onth-cache5",
            "--topology", "erdos_renyi:n=20", "--horizon", "20", "--runs", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "onth-default" in out and "onth-cache5" in out

    def test_same_kind_variants_with_distinct_names_allowed(self, capsys):
        rc = main([
            "run", "--policy", "onbr",
            "--policy", "onbr:dynamic_threshold=true",
            "--topology", "erdos_renyi:n=20", "--horizon", "20", "--runs", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ONBR" in out and "ONBR-dyn" in out

    def test_metric_flag_runs_derived_series(self, capsys):
        rc = main([
            "run", "--policy", "onth",
            "--topology", "line:n=4,unit_latency=false",
            "--scenario", "commuter:period=4",
            "--metric", "cost_ratio_vs:reference=OPT",
            "--horizon", "30", "--runs", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series"]["ONTH"][0] >= 1.0 - 1e-9
        assert payload["spec"]["experiment"]["metrics"][0]["kind"] == (
            "cost_ratio_vs"
        )

    def test_metric_label_param_reserved(self, capsys):
        rc = main([
            "run", "--policy", "onth",
            "--topology", "line:n=4,unit_latency=false",
            "--scenario", "commuter:period=4",
            "--metric", "total_cost",
            "--metric", "cost_ratio_vs:reference=OPT,label=ratio",
            "--horizon", "20", "--runs", "1", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["series"]) == {"ONTH", "ratio"}

    def test_unknown_metric_fails_with_suggestion(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--metric", "total_cots",
            "--topology", "erdos_renyi:n=20", "--horizon", "10", "--runs", "1",
        ])
        assert rc == 2
        assert "did you mean" in capsys.readouterr().err

    def test_bad_metric_param_fails_fast(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--metric", "cost_ratio_vs:bogus=1",
            "--topology", "erdos_renyi:n=20", "--horizon", "10", "--runs", "1",
        ])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_colliding_metrics_fail_cleanly(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--metric", "total_cost",
            "--metric", "total_cost",
            "--topology", "erdos_renyi:n=20", "--horizon", "10", "--runs", "1",
        ])
        assert rc == 2
        assert "duplicate metrics" in capsys.readouterr().err

    def test_unknown_scenario_param_fails_cleanly(self, capsys):
        rc = main([
            "run", "--policy", "onth", "--scenario", "commuter:bogus=1",
            "--topology", "erdos_renyi:n=20", "--horizon", "10", "--runs", "1",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestFigurePathFlags:
    def test_json_flag(self, capsys):
        assert main(["fig13", "--runs", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == "fig13"
        assert payload["params"]["runs"] == 1
        assert set(payload["series"]) == {"OFFSTAT", "OPT"}

    def test_runs_override(self, capsys):
        assert main(["fig13", "--runs", "1"]) == 0
        assert "[fig13]" in capsys.readouterr().out

    def test_workers_flag(self, capsys):
        assert main(["fig13", "--runs", "1", "--workers", "2"]) == 0
        assert "[fig13]" in capsys.readouterr().out

    def test_runs_ignored_for_non_sweep_figures(self, capsys):
        assert main(["fig12", "--runs", "2"]) == 0
        captured = capsys.readouterr()
        assert "[fig12]" in captured.out
        assert "does not take --runs" in captured.err

    def test_figure_lookup_is_separator_insensitive(self, capsys):
        assert main(["abl_threshold", "--runs", "1"]) == 0
        assert "abl-threshold" in capsys.readouterr().out

    def test_figure_typo_gets_suggestion(self, capsys):
        assert main(["fig13x"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err and "did you mean" in err

    def test_figure_alias_resolves_via_live_registry(self, monkeypatch):
        # register_figure accepts aliases; they are not enumerated in the
        # snapshot but must still resolve from the command line.
        import repro.experiments.__main__ as cli
        from repro.api.registry import FIGURES

        entry = cli._REGISTRY["fig13"]
        monkeypatch.setitem(FIGURES._entries, "zz_alias_test", entry)
        monkeypatch.setitem(FIGURES._display, "zz_alias_test", "zz-alias-test")
        assert cli._lookup_figure("zz-alias-test") == "fig13"

    def test_all_with_json_is_one_document(self, capsys, monkeypatch):
        import repro.experiments.__main__ as cli

        monkeypatch.setattr(
            cli, "_REGISTRY",
            {"fig13": cli._REGISTRY["fig13"], "fig14": cli._REGISTRY["fig14"]},
        )
        assert main(["all", "--runs", "1", "--json"]) == 0
        captured = capsys.readouterr()
        payloads = json.loads(captured.out)  # must parse as a single array
        assert [p["figure"] for p in payloads] == ["fig13", "fig14"]
        assert "regenerated 2 experiments" in captured.err


class TestConfidenceFlags:
    BASE = [
        "run", "--policy", "onth", "--policy", "onbr",
        "--topology", "erdos_renyi:n=30", "--scenario", "commuter:period=4",
        "--horizon", "30", "--sweep", "scenario.sojourn=2,5", "--runs", "2",
    ]

    def test_ci_flag_adds_halfwidth_and_n_columns(self, capsys):
        rc = main(self.BASE + ["--ci", "0.9"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "±90%" in captured.out
        assert "replicates/point: 2" in captured.err

    def test_adaptive_flags_vary_per_point_n(self, capsys):
        rc = main(self.BASE + [
            "--ci", "0.95", "--target-halfwidth", "1e-9", "--max-runs", "4",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "replicates/point: 4" in captured.err  # capped at --max-runs
        lines = captured.out.splitlines()
        assert lines[1].rstrip().endswith("n")

    def test_relative_target_percentage_suffix(self):
        args = build_run_parser().parse_args(
            self.BASE[1:] + ["--target-halfwidth", "25%"]
        )
        spec = spec_from_args(args)
        assert spec.replication.relative is True
        assert spec.replication.target_halfwidth == 0.25
        from repro.experiments.__main__ import DEFAULT_MAX_RUNS

        assert spec.replication.max_runs == DEFAULT_MAX_RUNS

    def test_cli_default_max_runs_applied(self):
        from repro.experiments.__main__ import DEFAULT_MAX_RUNS, _replication_for

        args = build_run_parser().parse_args(
            self.BASE[1:] + ["--target-halfwidth", "10"]
        )
        replication = _replication_for(args)
        assert replication.max_runs == DEFAULT_MAX_RUNS
        assert replication.relative is False

    def test_json_payload_carries_ci_and_counts(self, capsys):
        rc = main(self.BASE + [
            "--ci", "0.95", "--target-halfwidth", "1e-9", "--max-runs", "3",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ci_level"] == 0.95
        assert payload["counts"] == [3, 3]
        assert set(payload["ci"]) == {"ONTH", "ONBR"}
        assert payload["spec"]["replication"]["target_halfwidth"] == 1e-9

    def test_plot_shades_ci_bands(self, capsys):
        rc = main(self.BASE + ["--ci", "0.9", "--plot"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "·" in out and "90% CI" in out

    def test_bad_combinations_fail_fast(self, capsys):
        rc = main(self.BASE + [
            "--target-halfwidth", "10", "--max-runs", "1",
        ])
        assert rc == 2
        assert "--max-runs" in capsys.readouterr().err

    def test_bad_values_rejected_by_argparse(self, capsys):
        import pytest

        for flags in (["--ci", "1.5"], ["--ci", "x"],
                      ["--target-halfwidth", "-2"],
                      ["--target-halfwidth", "abc%"]):
            with pytest.raises(SystemExit):
                build_run_parser().parse_args(self.BASE[1:] + flags)

    def test_figure_mode_threads_replication(self, capsys):
        rc = main([
            "fig03", "--runs", "2",
            "--ci", "0.9", "--target-halfwidth", "1e-9", "--max-runs", "3",
        ])
        assert rc == 0
        captured = capsys.readouterr()
        assert "±90%" in captured.out
        assert "replicates/point: 3" in captured.err

    def test_non_sweep_figures_ignore_the_flags_with_a_note(self, capsys):
        rc = main(["fig12", "--ci", "0.9"])
        assert rc == 0
        assert "does not take --ci" in capsys.readouterr().err

    def test_cached_adaptive_rerun_reports_topup_batches(self, tmp_path, capsys):
        flags = self.BASE + [
            "--ci", "0.95", "--target-halfwidth", "1e-9", "--max-runs", "3",
            "--cache-dir", str(tmp_path),
        ]
        assert main(flags) == 0
        first = capsys.readouterr().err
        assert "cache miss" in first and "computed" in first
        # drop the sweep entry so the rerun replays per-point + top-up entries
        from repro.api.cache import ResultCache
        from repro.experiments.__main__ import build_run_parser, spec_from_args

        cache = ResultCache(tmp_path)
        cache.path_for(spec_from_args(build_run_parser().parse_args(flags[1:]))).unlink()
        assert main(flags) == 0
        second = capsys.readouterr().err
        assert "points: 2/2 cached" in second
        assert "top-up batches: 2 cached, 0 computed" in second

    def test_figure_mode_max_runs_below_figure_default_fails_fast(self, capsys):
        # fig03's quick scale defaults to runs=3; --max-runs 2 must exit 2
        # with a one-line error, not a mid-sweep traceback.
        rc = main(["fig03", "--target-halfwidth", "5%", "--max-runs", "2"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--max-runs" in err and "fig03" in err

    def test_nan_and_inf_targets_rejected(self):
        import pytest
        from repro.api.specs import ReplicationSpec

        with pytest.raises(ValueError, match="finite"):
            ReplicationSpec(target_halfwidth=float("nan"), max_runs=30)
        with pytest.raises(ValueError, match="finite"):
            ReplicationSpec(target_halfwidth=float("inf"), max_runs=30)
        for bad in ("nan", "inf", "nan%"):
            with pytest.raises(SystemExit):
                build_run_parser().parse_args(
                    ["--policy", "onth", "--target-halfwidth", bad]
                )

    def test_dead_confidence_flags_are_hard_errors(self, capsys):
        # --max-runs without a target, and --ci-method without any
        # confidence flag, would otherwise be silently ignored.
        rc = main(self.BASE + ["--max-runs", "50"])
        assert rc == 2
        assert "--target-halfwidth" in capsys.readouterr().err
        rc = main(self.BASE + ["--ci", "0.9", "--max-runs", "50"])
        assert rc == 2
        assert "--target-halfwidth" in capsys.readouterr().err
        rc = main(self.BASE + ["--ci-method", "bootstrap"])
        assert rc == 2
        assert "--ci-method" in capsys.readouterr().err
        rc = main(["fig03", "--max-runs", "50"])
        assert rc == 2
        assert "--target-halfwidth" in capsys.readouterr().err
