"""Tests for ONCONF (repro.algorithms.onconf)."""

import numpy as np
import pytest

from repro.algorithms.onconf import OnConf
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestConfigurationSpace:
    def test_space_size(self, line5, costs, rng):
        policy = OnConf(max_servers=2)
        policy.reset(line5, costs, rng)
        # C(5,1) + C(5,2) = 5 + 10
        assert policy.n_configurations == 15

    def test_space_size_k3(self, line5, costs, rng):
        policy = OnConf(max_servers=3)
        policy.reset(line5, costs, rng)
        assert policy.n_configurations == 25

    def test_k_clamped_to_n(self, costs, rng):
        sub = line(3, seed=0)
        policy = OnConf(max_servers=10)
        policy.reset(sub, costs, rng)
        assert policy.n_configurations == 7  # all non-empty subsets

    def test_budget_guard(self, costs, rng):
        from repro.topology.generators import erdos_renyi

        sub = erdos_renyi(300, seed=0)
        with pytest.raises(ValueError, match="budget"):
            OnConf(max_servers=3).reset(sub, costs, rng)

    def test_starts_at_center(self, line5, costs, rng):
        policy = OnConf(max_servers=2)
        cfg = policy.reset(line5, costs, rng)
        assert cfg == Configuration.single(line5.center)


class TestCounterDynamics:
    def test_no_switch_while_below_threshold(self, line5, costs):
        """k·c = 800 with tiny demand: no reconfiguration in a short run."""
        trace = trace_of(*[[2]] * 10)
        result = simulate(line5, OnConf(max_servers=2), trace, costs, seed=0)
        assert result.total_migrations == 0
        assert result.total_creations == 0

    def test_switches_when_counter_fills(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=5, creation=20, run_active=0.5, run_inactive=0.1)
        # demand far from center: counter of start config grows fast (k·c=40)
        trace = trace_of(*[[0, 0, 0]] * 40)
        result = simulate(sub, OnConf(max_servers=2), trace, cm, seed=1)
        assert result.total_migrations + result.total_creations >= 1

    def test_deterministic_variant_reproducible(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=5, creation=20, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[0, 4]] * 50)
        a = simulate(sub, OnConf(max_servers=2, deterministic=True), trace, cm, seed=1)
        b = simulate(sub, OnConf(max_servers=2, deterministic=True), trace, cm, seed=99)
        np.testing.assert_allclose(a.per_round_total, b.per_round_total)

    def test_random_variant_seed_dependent_but_deterministic(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=5, creation=20, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[0, 4]] * 60)
        a = simulate(sub, OnConf(max_servers=2), trace, cm, seed=7)
        b = simulate(sub, OnConf(max_servers=2), trace, cm, seed=7)
        np.testing.assert_allclose(a.per_round_total, b.per_round_total)

    def test_epoch_reset_when_all_counters_full(self):
        """With a minuscule threshold every configuration fills instantly."""
        sub = line(3, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=0.5, creation=0.5, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[0, 2]] * 30)
        result = simulate(sub, OnConf(max_servers=1), trace, cm, seed=3)
        # the run completes; epochs reset instead of thrashing forever
        assert result.rounds == 30

    def test_always_one_active_config(self, line5, costs):
        scenario = CommuterScenario(line5, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 60, seed=1)
        result = simulate(line5, OnConf(max_servers=2), trace, costs, seed=0)
        assert (result.n_active >= 1).all()
        assert (result.n_inactive == 0).all()  # ONCONF holds no cache


class TestAgainstBetterInformedBaselines:
    def test_oncf_at_least_matches_static_far_server(self):
        """ONCONF should eventually escape a terrible start position."""
        from repro.algorithms.static import StaticPolicy

        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=5, creation=20, run_active=0.5, run_inactive=0.1)
        trace = trace_of(*[[4, 4]] * 80)
        onconf = simulate(
            sub, OnConf(max_servers=2, start_node=0, deterministic=True),
            trace, cm, seed=0,
        )
        static_far = simulate(
            sub, StaticPolicy(Configuration.single(0),
                              start=Configuration.single(0)),
            trace, cm,
        )
        assert onconf.total_cost < static_far.total_cost
