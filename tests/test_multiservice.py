"""Tests for the shared-substrate multi-service extension (repro.core.multiservice)."""

import numpy as np
import pytest

from repro.algorithms import OnTH, StaticPolicy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.load import QuadraticLoad
from repro.core.multiservice import ServiceSpec, simulate_services
from repro.core.simulator import simulate
from repro.topology.generators import line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.timezones import TimeZoneScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


def static(node):
    cfg = Configuration.single(node)
    return StaticPolicy(cfg, start=cfg)


class TestValidation:
    def test_needs_services(self, line5):
        with pytest.raises(ValueError, match="at least one"):
            simulate_services(line5, [])

    def test_unique_names(self, line5):
        spec = ServiceSpec("a", static(0), trace_of([0]))
        with pytest.raises(ValueError, match="duplicate"):
            simulate_services(line5, [spec, ServiceSpec("a", static(1), trace_of([1]))])

    def test_equal_horizons(self, line5):
        a = ServiceSpec("a", static(0), trace_of([0]))
        b = ServiceSpec("b", static(1), trace_of([1], [1]))
        with pytest.raises(ValueError, match="equal length"):
            simulate_services(line5, [a, b])

    def test_trace_in_substrate(self, line5):
        spec = ServiceSpec("a", static(0), trace_of([9]))
        with pytest.raises(ValueError, match="outside"):
            simulate_services(line5, [spec])


class TestSingleServiceEquivalence:
    def test_matches_plain_simulator_for_linear_load(self, line5, costs):
        """With one service the multi-service loop is the ordinary game."""
        scenario = CommuterScenario(line5, period=4, sojourn=3)
        trace = generate_trace(scenario, 30, seed=1)
        solo = simulate(line5, OnTH(), trace, costs, seed=2)
        multi = simulate_services(
            line5, [ServiceSpec("svc", OnTH(), trace)], costs, seed=2
        )["svc"]
        assert multi.total_cost == pytest.approx(solo.total_cost)
        np.testing.assert_array_equal(multi.n_active, solo.n_active)


class TestLoadCoupling:
    def test_colocated_services_share_linear_load_fairly(self, line5):
        """Linear load: proportional attribution equals stand-alone cost."""
        costs = CostModel.paper_default()
        a = ServiceSpec("a", static(2), trace_of([2, 2]))
        b = ServiceSpec("b", static(2), trace_of([2]))
        results = simulate_services(line5, [a, b], costs)
        # node 2 serves 3 requests, load 3; a gets 2/3, b gets 1/3
        assert results["a"].load_cost[0] == pytest.approx(2.0)
        assert results["b"].load_cost[0] == pytest.approx(1.0)

    def test_convex_load_makes_colocation_expensive(self, line5):
        """Quadratic node load: sharing a node hurts both services."""
        costs = CostModel.paper_default(load=QuadraticLoad())
        together = simulate_services(
            line5,
            [
                ServiceSpec("a", static(2), trace_of([2, 2])),
                ServiceSpec("b", static(2), trace_of([2, 2])),
            ],
            costs,
        )
        apart = simulate_services(
            line5,
            [
                ServiceSpec("a", static(1), trace_of([1, 1])),
                ServiceSpec("b", static(3), trace_of([3, 3])),
            ],
            costs,
        )
        shared_load = together["a"].load_cost[0] + together["b"].load_cost[0]
        separate_load = apart["a"].load_cost[0] + apart["b"].load_cost[0]
        # 16 total vs 4+4: contention is visible
        assert shared_load == pytest.approx(16.0)
        assert separate_load == pytest.approx(8.0)

    def test_total_load_conserved(self, line5, costs):
        """Per-service attributed loads sum to the substrate's node load."""
        a = ServiceSpec("a", static(1), trace_of([1, 1, 1]))
        b = ServiceSpec("b", static(1), trace_of([1]))
        results = simulate_services(line5, [a, b], costs)
        total = results["a"].load_cost[0] + results["b"].load_cost[0]
        assert total == pytest.approx(4.0)  # linear load of 4 requests


class TestIndependentFleets:
    def test_policies_adapt_independently(self, costs):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)
        hot_right = trace_of(*[[8, 8]] * 50)
        hot_left = trace_of(*[[0, 0]] * 50)
        results = simulate_services(
            sub,
            [
                ServiceSpec("right", OnTH(), hot_right),
                ServiceSpec("left", OnTH(), hot_left),
            ],
            cm,
            seed=0,
        )
        # each fleet chased its own demand
        assert results["right"].latency_cost[-1] == 0.0
        assert results["left"].latency_cost[-1] == 0.0
        assert results["right"].total_migrations >= 1
        assert results["left"].total_migrations >= 1

    def test_per_service_cost_models(self, line5):
        expensive = CostModel.migration_expensive()
        cheap = CostModel.paper_default()
        results = simulate_services(
            line5,
            [
                ServiceSpec("cheap", static(2), trace_of([0], [0]), costs=cheap),
                ServiceSpec("dear", static(2), trace_of([0], [0]), costs=expensive),
            ],
        )
        assert results["cheap"].running_cost[0] == pytest.approx(2.5)
        assert results["dear"].running_cost[0] == pytest.approx(2.5)

    def test_deterministic(self, line5, costs):
        scenario = TimeZoneScenario(line5, period=3, sojourn=3, requests_per_round=3)
        trace = generate_trace(scenario, 20, seed=4)
        runs = []
        for _ in range(2):
            results = simulate_services(
                line5, [ServiceSpec("svc", OnTH(), trace)], costs, seed=9
            )
            runs.append(results["svc"].total_cost)
        assert runs[0] == runs[1]


def capped_line(capacity):
    return line(5, seed=0, capacity=capacity)


def static_at(*nodes):
    cfg = Configuration(tuple(nodes))
    return StaticPolicy(cfg, start=cfg)


class TestCapacitatedRouting:
    def test_spill_over_to_next_nearest(self):
        """A full node spills requests to the next-nearest active server."""
        sub = capped_line(1.0)
        results = simulate_services(
            sub,
            [ServiceSpec("svc", static_at(1, 3), trace_of([1, 1]))],
            CostModel.paper_default(),
        )
        # first request served at node 1 (distance 0), second spills to 3
        assert results["svc"].latency_cost[0] == pytest.approx(2.0)

    def test_ties_break_to_lower_node_index(self):
        sub = capped_line(1.0)
        results = simulate_services(
            sub,
            [ServiceSpec("svc", static_at(1, 3), trace_of([2, 0]))],
            CostModel.paper_default(),
        )
        # the node-2 request ties between servers 1 and 3 and takes 1,
        # forcing the node-0 request all the way to server 3 (distance 3)
        assert results["svc"].latency_cost[0] == pytest.approx(1.0 + 3.0)

    def test_unpackable_round_raises(self):
        sub = capped_line(1.0)
        with pytest.raises(ValueError, match="at capacity"):
            simulate_services(
                sub,
                [ServiceSpec("svc", static(2), trace_of([2, 2]))],
                CostModel.paper_default(),
            )

    def test_budget_is_shared_across_services(self):
        """Earlier-declared services consume the shared per-node budget."""
        sub = capped_line(1.0)
        results = simulate_services(
            sub,
            [
                ServiceSpec("first", static(2), trace_of([2])),
                ServiceSpec("second", static_at(2, 4), trace_of([2])),
            ],
            CostModel.paper_default(),
        )
        assert results["first"].latency_cost[0] == pytest.approx(0.0)
        # node 2 is full: the second service's request spills to its node 4
        assert results["second"].latency_cost[0] == pytest.approx(2.0)

    def test_non_binding_capacity_is_bit_identical(self, line5, costs):
        """A capacity that never binds reproduces the uncapacitated path
        exactly — every per-round float, not just the totals."""
        scenario = TimeZoneScenario(line5, period=3, sojourn=3, requests_per_round=3)
        trace = generate_trace(scenario, 20, seed=4)
        loose = simulate_services(
            capped_line(100.0), [ServiceSpec("svc", OnTH(), trace)], costs, seed=9
        )["svc"]
        free = simulate_services(
            line5, [ServiceSpec("svc", OnTH(), trace)], costs, seed=9
        )["svc"]
        np.testing.assert_array_equal(loose.latency_cost, free.latency_cost)
        np.testing.assert_array_equal(loose.load_cost, free.load_cost)
        np.testing.assert_array_equal(loose.migration_cost, free.migration_cost)
        assert loose.total_cost == free.total_cost
