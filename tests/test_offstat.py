"""Tests for OFFSTAT (repro.algorithms.offstat)."""

import numpy as np
import pytest

from repro.algorithms.offstat import OffStat
from repro.algorithms.static import StaticPolicy
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi, line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestGreedyPlacement:
    def test_single_server_at_demand_weighted_optimum(self):
        sub = line(5, seed=0, unit_latency=False, latency_range=(10, 10))
        # demand concentrated at node 4
        trace = trace_of(*[[4, 4, 4]] * 20)
        offstat = OffStat(max_servers=1)
        simulate(sub, offstat, trace, CostModel.paper_default())
        assert offstat.target == Configuration.single(4)

    def test_two_servers_cover_two_clusters(self):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        trace = trace_of(*[[0, 0, 8, 8]] * 30)
        cm = CostModel(migration=10, creation=30, run_active=0.5, run_inactive=0.1)
        offstat = OffStat()
        simulate(sub, offstat, trace, cm)
        assert offstat.kopt == 2
        assert set(offstat.target.active) == {0, 8}

    def test_placements_are_nested(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 40, seed=0)
        offstat = OffStat(max_servers=4)
        simulate(line5_latency, offstat, trace, costs)
        placements = offstat.placements
        for smaller, larger in zip(placements, placements[1:]):
            assert set(smaller) <= set(larger)

    def test_cost_curve_matches_kopt(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 40, seed=1)
        offstat = OffStat(max_servers=4)
        simulate(line5_latency, offstat, trace, costs)
        curve = offstat.cost_curve
        assert offstat.kopt == int(np.argmin(curve)) + 1

    def test_running_cost_limits_fleet_size(self):
        """Expensive running costs force kopt = 1 despite spread demand."""
        sub = line(9, seed=0, unit_latency=False, latency_range=(1, 1))
        trace = trace_of(*[[0, 8]] * 10)
        cm = CostModel(migration=10, creation=30, run_active=50, run_inactive=1)
        offstat = OffStat()
        simulate(sub, offstat, trace, cm)
        assert offstat.kopt == 1


class TestCostAccounting:
    def test_simulated_cost_close_to_internal_estimate(self, line5_latency, costs):
        """The curve's chosen value matches the simulated ledger total.

        The internal estimate prices build-out + access + running, which is
        exactly what the simulator charges a static fleet (the one-round
        delay of the switch costs the difference between serving round 0
        from γ0 vs from the fleet — bounded by one round's access).
        """
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 50, seed=2)
        offstat = OffStat()
        result = simulate(line5_latency, offstat, trace, costs)
        internal = offstat.cost_curve[offstat.kopt - 1]
        assert result.total_cost == pytest.approx(internal, rel=0.05)

    def test_charge_build_false_is_cheaper(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 50, seed=3)
        charged = simulate(line5_latency, OffStat(), trace, costs)
        free = simulate(line5_latency, OffStat(charge_build=False), trace, costs)
        assert free.total_cost <= charged.total_cost + 1e-9

    def test_static_fleet_never_moves(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 50, seed=4)
        result = simulate(line5_latency, OffStat(), trace, costs)
        # all transitions happen in round 0 (the build-out)
        assert result.migrations[1:].sum() == 0
        assert result.creations[1:].sum() == 0

    def test_beats_arbitrary_static_choice(self, costs):
        """OFFSTAT's fleet is at least as good as a random static fleet."""
        sub = erdos_renyi(30, p=0.15, seed=1)
        scenario = CommuterScenario(sub, period=6, sojourn=4)
        trace = generate_trace(scenario, 60, seed=5)
        offstat = OffStat()
        best = simulate(sub, offstat, trace, costs)
        rng = np.random.default_rng(0)
        for _ in range(3):
            nodes = rng.choice(30, size=offstat.kopt, replace=False)
            fixed = simulate(
                sub, StaticPolicy(Configuration(tuple(int(v) for v in nodes))),
                trace, costs,
            )
            assert best.total_cost <= fixed.total_cost + 1e-6


class TestGuards:
    def test_requires_prepare(self, line5, costs, rng):
        with pytest.raises(RuntimeError, match="prepare"):
            OffStat().reset(line5, costs, rng)

    def test_unsolved_access_raises(self):
        offstat = OffStat()
        with pytest.raises(RuntimeError, match="not been solved"):
            offstat.kopt

    def test_max_servers_limits_curve(self, line5_latency, costs):
        scenario = CommuterScenario(line5_latency, period=4, sojourn=3)
        trace = generate_trace(scenario, 30, seed=6)
        offstat = OffStat(max_servers=2)
        simulate(line5_latency, offstat, trace, costs)
        assert len(offstat.cost_curve) == 2
        assert offstat.kopt <= 2

    def test_early_stopping_on_rising_curve(self, costs):
        """Unbounded search stops once the curve keeps rising."""
        sub = erdos_renyi(40, p=0.15, seed=2)
        trace = trace_of(*[[0]] * 20)  # one trivial demand point
        offstat = OffStat()
        simulate(sub, offstat, trace, costs)
        assert len(offstat.cost_curve) < 40
