"""Property-based tests (hypothesis) for the traces subsystem.

Pinned invariants: Trace persistence/window/concat round-trips preserve
data, metadata and dtype under any suffix; node mapping is a total,
deterministic function; arrival scenarios are (seed, params)-reproducible
and streaming-identical on arbitrary parameters.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.topology.generators import line
from repro.traces.arrivals import (
    DiurnalWavesScenario,
    FlashCrowdScenario,
    GammaArrivalScenario,
)
from repro.traces.replay import make_mapper
from repro.traces.streaming import StreamingTrace
from repro.workload.base import Trace

LINE7 = line(7, seed=0)

rounds_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), max_size=6).map(
        lambda xs: np.asarray(xs, dtype=np.int64)
    ),
    max_size=8,
)

metadata_strategy = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.one_of(st.integers(), st.floats(allow_nan=False), st.text(max_size=8)),
    max_size=4,
)

key_strategy = st.one_of(
    st.text(max_size=12), st.integers(), st.tuples(st.integers(), st.text(max_size=4))
)


class TestTraceRoundTrips:
    @given(rounds=rounds_strategy, metadata=metadata_strategy,
           suffix=st.sampled_from(["", ".npz"]))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_save_load_preserves_everything(self, tmp_path, rounds, metadata, suffix):
        trace = Trace(tuple(rounds), scenario_name="prop", metadata=metadata)
        written = trace.save(tmp_path / f"t{suffix}")
        assert written.suffix == ".npz"
        loaded = Trace.load(written)
        assert len(loaded) == len(trace)
        assert loaded.scenario_name == "prop"
        assert loaded.metadata == metadata
        for a, b in zip(loaded, trace):
            assert a.dtype == np.int64
            np.testing.assert_array_equal(a, b)

    @given(rounds=rounds_strategy, data=st.data())
    @settings(max_examples=30)
    def test_window_preserves_rounds_and_metadata(self, rounds, data):
        trace = Trace(tuple(rounds), scenario_name="w", metadata={"k": 1})
        start = data.draw(st.integers(0, len(trace)))
        stop = data.draw(st.integers(start, len(trace)))
        sub = trace.window(start, stop)
        assert len(sub) == stop - start
        assert sub.scenario_name == "w"
        assert sub.metadata == {"k": 1}
        for i, arr in enumerate(sub):
            np.testing.assert_array_equal(arr, trace[start + i])

    @given(a=rounds_strategy, b=rounds_strategy)
    @settings(max_examples=30)
    def test_concat_is_length_and_count_additive(self, a, b):
        ta = Trace(tuple(a), metadata={"m": "a"})
        tb = Trace(tuple(b))
        joined = ta.concat(tb)
        assert len(joined) == len(ta) + len(tb)
        assert joined.total_requests == ta.total_requests + tb.total_requests
        assert joined.metadata == ta.metadata


class TestNodeMapping:
    @given(keys=st.lists(key_strategy, max_size=30),
           mapping=st.sampled_from(["hash", "round_robin"]),
           n_targets=st.integers(1, 9))
    @settings(max_examples=50)
    def test_mapping_is_total_and_deterministic(self, keys, mapping, n_targets):
        targets = np.arange(n_targets)
        first = [make_mapper(mapping, targets)(k) for k in keys]
        second = [make_mapper(mapping, targets)(k) for k in keys]
        assert first == second  # fresh mapper, same file order => same nodes
        assert all(0 <= node < n_targets for node in first)

    @given(keys=st.lists(key_strategy, min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_hash_is_order_independent(self, keys):
        targets = np.arange(5)
        forward = make_mapper("hash", targets)
        backward = make_mapper("hash", targets)
        assert [forward(k) for k in keys] == list(
            reversed([backward(k) for k in reversed(keys)])
        )


SCENARIO_STRATEGY = st.one_of(
    st.builds(
        lambda rate, cv, burst: GammaArrivalScenario(
            LINE7, rate=rate, cv=cv, burst_length=burst
        ),
        rate=st.floats(0.5, 20.0),
        cv=st.floats(0.1, 4.0),
        burst=st.integers(1, 10),
    ),
    st.builds(
        lambda event_rate, peak, ramp: FlashCrowdScenario(
            LINE7, event_rate=event_rate, peak=peak, ramp=ramp
        ),
        event_rate=st.floats(0.0, 0.5),
        peak=st.floats(1.0, 50.0),
        ramp=st.integers(1, 5),
    ),
    st.builds(
        lambda regions, day: DiurnalWavesScenario(
            LINE7, n_regions=regions, day_length=day
        ),
        regions=st.integers(1, 5),
        day=st.integers(2, 20),
    ),
)


class TestArrivalReproducibility:
    @given(scenario=SCENARIO_STRATEGY, seed=st.integers(0, 2**32 - 1),
           horizon=st.integers(0, 25))
    @settings(max_examples=40, deadline=None)
    def test_seed_params_reproducible(self, scenario, seed, horizon):
        a = scenario.generate(horizon, np.random.default_rng(seed))
        b = scenario.generate(horizon, np.random.default_rng(seed))
        assert len(a) == len(b) == horizon
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    @given(scenario=SCENARIO_STRATEGY, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_materialised(self, scenario, seed):
        lazy = StreamingTrace(scenario, 15, seed=seed)
        eager = scenario.generate(15, np.random.default_rng(seed))
        for x, y in zip(lazy, eager):
            np.testing.assert_array_equal(x, y)
