"""Tests for transition pricing — including the paper's Examples 1-3 (§II-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.transitions import price_transition

CM = CostModel.paper_default()  # β=40 < c=400
CM_EXPENSIVE = CostModel.migration_expensive()  # β=400 > c=40


class TestPaperExample1:
    """Three active servers at v1,v2,v3; add a server at v4 (§II-C Ex. 1)."""

    def test_case1_no_inactive_creates(self):
        old = Configuration((1, 2, 3))
        new = Configuration((1, 2, 3, 4))
        out = price_transition(old, new, CM)
        assert out.creations == 1 and out.migrations == 0
        assert out.cost == CM.creation

    def test_case2_inactive_at_target_activates_free(self):
        old = Configuration((1, 2, 3), (4,))
        new = Configuration((1, 2, 3, 4))
        out = price_transition(old, new, CM)
        assert out.activations == 1
        assert out.cost == 0.0

    def test_case3_inactive_elsewhere_migrates(self):
        old = Configuration((1, 2, 3), (5,))
        new = Configuration((1, 2, 3, 4))  # v5's server gone afterwards
        out = price_transition(old, new, CM)
        assert out.migrations == 1 and out.creations == 0
        assert out.cost == CM.migration


class TestPaperExample2:
    """Servers at v1,v2,v3; change to v1,v2,v4 (§II-C Ex. 2)."""

    def test_case1_inactive_at_v4_free(self):
        old = Configuration((1, 2, 3), (4,))
        new = Configuration((1, 2, 4), (3,))  # v3 deactivates, v4 activates
        out = price_transition(old, new, CM)
        assert out.cost == 0.0
        assert out.activations == 1 and out.deactivations == 1

    def test_case2_migrate_inactive_from_v5(self):
        old = Configuration((1, 2, 3), (5,))
        new = Configuration((1, 2, 4), (3,))  # v5 vanished, v3 cached
        out = price_transition(old, new, CM)
        assert out.migrations == 1
        assert out.cost == CM.migration

    def test_case3_migrate_active_v3(self):
        old = Configuration((1, 2, 3))
        new = Configuration((1, 2, 4))  # no server at v3 anymore
        out = price_transition(old, new, CM)
        assert out.migrations == 1
        assert out.cost == CM.migration


class TestPaperExample3:
    """Removing a server is free; it enters the inactive cache (§II-C Ex. 3)."""

    def test_deactivation_free(self):
        old = Configuration((1, 2, 3))
        new = Configuration((1, 3), (2,))
        out = price_transition(old, new, CM)
        assert out.cost == 0.0
        assert out.deactivations == 1

    def test_dropping_entirely_also_free(self):
        old = Configuration((1, 2, 3))
        new = Configuration((1, 3))
        out = price_transition(old, new, CM)
        assert out.cost == 0.0
        assert out.dropped == 1


class TestGeneralPricing:
    def test_identity_is_free(self):
        cfg = Configuration((1, 2), (3,))
        assert price_transition(cfg, cfg, CM).cost == 0.0

    def test_beta_greater_than_c_never_migrates(self):
        old = Configuration((1,))
        new = Configuration((2,))
        out = price_transition(old, new, CM_EXPENSIVE)
        assert out.migrations == 0 and out.creations == 1
        assert out.cost == CM_EXPENSIVE.creation

    def test_multiple_newcomers_mix_migrations_and_creations(self):
        old = Configuration((1,), (2,))
        new = Configuration((3, 4, 5))  # 3 newcomers, donors: v1? no—v1 stays?
        # v1 is dropped (not in new), v2 dropped: 2 donors, so 2 migrations + 1 creation
        out = price_transition(old, new, CM)
        assert out.migrations == 2 and out.creations == 1
        assert out.cost == 2 * CM.migration + CM.creation

    def test_fresh_inactive_server_costs_creation(self):
        old = Configuration((1,))
        new = Configuration((1,), (2,))
        out = price_transition(old, new, CM)
        assert out.creations == 1
        assert out.cost == CM.creation

    def test_expiring_inactive_servers_free(self):
        old = Configuration((1,), (2, 3))
        new = Configuration((1,))
        out = price_transition(old, new, CM)
        assert out.cost == 0.0
        assert out.dropped == 2

    def test_full_turnover(self):
        old = Configuration((1, 2))
        new = Configuration((3, 4))
        out = price_transition(old, new, CM)
        assert out.migrations == 2
        assert out.cost == 2 * CM.migration

    def test_grow_fleet_beyond_donors(self):
        old = Configuration((0,))
        new = Configuration((1, 2, 3))
        out = price_transition(old, new, CM)
        assert out.migrations == 1 and out.creations == 2


class TestMatrixPricing:
    def make_model(self):
        matrix = np.array(
            [
                [0.0, 10.0, 500.0],
                [10.0, 0.0, 20.0],
                [500.0, 20.0, 0.0],
            ]
        )
        return CostModel(migration=40, creation=100, migration_matrix=matrix)

    def test_cheap_pair_migrates(self):
        cm = self.make_model()
        out = price_transition(Configuration((0,)), Configuration((1,)), cm)
        assert out.migrations == 1
        assert out.migration_cost == 10.0

    def test_expensive_pair_creates_instead(self):
        cm = self.make_model()
        out = price_transition(Configuration((0,)), Configuration((2,)), cm)
        assert out.migrations == 0 and out.creations == 1
        assert out.cost == 100.0

    def test_optimal_matching_two_moves(self):
        """Hungarian matching picks the cheap pairing, not the greedy one."""
        matrix = np.array(
            [
                [0.0, 5.0, 60.0],
                [5.0, 0.0, 50.0],
                [60.0, 50.0, 0.0],
            ]
        )
        cm = CostModel(creation=100, migration_matrix=matrix)
        old = Configuration((0, 1))
        new = Configuration((2,), ())
        # one newcomer (2), donors {0, 1}: best donor is 1 at cost 50
        out = price_transition(old, new, cm)
        assert out.migration_cost == 50.0


@settings(max_examples=80, deadline=None)
@given(
    old_active=st.sets(st.integers(0, 9), max_size=4),
    old_inactive=st.sets(st.integers(10, 14), max_size=3),
    new_active=st.sets(st.integers(0, 14), min_size=0, max_size=4),
    expensive=st.booleans(),
)
def test_pricing_properties(old_active, old_inactive, new_active, expensive):
    """Cost is non-negative, bounded by all-creations, and zero for subsets."""
    cm = CM_EXPENSIVE if expensive else CM
    old = Configuration.of(old_active, old_inactive)
    new = Configuration.of(new_active)
    out = price_transition(old, new, cm)

    assert out.cost >= 0.0
    newcomers = new_active - old_active - old_inactive
    assert out.cost <= len(newcomers) * cm.creation
    if new_active <= (old_active | old_inactive):
        assert out.cost == 0.0
    # conservation: every newcomer is either migrated-to or created
    assert out.migrations + out.creations == len(newcomers)
