"""Paired policy-vs-policy comparisons on the sweep engine.

The contracts pinned here:

* comparisons are strictly additive: a sweep re-run with a
  :class:`ComparisonSpec` reproduces the marginal series *bit for bit*
  (golden-pinned for fig03) and reuses every per-point cache entry — no
  new point entries, no new simulation;
* serial, pooled and 2-shard-assembled executions agree on the comparison
  payloads exactly;
* adaptive replication driven by the *paired* halfwidth stops with fewer
  (or equal) total replicates than the marginal criterion on the fig03
  smoke case, while settling the identical policy orderings;
* spec/result round trips, resolve errors, reporting columns, the
  difference-band chart, and the CLI flags (`--compare`,
  `--compare-mode`).
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import (
    ExecutionBackend,
    ProcessPoolBackend,
    QueueBackend,
    SerialBackend,
)
from repro.api.experiment import capture_sweeps, refine_sweep, run_sweep
from repro.api.specs import (
    ComparisonSpec,
    ExperimentSpec,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.experiments import figures
from repro.experiments.__main__ import main
from repro.experiments.plotting import render_comparison_chart
from repro.experiments.reporting import format_figure
from repro.experiments.runner import ComparisonResult, FigureResult

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_figures.json").read_text()
)

#: The golden fig03 parameterisation (see tests/test_sharded_sweeps.py).
FIG03_PARAMS = dict(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)

#: fig03's series labels; ONTH is the natural baseline (the paper's best).
VS_ONTH = ComparisonSpec(baseline="ONTH")


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 6}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("offstat", label="OFFSTAT"),
            ),
            horizon=60,
        ),
        parameter="scenario.sojourn",
        values=(2, 5, 9),
        runs=2,
        seed=3,
        figure="t",
        comparison=ComparisonSpec(baseline="OFFSTAT"),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestComparisonSpecValidation:
    def test_round_trip_and_unknown_keys(self):
        spec = ComparisonSpec(
            baseline="OPT", contrasts=("ONTH", "ONBR"), mode="ratio",
            ci_level=0.9, method="bootstrap",
        )
        assert ComparisonSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="basline"):
            ComparisonSpec.from_dict({"basline": "OPT"})

    def test_bad_fields_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            ComparisonSpec(baseline="  ")
        with pytest.raises(ValueError, match="mode"):
            ComparisonSpec(baseline="OPT", mode="delta")
        with pytest.raises(ValueError, match="ci_level"):
            ComparisonSpec(baseline="OPT", ci_level=0.0)
        with pytest.raises(ValueError, match="method"):
            ComparisonSpec(baseline="OPT", method="magic")
        with pytest.raises(ValueError, match="target_halfwidth"):
            ComparisonSpec(baseline="OPT", target_halfwidth=float("nan"))
        with pytest.raises(ValueError, match="duplicate"):
            ComparisonSpec(baseline="OPT", contrasts=("A", "A"))
        with pytest.raises(ValueError, match="contrast"):
            ComparisonSpec(baseline="OPT", contrasts=("OPT",))

    def test_resolve_contrasts(self):
        spec = ComparisonSpec(baseline="B")
        assert spec.resolve_contrasts(("A", "B", "C")) == ("A", "C")
        explicit = ComparisonSpec(baseline="B", contrasts=("C",))
        assert explicit.resolve_contrasts(("A", "B", "C")) == ("C",)
        with pytest.raises(ValueError, match="baseline"):
            spec.resolve_contrasts(("A", "C"))
        with pytest.raises(ValueError, match="not result series"):
            explicit.resolve_contrasts(("A", "B"))
        with pytest.raises(ValueError, match="no contrast"):
            spec.resolve_contrasts(("B",))

    def test_sweep_spec_coerces_comparison_dicts(self):
        spec = small_sweep(comparison=VS_ONTH.to_dict())
        assert spec.comparison == VS_ONTH
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_comparison_target_needs_adaptive_replication(self):
        with pytest.raises(ValueError, match="adaptive ReplicationSpec"):
            small_sweep(
                comparison=ComparisonSpec(baseline="OFFSTAT",
                                          target_halfwidth=10.0)
            )
        # fine once an adaptive replication spec supplies the machinery
        small_sweep(
            comparison=ComparisonSpec(baseline="OFFSTAT", target_halfwidth=10.0),
            replication=ReplicationSpec(target_halfwidth=10.0, max_runs=5),
        )


class TestComparisonsAreAdditive:
    """Same samples, same marginal payload — comparisons only add."""

    def test_fig03_marginals_stay_golden(self):
        golden = GOLDEN["fig03"]["result"]
        result = figures.figure03(**FIG03_PARAMS, comparison=VS_ONTH)
        assert result.has_comparisons
        stripped = result.to_dict()
        stripped.pop("comparisons")
        assert stripped == golden

    def test_comparison_values_match_series_differences(self):
        result = run_sweep(small_sweep())
        diff = result.comparison_for("ONTH")
        assert diff.baseline == "OFFSTAT" and diff.mode == "diff"
        for i in range(len(result.x_values)):
            assert diff.values[i] == pytest.approx(
                result.series["ONTH"][i] - result.series["OFFSTAT"][i]
            )
        assert diff.counts == (2, 2, 2)

    def test_ratio_mode(self):
        result = run_sweep(
            small_sweep(comparison=ComparisonSpec(baseline="OFFSTAT",
                                                  mode="ratio"))
        )
        ratio = result.comparison_for("ONTH")
        assert ratio.null == 1.0
        assert all(v > 0 for v in ratio.values)

    def test_paired_interval_tighter_than_marginal(self):
        """The CRN effect on real sweeps: shared traces cancel."""
        result = run_sweep(small_sweep(runs=4))
        diff = result.comparison_for("ONTH")
        paired_halfwidths = [
            (high - low) / 2.0 for low, high in diff.ci
        ]
        # marginal t halfwidth ∝ stderr; compare via stderr directly
        for i in range(len(result.x_values)):
            assert paired_halfwidths[i] > 0
            assert diff.stderr[i] < result.errors["ONTH"][i] + \
                result.errors["OFFSTAT"][i]

    def test_unknown_baseline_raises_clearly(self):
        with pytest.raises(ValueError, match="comparison baseline"):
            run_sweep(small_sweep(comparison=ComparisonSpec(baseline="OPT")))
        # the adaptive path must raise the same clean error, not a KeyError
        # from indexing the samples by the unvalidated baseline name
        with pytest.raises(ValueError, match="comparison baseline"):
            run_sweep(small_sweep(
                comparison=ComparisonSpec(baseline="OPT"),
                replication=ReplicationSpec(target_halfwidth=1.0, max_runs=4),
            ))

    def test_result_dict_round_trip(self):
        result = run_sweep(small_sweep())
        restored = FigureResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored == result
        summaries = restored.comparison_for("ONTH").summaries()
        assert len(summaries) == 3
        assert all(s.mode == "diff" for s in summaries)

    def test_comparison_result_validation(self):
        with pytest.raises(ValueError, match="mode"):
            ComparisonResult("b", "c", "delta", 0.95, (), (), (), ())
        with pytest.raises(ValueError, match="level"):
            ComparisonResult("b", "c", "diff", 0.0, (), (), (), ())
        with pytest.raises(ValueError, match="baseline"):
            ComparisonResult("b", "b", "diff", 0.95, (), (), (), ())
        with pytest.raises(ValueError, match="misaligned"):
            ComparisonResult("b", "c", "diff", 0.95, (1.0,), (), (), ())
        result = run_sweep(small_sweep())
        with pytest.raises(ValueError, match="not a result series"):
            replace(result, comparisons=(
                ComparisonResult("nope", "ONTH", "diff", 0.95,
                                 result.comparisons[0].values,
                                 result.comparisons[0].stderr,
                                 result.comparisons[0].ci,
                                 result.comparisons[0].counts),
            ))
        with pytest.raises(KeyError, match="no comparison"):
            result.comparison_for("OFFSTAT")


class TestCacheReuseUnderComparisons:
    def test_plain_then_compare_is_all_point_hits(self, tmp_path):
        """A plain sweep's point entries fully serve a --compare re-run."""
        golden = GOLDEN["fig03"]["result"]
        warmer = ResultCache(tmp_path)
        plain = figures.figure03(**FIG03_PARAMS, cache=warmer)
        assert plain.to_dict() == golden
        assert warmer.point_stores == 2

        cache = ResultCache(tmp_path)
        compared = figures.figure03(
            **FIG03_PARAMS, cache=cache, comparison=VS_ONTH
        )
        # every point loaded from the plain run's entries; nothing new
        assert cache.point_hits == 2
        assert cache.point_stores == 0 and cache.extension_stores == 0
        # marginal series bit-identical to the golden plain run
        stripped = compared.to_dict()
        stripped.pop("comparisons")
        assert stripped == golden

    def test_compare_rerun_hits_its_own_sweep_entry(self, tmp_path):
        spec = small_sweep()
        first = run_sweep(spec, cache=ResultCache(tmp_path))
        rerun = ResultCache(tmp_path)
        again = run_sweep(spec, cache=rerun)
        assert again == first and rerun.hits == 1

    def test_adaptive_paired_reuses_plain_entries(self, tmp_path):
        """Plain point entries seed the initial blocks of a paired sweep."""
        plain = small_sweep(comparison=None)
        warmer = ResultCache(tmp_path)
        run_sweep(plain, cache=warmer)
        cache = ResultCache(tmp_path)
        result = run_sweep(
            small_sweep(replication=ReplicationSpec(
                target_halfwidth=50.0, max_runs=8, batch=1,
            )),
            cache=cache,
        )
        assert cache.point_hits == 3
        assert result.has_comparisons and result.has_confidence


class TestComparisonDeterminism:
    def test_serial_pool_and_shard_assembled_identical(self, tmp_path):
        spec = small_sweep()
        serial = run_sweep(spec)
        assert run_sweep(spec, backend=ProcessPoolBackend(2)) == serial
        for index in range(2):
            run_sweep(spec, cache=ResultCache(tmp_path), shard=(index, 2))
        assembled = run_sweep(spec, cache=ResultCache(tmp_path))
        assert assembled == serial
        assert assembled.comparisons == serial.comparisons

    def test_partial_shard_restricts_comparisons_to_its_points(self, tmp_path):
        partial = run_sweep(
            small_sweep(), cache=ResultCache(tmp_path), shard=(1, 2)
        )
        assert "partial" in partial.notes
        assert len(partial.x_values) == 1
        diff = partial.comparison_for("ONTH")
        assert len(diff.values) == 1


class TestPairedAdaptiveStopping:
    #: An absolute target between the typical paired and marginal
    #: halfwidths at this scale, so the two criteria separate.
    TARGET = ReplicationSpec(target_halfwidth=200.0, max_runs=16, batch=1)

    def test_paired_needs_fewer_replicates_same_orderings(self):
        """The acceptance criterion on the fig03-shaped smoke case."""
        marginal = run_sweep(
            small_sweep(comparison=None, replication=self.TARGET)
        )
        paired = run_sweep(small_sweep(replication=self.TARGET))
        assert sum(paired.counts) < sum(marginal.counts)
        # identical per-point policy orderings
        for i in range(len(marginal.x_values)):
            assert (
                marginal.series["ONTH"][i] > marginal.series["OFFSTAT"][i]
            ) == (
                paired.series["ONTH"][i] > paired.series["OFFSTAT"][i]
            )
        # and the paired intervals actually settle those orderings
        for summary in paired.comparison_for("ONTH").summaries():
            assert summary.meets(self.TARGET.target_halfwidth)

    def test_comparison_target_overrides_replication_target(self):
        loose = run_sweep(
            small_sweep(
                replication=self.TARGET,
                comparison=ComparisonSpec(baseline="OFFSTAT",
                                          target_halfwidth=1e9),
            )
        )
        assert loose.counts == (2, 2, 2)
        tight = run_sweep(
            small_sweep(
                replication=self.TARGET,
                comparison=ComparisonSpec(baseline="OFFSTAT",
                                          target_halfwidth=50.0),
            )
        )
        assert sum(tight.counts) > sum(loose.counts)

    def test_paired_adaptive_shard_assembly_bit_identical(self, tmp_path):
        spec = small_sweep(replication=self.TARGET)
        serial = run_sweep(spec)
        for index in range(2):
            run_sweep(spec, cache=ResultCache(tmp_path), shard=(index, 2))
        assembler = ResultCache(tmp_path)
        assembled = run_sweep(spec, cache=assembler)
        assert assembled == serial
        assert assembler.point_stores == 0 and assembler.extension_stores == 0


class TestRefineAndSorting:
    def test_refined_comparison_results_stay_x_sorted(self, tmp_path):
        spec = small_sweep(values=(2, 9), runs=3)
        cache = ResultCache(tmp_path)
        base = run_sweep(spec, cache=cache)
        refined_spec, refined = refine_sweep(spec, base, cache=cache)
        assert refined.x_values == tuple(sorted(refined_spec.values))
        diff = refined.comparison_for("ONTH")
        assert len(diff.values) == len(refined.x_values)
        # prefix points kept their paired values bit for bit
        base_diff = base.comparison_for("ONTH")
        for i, x in enumerate(base.x_values):
            j = refined.x_values.index(x)
            assert diff.values[j] == base_diff.values[i]


class TestReportingAndPlotting:
    def test_table_gains_delta_and_halfwidth_columns(self):
        result = run_sweep(small_sweep())
        text = format_figure(result)
        assert "Δ ONTH" in text
        assert "±95%" in text
        assert "paired vs OFFSTAT" in text

    def test_ratio_table_header(self):
        result = run_sweep(
            small_sweep(comparison=ComparisonSpec(baseline="OFFSTAT",
                                                  mode="ratio"))
        )
        text = format_figure(result)
        assert "ONTH/OFFSTAT" in text
        assert "ratio = contrast / baseline" in text

    def test_comparison_chart_draws_null_line_and_bands(self):
        result = run_sweep(small_sweep())
        chart = render_comparison_chart(result)
        assert "paired vs OFFSTAT" in chart
        assert "- = no difference" in chart
        assert "·" in chart  # the paired CI band
        assert "Δ ONTH" in chart

    def test_comparison_chart_requires_comparisons(self):
        plain = run_sweep(small_sweep(comparison=None))
        with pytest.raises(ValueError, match="no comparisons"):
            render_comparison_chart(plain)


class TestComparisonCLI:
    ARGS = [
        "run", "--policy", "onth", "--policy", "offstat",
        "--topology", "erdos_renyi:n=40", "--horizon", "60",
        "--sweep", "scenario.sojourn=2,5", "--runs", "2",
    ]

    def test_compare_emits_payload_and_footer(self, capsys):
        assert main(self.ARGS + ["--compare", "OFFSTAT"]) == 0
        out = capsys.readouterr().out
        assert "Δ ONTH" in out and "paired vs OFFSTAT" in out

    def test_compare_json_payload(self, capsys):
        assert main(self.ARGS + ["--compare", "OFFSTAT", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (comparison,) = payload["comparisons"]
        assert comparison["baseline"] == "OFFSTAT"
        assert comparison["contrast"] == "ONTH"
        assert payload["spec"]["comparison"]["baseline"] == "OFFSTAT"

    def test_compare_mode_ratio(self, capsys):
        assert main(
            self.ARGS + ["--compare", "OFFSTAT", "--compare-mode", "ratio",
                         "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["comparisons"][0]["mode"] == "ratio"

    def test_compare_mode_without_compare_is_an_error(self, capsys):
        assert main(self.ARGS + ["--compare-mode", "ratio"]) == 2
        assert "--compare-mode" in capsys.readouterr().err

    def test_unknown_baseline_fails_fast(self, capsys):
        assert main(self.ARGS + ["--compare", "TYPO"]) == 2
        err = capsys.readouterr().err
        assert "comparison baseline" in err and "TYPO" in err

    def test_unknown_baseline_in_figure_mode_exits_cleanly(self, capsys):
        """Figure series only exist post-run; still exit 2, no traceback."""
        assert main(["fig13", "--runs", "1", "--compare", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert "comparison baseline" in err and "NOPE" in err

    def test_compare_plot_renders_difference_chart(self, capsys):
        assert main(self.ARGS + ["--compare", "OFFSTAT", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "- = no difference" in out

    def test_figure_mode_threads_comparison(self, capsys):
        assert main([
            "fig03", "--runs", "2", "--compare", "ONTH", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        contrasts = {c["contrast"] for c in payload["comparisons"]}
        assert contrasts == {"ONBR-fixed", "ONBR-dyn"}
        assert payload["params"]["comparison"]["baseline"] == "ONTH"

    def test_trajectory_figures_ignore_compare_with_a_note(self, capsys):
        assert main(["fig12", "--compare", "ONTH"]) == 0
        assert "does not take --compare" in capsys.readouterr().err


class CountingBackend(ExecutionBackend):
    """Serial execution recording the size of every scheduled batch."""

    def __init__(self):
        self.batches = []

    def run_replicates(self, replicate, tasks, on_result=None):
        self.batches.append(len(tasks))
        return SerialBackend().run_replicates(replicate, tasks, on_result)

    @property
    def total(self):
        return sum(self.batches)


class TestPairedRefinement:
    """refine_sweep driven by *paired* CIs when the spec carries a comparison."""

    def paired_sweep(self, **overrides):
        defaults = dict(
            experiment=ExperimentSpec(
                topology=TopologySpec("erdos_renyi", {"n": 40}),
                scenario=ScenarioSpec("commuter", {"period": 6}),
                policies=(
                    PolicySpec("onth", label="ONTH"),
                    PolicySpec("onbr", label="ONBR"),
                ),
                horizon=60,
            ),
            values=(2, 9),
            runs=2,
            seed=2,  # the ONTH-ONBR paired CI straddles 0 at sojourn 9
            comparison=ComparisonSpec(baseline="ONBR"),
        )
        defaults.update(overrides)
        return small_sweep(**defaults)

    def _with_paired(self, base, values, ci):
        """``base`` with its single comparison's values/CIs replaced."""
        comparison = replace(base.comparisons[0], values=values, ci=ci)
        return replace(base, comparisons=(comparison,))

    def test_straddling_endpoint_bisects_its_intervals_only(self):
        spec = self.paired_sweep(values=(2, 5, 9))
        base = run_sweep(spec)
        # decisive everywhere except x=2: only (2, 5) is worth bisecting
        doctored = self._with_paired(
            base,
            values=(15.0, 8.0, 18.0),
            ci=((-5.0, 30.0), (3.0, 13.0), (12.0, 25.0)),
        )
        refined_spec, _ = refine_sweep(spec, doctored)
        assert refined_spec.values == (2, 5, 9, 3)

    def test_null_crossing_bisects_despite_decisive_cis(self):
        spec = self.paired_sweep(values=(2, 5, 9))
        base = run_sweep(spec)
        # every CI excludes 0, but the paired mean changes sign over (2, 5)
        doctored = self._with_paired(
            base,
            values=(-15.0, 8.0, 18.0),
            ci=((-20.0, -10.0), (3.0, 13.0), (12.0, 25.0)),
        )
        refined_spec, _ = refine_sweep(spec, doctored)
        assert refined_spec.values == (2, 5, 9, 3)

    def test_settled_paired_sweep_adds_nothing(self):
        spec = self.paired_sweep(values=(2, 5, 9))
        base = run_sweep(spec)
        settled = self._with_paired(
            base,
            values=(15.0, 8.0, 18.0),
            ci=((10.0, 20.0), (3.0, 13.0), (12.0, 25.0)),
        )
        refined_spec, refined = refine_sweep(spec, settled)
        assert refined_spec.values == spec.values
        assert refined.x_values == (2, 5, 9)

    def test_marginal_overlap_is_ignored_under_a_comparison(self):
        """Settled paired CIs beat wildly overlapping marginal CIs."""
        spec = self.paired_sweep(
            values=(2, 5, 9), replication=ReplicationSpec()
        )
        base = run_sweep(spec)
        assert base.has_confidence
        wide = replace(
            base,
            ci={
                name: tuple((v - 1e6, v + 1e6) for v in base.series[name])
                for name in base.series_names
            },
        )
        settled = self._with_paired(
            wide,
            values=(15.0, 8.0, 18.0),
            ci=((10.0, 20.0), (3.0, 13.0), (12.0, 25.0)),
        )
        refined_spec, _ = refine_sweep(spec, settled)
        assert refined_spec.values == spec.values

    def test_ratio_mode_bisects_around_one(self):
        spec = self.paired_sweep(
            comparison=ComparisonSpec(baseline="ONBR", mode="ratio")
        )
        base = run_sweep(spec)
        settled = self._with_paired(
            base, values=(1.3, 1.4), ci=((1.1, 1.5), (1.2, 1.6))
        )
        assert refine_sweep(spec, settled)[0].values == spec.values
        straddling = self._with_paired(
            base, values=(1.3, 1.05), ci=((1.1, 1.5), (0.9, 1.2))
        )
        assert refine_sweep(spec, straddling)[0].values == (2, 9, 5)

    def test_rejects_result_missing_comparison_payloads(self):
        spec = self.paired_sweep()
        plain = run_sweep(self.paired_sweep(comparison=None))
        with pytest.raises(ValueError, match="without paired-comparison"):
            refine_sweep(spec, plain)

    def test_rejects_comparison_payloads_on_a_plain_spec(self):
        paired = run_sweep(self.paired_sweep())
        with pytest.raises(ValueError, match="without a ComparisonSpec"):
            refine_sweep(self.paired_sweep(comparison=None), paired)

    def test_rejects_mismatched_baseline_and_mode(self):
        base = run_sweep(self.paired_sweep())
        ratio = self.paired_sweep(
            comparison=ComparisonSpec(baseline="ONBR", mode="ratio")
        )
        with pytest.raises(ValueError, match="do not match the spec's"):
            refine_sweep(ratio, base)


class TestPairedRefinementWarmCache:
    def test_warm_cache_simulates_only_the_appended_midpoint(self, tmp_path):
        """The ISSUE's acceptance test, golden-pinned on the bisection.

        A paired refinement pass over a warm cache loads every pre-existing
        grid point from its per-point entries and simulates *only* the
        appended midpoints — then serial, pooled and queue-drained re-runs
        of the refined spec agree bit for bit.
        """
        spec = TestPairedRefinement().paired_sweep()
        cache = ResultCache(tmp_path)
        base = run_sweep(spec, cache=cache)
        counting = CountingBackend()
        probe = ResultCache(tmp_path)
        refined_spec, refined = refine_sweep(
            spec, base, backend=counting, cache=probe
        )
        # golden-pinned: the straddle at sojourn 9 bisects (2, 9) to 5,
        # appended so the prefix keeps its indices, seeds and cache keys
        assert refined_spec.values == (2, 9, 5)
        # only the midpoint simulated: one batch of spec.runs replicates
        assert counting.batches == [spec.runs]
        # the old grid came entirely from the warm cache — no new entries
        assert probe.point_hits == len(spec.values)
        assert probe.point_stores == 1 and probe.extension_stores == 0
        # prefix points kept their values bit for bit
        for name in base.series_names:
            for i, x in enumerate(base.x_values):
                j = refined.x_values.index(x)
                assert refined.series[name][j] == base.series[name][i]
        # serial == pool == queue on the refined spec
        serial = run_sweep(refined_spec)
        pool = run_sweep(refined_spec, backend=ProcessPoolBackend(2))
        queued = run_sweep(
            refined_spec, backend=QueueBackend(tmp_path / "q.db", poll=0.01)
        )
        assert pool.to_dict() == serial.to_dict()
        assert queued.to_dict() == serial.to_dict()
        # and the refined result is exactly the x-sorted view of them
        for name in serial.series_names:
            for i, x in enumerate(serial.x_values):
                j = refined.x_values.index(x)
                assert refined.series[name][j] == serial.series[name][i]

    def test_fig03_refinement_keeps_the_golden_prefix(self, tmp_path):
        """Refining the golden fig03 smoke never perturbs the pinned points."""
        cache = ResultCache(tmp_path)
        with capture_sweeps() as captured:
            base = figures.figure03(
                **FIG03_PARAMS, cache=cache, comparison=VS_ONTH
            )
        [(spec, _)] = captured
        refined_spec, refined = refine_sweep(
            spec, base, cache=ResultCache(tmp_path)
        )
        # the paired CI straddles 0 at size 60, so (30, 60) bisects
        assert refined_spec.values == (30, 60, 45)
        golden = GOLDEN["fig03"]["result"]
        for name, values in golden["series"].items():
            for i, x in enumerate(golden["x_values"]):
                j = refined.x_values.index(x)
                assert refined.series[name][j] == values[i]
