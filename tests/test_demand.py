"""Tests for the demand-dynamics metrics (repro.analysis.demand)."""

import numpy as np
import pytest

from repro.analysis.demand import churn, hotspot_dwell, spatial_spread
from repro.topology.generators import line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario
from repro.workload.timezones import TimeZoneScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


class TestChurn:
    def test_frozen_trace_has_zero_churn(self):
        assert churn(trace_of([1, 2], [1, 2], [1, 2])) == 0.0

    def test_full_reshuffle_has_unit_churn(self):
        assert churn(trace_of([0], [1], [2])) == pytest.approx(1.0)

    def test_half_move(self):
        # half of the demand mass moves from node 0 to node 1
        assert churn(trace_of([0, 0], [0, 1])) == pytest.approx(0.5)

    def test_empty_rounds(self):
        assert churn(trace_of([], [])) == 0.0
        assert churn(trace_of([0], [])) == pytest.approx(1.0)

    def test_single_round_trace(self):
        assert churn(trace_of([0, 1])) == 0.0

    def test_scale_invariant_in_volume(self):
        """Churn compares distributions, not raw counts."""
        small = churn(trace_of([0], [1]))
        large = churn(trace_of([0] * 10, [1] * 10))
        assert small == pytest.approx(large)

    def test_sojourn_lowers_churn(self):
        sub = line(16, seed=0)
        fast = TimeZoneScenario(sub, period=4, sojourn=1, hotspot_share=1.0,
                                requests_per_round=4)
        slow = TimeZoneScenario(sub, period=4, sojourn=10, hotspot_share=1.0,
                                requests_per_round=4)
        fast_trace = generate_trace(fast, 40, seed=1)
        slow_trace = generate_trace(slow, 40, seed=1)
        assert churn(slow_trace, 16) < churn(fast_trace, 16)


class TestSpatialSpread:
    def test_concentrated_demand_has_zero_spread(self, line5):
        assert spatial_spread(trace_of([2, 2, 2]), line5) == 0.0

    def test_two_ends_of_a_path(self, line5):
        # requests at 0 and 4: any barycentre gives total latency 4
        spread = spatial_spread(trace_of([0, 4]), line5)
        assert spread == pytest.approx(2.0)

    def test_empty_trace(self, line5):
        assert spatial_spread(trace_of(), line5) == 0.0

    def test_fanout_increases_spread(self):
        sub = line(33, seed=0)
        narrow = CommuterScenario(sub, period=2, sojourn=1, dynamic_load=True)
        wide = CommuterScenario(sub, period=8, sojourn=1, dynamic_load=True)
        narrow_trace = generate_trace(narrow, 2, seed=0)
        wide_trace = generate_trace(wide, 8, seed=0)
        assert spatial_spread(wide_trace, sub) > spatial_spread(narrow_trace, sub)


class TestHotspotDwell:
    def test_static_trace(self):
        trace = trace_of(*[[3, 3, 1]] * 6)
        assert hotspot_dwell(trace) == 6.0

    def test_alternating_modes(self):
        trace = trace_of([0], [1], [0], [1])
        assert hotspot_dwell(trace) == 1.0

    def test_dwell_matches_sojourn(self):
        sub = line(16, seed=0)
        scenario = TimeZoneScenario(
            sub, period=4, sojourn=5, hotspot_share=1.0, requests_per_round=3
        )
        trace = generate_trace(scenario, 40, seed=2)
        assert hotspot_dwell(trace) == pytest.approx(5.0, rel=0.3)

    def test_empty_trace(self):
        assert hotspot_dwell(trace_of()) == 0.0

    def test_empty_rounds_break_runs(self):
        trace = trace_of([1], [1], [], [1], [1])
        assert hotspot_dwell(trace) == pytest.approx(2.0)
