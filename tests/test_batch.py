"""Tests for the batched simulation core (repro.core.batch).

The contract under test is *bit-identity*: every cost method of a
GatherWindow and every ledger column of ``simulate_batched`` must equal the
scalar path's floats exactly — not approximately — because policy decisions
argmin over these values and a single ULP can flip a near-tie (the
timezones scenario, with its heavily duplicated request nodes, is the
regression case that caught exactly that).

Backend coverage: the pool and queue backends run the same
``_simulate_spec`` entry point as the serial backend, and their
bit-identity to serial is pinned by the existing execution/queue suites —
so the serial comparisons here transitively cover every backend.
"""

import numpy as np
import pytest

from repro.api.registry import resolve_policy
from repro.core.batch import (
    DistanceGather,
    TraceBlock,
    simulate_batched,
    simulate_block,
    stack_traces,
)
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.evaluation import RequestBatch
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi
from repro.topology.substrate import Substrate
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario, default_period_for
from repro.workload.timezones import TimeZoneScenario

LEDGER_FIELDS = (
    "latency_cost", "load_cost", "running_cost", "migration_cost",
    "creation_cost", "migrations", "creations", "n_active",
    "n_inactive", "n_requests",
)

POLICY_BUILDS = [
    ("onth", lambda: resolve_policy("onth")()),
    ("onbr", lambda: resolve_policy("onbr")()),
    ("onbr-dyn", lambda: resolve_policy("onbr")(dynamic_threshold=True)),
]


def assert_runs_identical(scalar, batched, context=""):
    for field in LEDGER_FIELDS:
        a, b = getattr(scalar, field), getattr(batched, field)
        assert np.array_equal(a, b), (
            f"{context}: ledger column {field!r} diverged at rounds "
            f"{np.nonzero(a != b)[0][:5]}"
        )


def make_trace(rounds):
    return Trace(
        tuple(np.asarray(r, dtype=np.int64) for r in rounds),
        scenario_name="test",
    )


def bypass_trace(rounds):
    """A Trace built around __post_init__ validation (simulating corrupt or
    hand-deserialised data) so downstream defense-in-depth layers can be
    exercised."""
    trace = object.__new__(Trace)
    object.__setattr__(
        trace, "rounds", tuple(np.asarray(r, dtype=np.int64) for r in rounds)
    )
    object.__setattr__(trace, "scenario_name", "bypass")
    object.__setattr__(trace, "metadata", {})
    return trace


# ---------------------------------------------------------------------------
# Trace stacking and validation


class TestStackTraces:
    def test_shapes_and_padding(self):
        traces = [
            make_trace([[0, 1], [2]]),
            make_trace([[3], [], [1, 2, 0]]),
        ]
        block = stack_traces(traces, n_nodes=4)
        assert block.tensor.shape == (2, 3, 3)
        assert block.replicates == 2
        np.testing.assert_array_equal(block.n_rounds, [2, 3])
        np.testing.assert_array_equal(
            block.lengths, [[2, 1, 0], [1, 0, 3]]
        )
        # padded entries are zero and masked out
        assert block.tensor[0, 2].sum() == 0
        assert block.mask.sum() == 7  # 2+1 requests + 1+0+3 requests

    def test_round_trip_values(self):
        trace = make_trace([[3, 1, 2], [0]])
        block = stack_traces([trace], n_nodes=4)
        np.testing.assert_array_equal(block.tensor[0, 0], [3, 1, 2])
        assert block.traces == (trace,)

    def test_trace_constructor_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="negative node"):
            make_trace([[0, -3]])

    def test_negative_node_raises(self):
        with pytest.raises(ValueError, match="negative node -3"):
            stack_traces([bypass_trace([[0, -3]])])

    def test_out_of_range_node_raises(self):
        with pytest.raises(ValueError, match="node 9 but substrate has 5"):
            stack_traces([make_trace([[1], [9]])], n_nodes=5)

    def test_padding_not_validated_as_nodes(self):
        # zero-padding must not trip the bounds check even for 0-node... the
        # mask excludes it; an empty trace block is fine too.
        block = stack_traces([make_trace([[], []])], n_nodes=1)
        assert block.mask.sum() == 0

    def test_empty_block_raises(self):
        with pytest.raises(ValueError, match="empty replicate block"):
            stack_traces([])


# ---------------------------------------------------------------------------
# GatherWindow: bitwise equality with the scalar RequestBatch


def window_pair(substrate, costs, trace, t0, t1, gather=None):
    """A scalar RequestBatch and a GatherWindow over the same rounds."""
    base = RequestBatch(substrate, costs, trace.rounds[t0:t1])
    gather = gather or DistanceGather(substrate, costs, trace)
    window = gather.new_window()
    for t in range(t1):
        window.add_round(trace.rounds[t])
    window._t0 = t0
    return base, window


class TestGatherWindowBitIdentity:
    @pytest.mark.parametrize("trial", range(8))
    def test_all_cost_methods_uniform_strengths(self, trial):
        rng = np.random.default_rng([41, trial])
        n = 40
        sub = erdos_renyi(n=n, p=0.15, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(n)).generate(
            24, rng
        )
        t0 = int(rng.integers(0, 16))
        t1 = t0 + int(rng.integers(1, 8))
        base, window = window_pair(sub, costs, trace, t0, t1)
        k = int(rng.integers(1, 6))
        active = rng.choice(n, size=k, replace=False).astype(np.int64)
        self._assert_methods_equal(base, window, active)

    @pytest.mark.parametrize("trial", range(4))
    def test_all_cost_methods_nonuniform_strengths(self, trial):
        rng = np.random.default_rng([43, trial])
        n = 30
        er = erdos_renyi(n=n, p=0.2, seed=rng)
        sub = Substrate(n, er.links, strengths=rng.uniform(0.5, 2.0, n))
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(n)).generate(
            20, rng
        )
        base, window = window_pair(sub, costs, trace, 2, 2 + int(rng.integers(1, 6)))
        k = int(rng.integers(2, 5))
        active = rng.choice(n, size=k, replace=False).astype(np.int64)
        self._assert_methods_equal(base, window, active)

    @staticmethod
    def _assert_methods_equal(base, window, active):
        checks = [
            ("exact_access_cost", base.exact_access_cost(active),
             window.exact_access_cost(active)),
            ("base_latency", base.base_latency(active),
             window.base_latency(active)),
            ("removal_costs", base.removal_costs(active),
             window.removal_costs(active)),
            ("migration_costs_all", base.migration_costs_all(active),
             window.migration_costs_all(active)),
            ("migration_costs", base.migration_costs(active, 0),
             window.migration_costs(active, 0)),
            ("addition_costs", base.addition_costs(active),
             window.addition_costs(active)),
        ]
        for name, a, b in checks:
            assert np.array_equal(a, b), f"{name} not bit-identical"

    def test_memoised_results_shared_between_windows(self):
        rng = np.random.default_rng(7)
        sub = erdos_renyi(n=20, p=0.3, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(20)).generate(
            6, rng
        )
        gather = DistanceGather(sub, costs, trace)
        _, w1 = window_pair(sub, costs, trace, 0, 3, gather)
        _, w2 = window_pair(sub, costs, trace, 0, 3, gather)
        active = np.array([1, 4], dtype=np.int64)
        assert w1.exact_access_cost(active) == w2.exact_access_cost(active)
        assert gather._memo  # sibling windows hit the shared memo

    def test_out_of_sync_window_raises(self):
        rng = np.random.default_rng(9)
        sub = erdos_renyi(n=10, p=0.4, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(10)).generate(
            4, rng
        )
        window = DistanceGather(sub, costs, trace).new_window()
        with pytest.raises(RuntimeError, match="out of sync"):
            window.add_round(np.array([1, 2, 3], dtype=np.int64))


# ---------------------------------------------------------------------------
# simulate_batched: ledger bit-identity with scalar simulate


class TestSimulateBatchedIdentity:
    @pytest.mark.parametrize("name,build", POLICY_BUILDS)
    def test_commuter_ledgers_identical(self, name, build):
        rng = np.random.default_rng(11)
        sub = erdos_renyi(n=40, p=0.1, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(40)).generate(
            60, rng
        )
        gather = DistanceGather(sub, costs, trace)
        scalar = simulate(sub, build(), trace, costs, seed=np.random.default_rng(0))
        batched = simulate_batched(
            sub, build(), trace, costs, seed=np.random.default_rng(0),
            gather=gather,
        )
        assert_runs_identical(scalar, batched, f"commuter/{name}")

    @pytest.mark.parametrize("name,build", POLICY_BUILDS)
    def test_timezones_ledgers_identical(self, name, build):
        # Regression: timezones traces duplicate request nodes heavily, so
        # candidate costs tie to the ULP and any reduction-order drift in
        # the gather path flips argmin targets (found via fig05 goldens).
        rng = np.random.default_rng([0, 2])
        sub = erdos_renyi(n=30, p=0.2, seed=rng)
        costs = CostModel.paper_default()
        scenario = TimeZoneScenario(
            sub, sojourn=5, requests_per_round=10, period=4
        )
        trace = generate_trace(scenario, 80, rng)
        gather = DistanceGather(sub, costs, trace)
        scalar = simulate(sub, build(), trace, costs, seed=np.random.default_rng(0))
        batched = simulate_batched(
            sub, build(), trace, costs, seed=np.random.default_rng(0),
            gather=gather,
        )
        assert_runs_identical(scalar, batched, f"timezones/{name}")

    def test_static_policy_identical(self):
        rng = np.random.default_rng(13)
        sub = erdos_renyi(n=25, p=0.2, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(25)).generate(
            30, rng
        )
        target = Configuration((sub.center,), ())
        scalar = simulate(sub, resolve_policy("static")(target), trace, costs)
        batched = simulate_batched(
            sub, resolve_policy("static")(target), trace, costs
        )
        assert_runs_identical(scalar, batched, "static")

    def test_offline_policy_falls_back_to_scalar(self):
        rng = np.random.default_rng(17)
        sub = erdos_renyi(n=15, p=0.3, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(15)).generate(
            16, rng
        )
        scalar = simulate(
            sub, resolve_policy("offstat")(), trace, costs,
            seed=np.random.default_rng(0),
        )
        batched = simulate_batched(
            sub, resolve_policy("offstat")(), trace, costs,
            seed=np.random.default_rng(0),
        )
        assert_runs_identical(scalar, batched, "offstat-fallback")

    def test_non_opting_policy_falls_back(self):
        rng = np.random.default_rng(19)
        sub = erdos_renyi(n=15, p=0.3, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(15)).generate(
            12, rng
        )
        scalar = simulate(
            sub, resolve_policy("onconf")(), trace, costs,
            seed=np.random.default_rng(0),
        )
        batched = simulate_batched(
            sub, resolve_policy("onconf")(), trace, costs,
            seed=np.random.default_rng(0),
        )
        assert_runs_identical(scalar, batched, "onconf-fallback")

    def test_mismatched_gather_raises(self):
        rng = np.random.default_rng(23)
        sub = erdos_renyi(n=12, p=0.3, seed=rng)
        other = erdos_renyi(n=12, p=0.3, seed=rng)
        costs = CostModel.paper_default()
        trace = CommuterScenario(sub, period=default_period_for(12)).generate(
            8, rng
        )
        gather = DistanceGather(other, costs, trace)
        with pytest.raises(ValueError, match="different substrate"):
            simulate_batched(
                sub, resolve_policy("onth")(), trace, costs, gather=gather
            )


class TestSimulateBlock:
    def test_block_matches_scalar_per_replicate(self):
        rng = np.random.default_rng(29)
        sub = erdos_renyi(n=20, p=0.2, seed=rng)
        costs = CostModel.paper_default()
        scen = CommuterScenario(sub, period=default_period_for(20))
        traces = [scen.generate(20, rng) for _ in range(3)]
        batch_results = simulate_block(
            sub, resolve_policy("onth"), traces, costs,
            seeds=[np.random.default_rng(i) for i in range(3)],
        )
        for i, trace in enumerate(traces):
            scalar = simulate(
                sub, resolve_policy("onth")(), trace, costs,
                seed=np.random.default_rng(i),
            )
            assert_runs_identical(scalar, batch_results[i], f"block[{i}]")

    def test_prestacked_block_accepted(self):
        rng = np.random.default_rng(31)
        sub = erdos_renyi(n=15, p=0.3, seed=rng)
        scen = CommuterScenario(sub, period=default_period_for(15))
        traces = [scen.generate(10, rng) for _ in range(2)]
        block = stack_traces(traces, n_nodes=sub.n)
        assert isinstance(block, TraceBlock)
        results = simulate_block(sub, resolve_policy("onth"), block)
        assert len(results) == 2

    def test_substrate_count_mismatch_raises(self):
        rng = np.random.default_rng(37)
        sub = erdos_renyi(n=10, p=0.4, seed=rng)
        scen = CommuterScenario(sub, period=default_period_for(10))
        traces = [scen.generate(5, rng) for _ in range(2)]
        with pytest.raises(ValueError, match="1 substrates for 2 traces"):
            simulate_block([sub], resolve_policy("onth"), traces)


# ---------------------------------------------------------------------------
# Negative-index validation (the bugfix satellites)


class TestNegativeIndexValidation:
    def evil_trace(self):
        return bypass_trace([[0, 1], [2, -4]])

    def substrate(self):
        return erdos_renyi(n=8, p=0.5, seed=np.random.default_rng(1))

    def test_scalar_simulate_rejects_negative_nodes(self):
        # materialised traces hit the route_requests backstop; streaming
        # traces hit the round-loop check — either way the run dies before
        # numpy fancy indexing can wrap the index to the last node.
        with pytest.raises(ValueError, match="negative node index -4"):
            simulate(
                self.substrate(), resolve_policy("onth")(), self.evil_trace()
            )

    def test_scalar_simulate_rejects_negative_nodes_streaming(self):
        rounds = [np.array([0, 1]), np.array([2, -4])]
        with pytest.raises(ValueError, match="negative node -4"):
            simulate(
                self.substrate(), resolve_policy("onth")(), iter(rounds)
            )

    def test_batched_simulate_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="negative node -4"):
            simulate_batched(
                self.substrate(), resolve_policy("onth")(), self.evil_trace()
            )

    def test_gather_rejects_negative_nodes(self):
        with pytest.raises(ValueError, match="negative node"):
            DistanceGather(
                self.substrate(), CostModel.paper_default(), self.evil_trace()
            )

    def test_check_config_rejects_bypassed_negative_config(self):
        # Configuration validates on construction, so a buggy policy can
        # only smuggle a negative node through by bypassing __init__; the
        # round loop's _check_config is the backstop.
        from repro.core.simulator import _check_config

        config = object.__new__(Configuration)
        object.__setattr__(config, "active", (-2, 3))
        object.__setattr__(config, "inactive", ())
        with pytest.raises(ValueError, match="negative node"):
            _check_config(config, self.substrate(), None, t=0)

    def test_route_requests_rejects_negative_request(self):
        sub = self.substrate()
        with pytest.raises(ValueError, match="negative node index -1"):
            from repro.core.routing import route_requests

            route_requests(
                sub, [0], np.array([2, -1]), CostModel.paper_default()
            )

    def test_route_requests_rejects_negative_server(self):
        sub = self.substrate()
        from repro.core.routing import route_requests

        with pytest.raises(ValueError, match="negative server node -3"):
            route_requests(
                sub, np.array([-3]), np.array([2]), CostModel.paper_default()
            )
