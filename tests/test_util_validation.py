"""Tests for argument validation helpers (repro.util.validation)."""

import math

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_returns_float(self):
        out = check_positive("x", 3)
        assert isinstance(out, float) and out == 3.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "3")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 1.5) == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_non_negative("x", -0.001)


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int("n", 1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="n"):
            check_positive_int("n", 0)

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="n"):
            check_positive_int("n", 2.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="n"):
            check_positive_int("n", True)

    def test_error_names_argument(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int("widgets", -3)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_closed_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", value)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction("f", 0.3) == 0.3

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_rejects_boundary(self, value):
        with pytest.raises(ValueError, match="f"):
            check_fraction("f", value)
