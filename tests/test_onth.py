"""Tests for ONTH (repro.algorithms.onth)."""

import numpy as np
import pytest

from repro.algorithms.onth import OnTH
from repro.core.config import Configuration
from repro.core.costs import CostModel
from repro.core.load import QuadraticLoad
from repro.core.simulator import simulate
from repro.topology.generators import erdos_renyi, line
from repro.workload.base import Trace, generate_trace
from repro.workload.commuter import CommuterScenario


def trace_of(*rounds):
    return Trace(tuple(np.asarray(r, dtype=np.int64) for r in rounds))


def constant_trace(node, rounds, copies=1):
    return trace_of(*[[node] * copies for _ in range(rounds)])


class TestInitialisation:
    def test_starts_at_center(self, line5, costs, rng):
        assert OnTH().reset(line5, costs, rng) == Configuration.single(line5.center)

    def test_custom_start(self, line5, costs, rng):
        assert OnTH(start_node=0).reset(line5, costs, rng) == Configuration.single(0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="small_epoch_factor"):
            OnTH(small_epoch_factor=0)
        with pytest.raises(ValueError, match="max_servers"):
            OnTH(max_servers=0)

    def test_reusable_across_runs(self, line5, costs):
        policy = OnTH()
        trace = constant_trace(0, 40, copies=4)
        a = simulate(line5, policy, trace, costs)
        b = simulate(line5, policy, trace, costs)
        np.testing.assert_allclose(a.per_round_total, b.per_round_total)


class TestSmallEpochs:
    def test_migrates_to_persistent_demand(self):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)
        result = simulate(sub, OnTH(), constant_trace(8, 60), cm)
        assert result.total_migrations >= 1
        assert result.latency_cost[-1] == 0.0

    def test_small_epoch_threshold_scales_with_beta(self):
        """Larger y·β accumulates longer before reacting."""
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=200, run_active=1, run_inactive=0.5)
        fast = simulate(sub, OnTH(small_epoch_factor=1.0), constant_trace(8, 40), cm)
        slow = simulate(sub, OnTH(small_epoch_factor=16.0), constant_trace(8, 40), cm)
        first_move_fast = int(np.argmax(fast.migrations > 0))
        first_move_slow = int(np.argmax(slow.migrations > 0))
        if slow.total_migrations:
            assert first_move_fast <= first_move_slow
        else:
            assert fast.total_migrations >= 1

    def test_never_drops_below_one_server(self, line5, costs):
        scenario = CommuterScenario(line5, period=4, sojourn=2, dynamic_load=True)
        trace = generate_trace(scenario, 100, seed=0)
        result = simulate(line5, OnTH(), trace, costs)
        assert (result.n_active >= 1).all()


class TestLargeEpochs:
    def make_heavy_instance(self):
        """Demand heavy enough that one server's access cost explodes."""
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=100, run_active=1, run_inactive=0.5)
        trace = trace_of(*[[0] * 10 + [8] * 10 for _ in range(60)])
        return sub, cm, trace

    def test_allocates_additional_servers(self):
        sub, cm, trace = self.make_heavy_instance()
        result = simulate(sub, OnTH(), trace, cm)
        assert result.peak_active_servers >= 2

    def test_max_servers_cap_respected(self):
        sub, cm, trace = self.make_heavy_instance()
        result = simulate(sub, OnTH(max_servers=1), trace, cm)
        assert result.peak_active_servers == 1

    def test_quadratic_load_allocates_more_servers(self):
        """The paper's Figure 1/2 observation."""
        sub = erdos_renyi(100, seed=3)
        scenario = CommuterScenario(sub, period=8, sojourn=10, dynamic_load=False)
        trace = generate_trace(scenario, 300, seed=4)
        linear = simulate(sub, OnTH(), trace, CostModel.paper_default())
        quad = simulate(
            sub, OnTH(), trace, CostModel.paper_default(load=QuadraticLoad())
        )
        assert quad.peak_active_servers > linear.peak_active_servers

    def test_server_count_tracks_demand_growth(self):
        """More servers at midday than at the day edges (Figure 1 shape)."""
        sub = erdos_renyi(200, seed=5)
        scenario = CommuterScenario(sub, period=10, sojourn=10, dynamic_load=True)
        trace = generate_trace(scenario, 300, seed=6)
        result = simulate(sub, OnTH(), trace, CostModel.paper_default())
        assert result.peak_active_servers >= 2

    def test_convergence_under_constant_demand(self):
        sub = line(9, seed=0, unit_latency=False, latency_range=(10, 10))
        cm = CostModel(migration=20, creation=100, run_active=1, run_inactive=0.5)
        result = simulate(sub, OnTH(), constant_trace(8, 150, copies=2), cm)
        late = result.migrations[100:].sum() + result.creations[100:].sum()
        assert late == 0


class TestQueueBehaviour:
    def test_inactive_queue_bounded(self, costs):
        sub = erdos_renyi(60, seed=2)
        scenario = CommuterScenario(sub, period=8, sojourn=3, dynamic_load=True)
        trace = generate_trace(scenario, 200, seed=2)
        result = simulate(sub, OnTH(cache_size=3), trace, costs)
        assert result.n_inactive.max() <= 3

    def test_expired_servers_leave_use(self, costs):
        sub = erdos_renyi(60, seed=2)
        scenario = CommuterScenario(sub, period=8, sojourn=3, dynamic_load=True)
        trace = generate_trace(scenario, 250, seed=3)
        result = simulate(sub, OnTH(cache_expiry=1), trace, costs)
        # with immediate expiry the cache empties right after each epoch
        assert result.n_inactive.max() <= 1
