"""Property tests for the paired-comparison estimators (repro.analysis.stats).

Paired comparisons are the statistical core of the policy-vs-policy layer:
the per-replicate difference/ratio over common random numbers is what the
paper's *relative* claims rest on. Pinned here: paired/marginal agreement
on shifted data, the variance-reduction property on correlated samples,
pair-permutation invariance, the null/decisive semantics of
:class:`ComparisonSummary`, and the loud rejection of empty (n=0 after
alignment), misaligned and zero-baseline paired sets that previously had
no guard at all.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    COMPARISON_MODES,
    ComparisonSummary,
    ConfidenceInterval,
    confidence_interval,
    paired_difference_interval,
    paired_ratio_interval,
    paired_summary,
)

#: Paired samples: two equal-length, well-scaled finite vectors.
_pairs = st.integers(2, 25).flatmap(
    lambda n: st.tuples(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False, width=32),
                 min_size=n, max_size=n),
        st.lists(st.floats(-1e6, 1e6, allow_nan=False, width=32),
                 min_size=n, max_size=n),
    )
)
_levels = st.floats(0.01, 0.999, allow_nan=False)


class TestPairedDifferenceInterval:
    @settings(max_examples=60, deadline=None)
    @given(pair=_pairs, level=_levels)
    def test_equals_interval_of_the_differences(self, pair, level):
        a, b = pair
        diffs = [x - y for x, y in zip(a, b)]
        assert paired_difference_interval(a, b, level=level) == \
            confidence_interval(diffs, level=level)

    @settings(max_examples=60, deadline=None)
    @given(pair=_pairs, level=_levels)
    def test_invariant_under_pair_permutation(self, pair, level):
        """Permuting the *pairs* (same shuffle on both sides) changes nothing."""
        a, b = pair
        order = np.random.default_rng(0).permutation(len(a))
        shuffled = paired_difference_interval(
            [a[i] for i in order], [b[i] for i in order],
            level=level, method="bootstrap",
        )
        assert shuffled == paired_difference_interval(
            a, b, level=level, method="bootstrap"
        )

    def test_identical_series_degenerate_at_zero(self):
        ci = paired_difference_interval([3.0, 7.0, 1.5], [3.0, 7.0, 1.5])
        assert ci.low == ci.high == 0.0

    def test_paired_tighter_than_marginal_on_correlated_samples(self):
        """The CRN win: shared noise cancels out of the paired interval."""
        rng = np.random.default_rng(7)
        shared = rng.normal(0.0, 500.0, size=10)      # trace-to-trace noise
        a = 1000.0 + shared + rng.normal(0.0, 1.0, size=10)
        b = 900.0 + shared + rng.normal(0.0, 1.0, size=10)
        paired = paired_difference_interval(a, b)
        marginal_a = confidence_interval(a)
        marginal_b = confidence_interval(b)
        assert paired.halfwidth < marginal_a.halfwidth / 10
        assert paired.halfwidth < marginal_b.halfwidth / 10
        # and the ordering is settled even though the marginals overlap
        assert paired.low > 0
        assert marginal_a.low < marginal_b.high

    def test_single_pair_degenerates(self):
        ci = paired_difference_interval([5.0], [3.0])
        assert ci.low == ci.high == 2.0


class TestPairedRatioInterval:
    def test_equals_interval_of_the_ratios(self):
        a, b = [2.0, 4.5, 9.0], [1.0, 3.0, 4.0]
        ratios = [x / y for x, y in zip(a, b)]
        assert paired_ratio_interval(a, b) == confidence_interval(ratios)

    def test_identical_series_degenerate_at_one(self):
        ci = paired_ratio_interval([3.0, 7.0], [3.0, 7.0])
        assert ci.low == ci.high == 1.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError, match="zero baseline"):
            paired_ratio_interval([1.0, 2.0], [1.0, 0.0])


class TestPairedAlignmentGuards:
    """Empty and misaligned paired sets fail loudly, never as nan columns."""

    @pytest.mark.parametrize("fn", [
        paired_difference_interval, paired_ratio_interval, paired_summary,
    ])
    def test_empty_paired_set_rejected(self, fn):
        with pytest.raises(ValueError, match="at least one aligned pair"):
            fn([], [])

    @pytest.mark.parametrize("fn", [
        paired_difference_interval, paired_ratio_interval, paired_summary,
    ])
    def test_misaligned_lengths_rejected(self, fn):
        with pytest.raises(ValueError, match="aligned replicates"):
            fn([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_non_finite_samples_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            paired_difference_interval([1.0, float("nan")], [1.0, 2.0])
        with pytest.raises(ValueError, match="finite"):
            paired_summary([1.0, 2.0], [1.0, float("inf")])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="comparison mode"):
            paired_summary([1.0], [1.0], mode="quotient")


class TestComparisonSummary:
    def summary(self, a, b, mode="diff", level=0.95):
        return paired_summary(a, b, mode=mode, level=level)

    def test_null_by_mode(self):
        assert self.summary([1.0, 2.0], [1.0, 1.0]).null == 0.0
        assert self.summary([1.0, 2.0], [1.0, 1.0], mode="ratio").null == 1.0
        assert COMPARISON_MODES == ("diff", "ratio")

    def test_decisive_iff_ci_excludes_the_null(self):
        clearly_above = self.summary([10.0, 10.1, 9.9], [1.0, 1.1, 0.9])
        assert clearly_above.decisive
        noisy = self.summary([10.0, -10.0], [1.0, 1.0])
        assert not noisy.decisive

    def test_meets_mirrors_point_summary_semantics(self):
        s = self.summary([5.0, 5.2, 4.8], [1.0, 1.0, 1.0])
        assert s.meets(1e9)
        assert not s.meets(0.0)
        assert s.meets(s.halfwidth / abs(s.mean) + 1e-12, relative=True)
        with pytest.raises(ValueError, match="target halfwidth"):
            s.meets(-1.0)

    def test_single_pair_never_meets_a_positive_target(self):
        s = paired_summary([5.0], [3.0])
        assert s.n == 1 and s.halfwidth == 0.0
        assert not s.meets(100.0)
        assert s.meets(0.0)

    def test_relative_halfwidth_of_zero_mean(self):
        exact_zero = self.summary([1.0, 2.0], [1.0, 2.0])
        assert exact_zero.relative_halfwidth() == 0.0
        spread = ComparisonSummary(
            mode="diff", mean=0.0, stderr=1.0, n=3,
            ci=ConfidenceInterval(-2.0, 2.0, 0.95),
        )
        assert spread.relative_halfwidth() == math.inf

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="comparison mode"):
            ComparisonSummary(
                mode="delta", mean=0.0, stderr=0.0, n=2,
                ci=ConfidenceInterval(0.0, 0.0, 0.95),
            )

    @settings(max_examples=40, deadline=None)
    @given(pair=_pairs)
    def test_mean_is_the_mean_of_the_paired_values(self, pair):
        a, b = pair
        s = paired_summary(a, b)
        assert s.n == len(a)
        assert s.mean == pytest.approx(
            float(np.mean([x - y for x, y in zip(a, b)])), rel=1e-12, abs=1e-9
        )
        assert s.ci.low <= s.mean <= s.ci.high
