"""Publishable experiment reports and repro bundles.

The contracts pinned here:

* :func:`capture_sweeps` observes every ``run_sweep`` call — with the
  *effective* spec after overrides — so the report subcommand can recover
  the exact specs the figure functions built internally;
* :func:`collect_point_samples` returns the same initial replicate blocks
  the sweep simulated, loading everything from a warm per-point cache;
* :func:`comparison_matrix` pairs every series against every other from
  one shared replicate set, and its rendering marks decisive cells;
* :func:`render_report` is deterministic — no timestamps, byte-identical
  re-renders from a warm cache — and :func:`write_bundle` /
  :func:`load_bundle` round-trip the spec JSONs exactly;
* the CLI closes the loop: ``report --bundle`` out, ``run --from-bundle``
  back in, ``report --from-bundle`` re-renders byte-identically.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.stats import comparison_matrix
from repro.api.cache import ResultCache
from repro.api.execution import ExecutionBackend, SerialBackend
from repro.api.experiment import (
    capture_sweeps,
    collect_point_samples,
    run_sweep,
)
from repro.api.specs import (
    ComparisonSpec,
    ExperimentSpec,
    PolicySpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.experiments.__main__ import main
from repro.experiments.report import (
    BUNDLE_SCHEMA,
    ReportSection,
    capture_environment,
    load_bundle,
    render_report,
    write_bundle,
)
from repro.experiments.reporting import format_comparison_matrix


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 40}),
            scenario=ScenarioSpec("commuter", {"period": 6}),
            policies=(
                PolicySpec("onth", label="ONTH"),
                PolicySpec("offstat", label="OFFSTAT"),
            ),
            horizon=60,
        ),
        parameter="scenario.sojourn",
        values=(2, 9),
        runs=2,
        seed=3,
        figure="t",
        title="test sweep",
        comparison=ComparisonSpec(baseline="OFFSTAT"),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class CountingBackend(ExecutionBackend):
    """Serial execution recording the size of every scheduled batch."""

    def __init__(self):
        self.batches = []

    def run_replicates(self, replicate, tasks, on_result=None):
        self.batches.append(len(tasks))
        return SerialBackend().run_replicates(replicate, tasks, on_result)

    @property
    def total(self):
        return sum(self.batches)


class TestCaptureSweeps:
    def test_records_spec_and_result(self):
        spec = small_sweep()
        with capture_sweeps() as captured:
            result = run_sweep(spec)
        assert captured == [(spec, result)]

    def test_records_the_effective_spec_after_overrides(self):
        spec = small_sweep(comparison=None)
        vs = ComparisonSpec(baseline="OFFSTAT")
        with capture_sweeps() as captured:
            run_sweep(spec, comparison=vs)
        [(recorded, result)] = captured
        assert recorded.comparison == vs
        assert result.has_comparisons

    def test_nested_captures_both_record(self):
        spec = small_sweep()
        with capture_sweeps() as outer:
            run_sweep(spec)
            with capture_sweeps() as inner:
                run_sweep(spec)
        assert len(outer) == 2 and len(inner) == 1

    def test_no_observer_no_recording(self):
        with capture_sweeps() as captured:
            pass
        run_sweep(small_sweep())
        assert captured == []


class TestCollectPointSamples:
    def test_blocks_align_with_the_sweep(self):
        spec = small_sweep()
        result = run_sweep(spec)
        blocks = collect_point_samples(spec)
        assert len(blocks) == len(spec.values)
        for i, block in enumerate(blocks):
            assert len(block) == spec.runs
            for name in result.series_names:
                mean = sum(r[name] for r in block) / len(block)
                assert mean == pytest.approx(result.series[name][i])

    def test_warm_cache_simulates_nothing(self, tmp_path):
        spec = small_sweep()
        cache = ResultCache(tmp_path)
        run_sweep(spec, cache=cache)
        counting = CountingBackend()
        probe = ResultCache(tmp_path)
        blocks = collect_point_samples(spec, backend=counting, cache=probe)
        assert counting.total == 0
        assert probe.point_hits == len(spec.values)
        assert len(blocks) == len(spec.values)

    def test_cold_run_stores_blocks_the_sweep_reuses(self, tmp_path):
        spec = small_sweep()
        cache = ResultCache(tmp_path)
        collect_point_samples(spec, cache=cache)
        assert cache.point_stores == len(spec.values)
        warm = ResultCache(tmp_path)
        run_sweep(spec, cache=warm)
        assert warm.point_hits == len(spec.values)
        assert warm.point_stores == 0


class TestComparisonMatrix:
    SAMPLES = {
        "A": (10.0, 12.0, 11.0, 13.0),
        "B": (20.0, 23.0, 21.0, 24.0),
        "C": (10.5, 11.6, 11.2, 12.8),
    }

    def test_every_vs_every_with_none_diagonal(self):
        matrix = comparison_matrix(self.SAMPLES)
        assert matrix.names == ("A", "B", "C")
        for i in range(3):
            for j in range(3):
                cell = matrix.cells[i][j]
                assert (cell is None) == (i == j)

    def test_diff_matrix_is_antisymmetric(self):
        matrix = comparison_matrix(self.SAMPLES)
        ab = matrix.summary("A", "B")
        ba = matrix.summary("B", "A")
        assert ab.mean == pytest.approx(-ba.mean)
        assert ab.halfwidth == pytest.approx(ba.halfwidth)
        assert ab.n == len(self.SAMPLES["A"])

    def test_decisive_tracks_the_paired_interval(self):
        matrix = comparison_matrix(self.SAMPLES)
        # A vs B: a consistent ~10 gap, decisive at 95%
        assert matrix.summary("A", "B").decisive
        # A vs C: sub-noise gap, not decisive
        assert not matrix.summary("A", "C").decisive

    def test_ratio_mode(self):
        matrix = comparison_matrix(self.SAMPLES, mode="ratio")
        cell = matrix.summary("B", "A")
        assert cell.null == 1.0
        assert cell.mean == pytest.approx(
            sum(b / a for a, b in zip(self.SAMPLES["A"], self.SAMPLES["B"]))
            / len(self.SAMPLES["A"])
        )

    def test_summary_rejects_unknown_and_self(self):
        matrix = comparison_matrix(self.SAMPLES)
        with pytest.raises(KeyError, match="not in comparison matrix"):
            matrix.summary("A", "NOPE")
        with pytest.raises(KeyError, match="no self-comparison"):
            matrix.summary("A", "A")

    def test_needs_two_series(self):
        with pytest.raises(ValueError, match="at least two series"):
            comparison_matrix({"A": (1.0, 2.0)})

    def test_rendering_marks_decisive_cells(self):
        matrix = comparison_matrix(self.SAMPLES)
        text = format_comparison_matrix(matrix, x=9, x_label="sojourn")
        assert "paired comparison matrix at sojourn = 9" in text
        assert "n=4 shared replicates" in text
        assert "·" in text  # the diagonal
        assert "Δ = row − column" in text
        assert "* = CI excludes 0" in text
        # the decisive A-vs-B cell is starred
        row = next(line for line in text.splitlines() if line.lstrip().startswith("A "))
        assert "*" in row


class TestRenderReport:
    def sections(self, cache=None):
        spec = small_sweep()
        result = run_sweep(spec, cache=cache)
        return [ReportSection("smoke", spec, result)]

    def test_report_structure(self, tmp_path):
        cache = ResultCache(tmp_path)
        sections = self.sections(cache=cache)
        text = render_report(sections, cache=cache)
        assert text.startswith("# Experiment report")
        assert "## Environment" in text
        assert "| code_fingerprint |" in text
        assert "## smoke — test sweep" in text
        assert "replicates: 2 per point" in text
        assert "paired vs OFFSTAT" in text
        assert f"cache provenance: sweep key `{cache.key_for(sections[0].spec)}`" in text
        assert "### Paired comparison matrix — smoke" in text

    def test_environment_capture_is_stable_and_time_free(self):
        first = capture_environment()
        assert first == capture_environment()
        for field_name in first:
            assert "time" not in field_name and "date" not in field_name

    def test_rendering_twice_from_a_warm_cache_is_byte_identical(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        sections = self.sections(cache=cache)
        first = render_report(sections, cache=cache)
        again = render_report(sections, cache=ResultCache(tmp_path))
        assert again == first

    def test_matrices_can_be_skipped(self, tmp_path):
        sections = self.sections()
        text = render_report(sections, matrices=False)
        assert "Paired comparison matrix" not in text


class TestBundles:
    def bundle(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = small_sweep()
        result = run_sweep(spec, cache=cache)
        sections = [ReportSection("smoke", spec, result)]
        text = render_report(sections, cache=cache)
        root = tmp_path / "bundle"
        write_bundle(root, sections, cache=cache, report_text=text)
        return root, spec, text

    def test_round_trip(self, tmp_path):
        root, spec, text = self.bundle(tmp_path)
        manifest, pairs = load_bundle(root)
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert [key for key, _ in pairs] == ["smoke"]
        assert pairs[0][1] == spec
        assert (root / "EXPERIMENTS.md").read_text() == text
        # the cache manifest names every entry with its content hash
        assert manifest["cache"]["count"] == len(manifest["cache"]["entries"])
        for entry in manifest["cache"]["entries"]:
            assert len(entry["sha256"]) == 64

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="MANIFEST.json missing"):
            load_bundle(tmp_path / "nope")

    def test_unsupported_schema(self, tmp_path):
        root, _, _ = self.bundle(tmp_path)
        manifest_path = root / "MANIFEST.json"
        payload = json.loads(manifest_path.read_text())
        payload["schema"] = 999
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported bundle schema"):
            load_bundle(root)

    def test_missing_spec_file(self, tmp_path):
        root, _, _ = self.bundle(tmp_path)
        (root / "specs" / "smoke.json").unlink()
        with pytest.raises(ValueError, match="missing"):
            load_bundle(root)

    def test_spec_key_mismatch(self, tmp_path):
        root, _, _ = self.bundle(tmp_path)
        spec_path = root / "specs" / "smoke.json"
        payload = json.loads(spec_path.read_text())
        payload["key"] = "other"
        spec_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="holds key"):
            load_bundle(root)


class TestReportCLI:
    def test_full_round_trip_is_byte_identical(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out = tmp_path / "EXPERIMENTS.md"
        bundle = tmp_path / "bundle"
        assert main([
            "report", "fig03", "--runs", "2", "--compare", "ONTH",
            "--cache-dir", str(cache), "--out", str(out),
            "--bundle", str(bundle),
        ]) == 0
        err = capsys.readouterr().err
        assert "wrote repro bundle" in err
        first = out.read_text()
        # the bundled copy is the same document
        assert (bundle / "EXPERIMENTS.md").read_text() == first
        # replay the bundle over the warm cache: nothing to simulate
        assert main([
            "run", "--from-bundle", str(bundle), "--cache-dir", str(cache),
        ]) == 0
        assert "replayed 1 sweeps" in capsys.readouterr().out
        # re-render from the bundle: byte-identical
        out2 = tmp_path / "EXPERIMENTS2.md"
        assert main([
            "report", "--from-bundle", str(bundle),
            "--cache-dir", str(cache), "--out", str(out2),
        ]) == 0
        assert out2.read_text() == first

    def test_report_to_stdout_includes_comparison_columns(self, capsys):
        assert main([
            "report", "fig03", "--runs", "2", "--compare", "ONTH",
            "--no-matrices", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "# Experiment report" in out
        assert "Δ ONBR-fixed" in out and "Δ ONBR-dyn" in out
        assert "Paired comparison matrix" not in out
        assert "cache provenance" not in out

    def test_report_requires_figures_or_a_bundle(self, capsys):
        assert main(["report"]) == 2
        assert "name at least one figure" in capsys.readouterr().err

    def test_from_bundle_excludes_figures_and_bundle(self, tmp_path, capsys):
        assert main(["report", "--from-bundle", "d", "fig03"]) == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert main([
            "report", "--from-bundle", "d", "--bundle", str(tmp_path / "b"),
        ]) == 2
        assert "cannot be combined" in capsys.readouterr().err

    def test_report_rejects_shard(self, capsys):
        assert main(["report", "fig03", "--shard", "1/2"]) == 2
        assert "without --shard" in capsys.readouterr().err

    def test_unknown_figure_exits_cleanly(self, capsys):
        assert main(["report", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_run_from_bundle_rejects_a_missing_bundle(self, tmp_path, capsys):
        assert main([
            "run", "--from-bundle", str(tmp_path / "nope"),
        ]) == 2
        assert "MANIFEST.json missing" in capsys.readouterr().err

    def test_trajectory_figures_are_skipped_with_a_note(self, capsys):
        # fig01 runs no sweeps, so there is nothing to report
        assert main(["report", "fig01"]) == 2
        err = capsys.readouterr().err
        assert "runs no sweeps" in err and "nothing to report" in err
