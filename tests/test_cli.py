"""Tests for the figure-regeneration CLI (python -m repro.experiments)."""

import subprocess
import sys

import pytest

from repro.experiments.__main__ import _REGISTRY, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig03"])
        assert args.figure == "fig03"
        assert not args.paper
        assert args.seed is None

    def test_paper_flag(self):
        args = build_parser().parse_args(["fig15", "--paper"])
        assert args.paper

    def test_seed_override(self):
        args = build_parser().parse_args(["fig15", "--seed", "7"])
        assert args.seed == 7


class TestRegistry:
    def test_all_19_figures_present(self):
        for i in range(1, 20):
            assert f"fig{i:02d}" in _REGISTRY

    def test_rocketfuel_present(self):
        assert "rocketfuel" in _REGISTRY

    def test_ablations_present(self):
        assert {k for k in _REGISTRY if k.startswith("abl-")} == {
            "abl-routing", "abl-cache", "abl-threshold",
            "abl-migration", "abl-mobility", "abl-beta",
        }


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "rocketfuel" in out

    def test_no_figure_lists(self, capsys):
        assert main([]) == 0
        assert "fig19" in capsys.readouterr().out

    def test_unknown_figure(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_runs_a_small_figure(self, capsys):
        assert main(["fig13", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "[fig13]" in out
        assert "OFFSTAT" in out and "OPT" in out

    def test_module_invocation(self):
        """`python -m repro.experiments --list` works as a subprocess."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--list"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "fig11" in proc.stdout


class TestRunAll:
    def test_all_command_exists(self, capsys, monkeypatch):
        """`all` iterates the registry; patch it down to one cheap entry."""
        import repro.experiments.__main__ as cli

        monkeypatch.setattr(
            cli, "_REGISTRY", {"fig13": cli._REGISTRY["fig13"]}
        )
        assert main(["all", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "[fig13]" in out
        assert "regenerated 1 experiments" in out
