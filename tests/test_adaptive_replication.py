"""Adaptive replication: CI-targeted top-ups on the per-point cache.

The contracts pinned here:

* a :class:`ReplicationSpec` without a CI target is bit-identical to the
  plain fixed-``runs`` sweep (golden-pinned for fig03, to the byte with
  ``ci_level=0`` and modulo the additive CI annotations otherwise);
* adaptive top-up seeds extend each point's spawn-offset sequence, so the
  sample at replicate ``(point, j)`` depends only on the sweep seed and
  position — one-shot and incremental top-up schedules, serial, pooled and
  shard-assembled executions all agree bit for bit;
* points stop replicating independently once their CIs meet the target
  (or at ``max_runs``), and a warm cache run simulates nothing;
* point entries written by the replication-unaware code path (PR 3's
  format, no replication metadata) are readable and count toward an
  adaptive target; corrupted sample arrays read as misses.
"""

import json
from pathlib import Path

import pytest

from repro.api.cache import ResultCache
from repro.api.execution import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.api.experiment import refine_sweep, run_sweep
from repro.api.specs import (
    ExperimentSpec,
    PolicySpec,
    ReplicationSpec,
    ScenarioSpec,
    SweepSpec,
    TopologySpec,
)
from repro.experiments import figures
from repro.experiments.runner import spawn_point_extension_tasks, spawn_tasks

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_figures.json").read_text()
)

#: The golden fig03 parameterisation (see tests/test_sharded_sweeps.py).
FIG03_PARAMS = dict(sizes=(30, 60), horizon=80, sojourn=5, runs=2, seed=2)

#: A CI target loose enough to be reachable, tight enough to vary n.
ADAPTIVE = ReplicationSpec(target_halfwidth=0.15, relative=True, max_runs=8)

#: A target no point can reach: every point must run to max_runs.
UNREACHABLE = ReplicationSpec(
    target_halfwidth=1e-9, max_runs=5, batch=1
)


class CountingBackend(ExecutionBackend):
    """Serial execution recording the size of every scheduled batch."""

    def __init__(self):
        self.batches = []

    def run_replicates(self, replicate, tasks, on_result=None):
        self.batches.append(len(tasks))
        return SerialBackend().run_replicates(replicate, tasks, on_result)

    @property
    def total(self):
        return sum(self.batches)


class HookIgnoringBackend(ExecutionBackend):
    """A third-party-style backend that never drives ``on_result``."""

    def run_replicates(self, replicate, tasks, on_result=None):
        return SerialBackend().run_replicates(replicate, tasks, on_result=None)


def small_sweep(**overrides) -> SweepSpec:
    defaults = dict(
        experiment=ExperimentSpec(
            topology=TopologySpec("erdos_renyi", {"n": 30}),
            scenario=ScenarioSpec("commuter", {"period": 4}),
            policies=(PolicySpec("onth", label="ONTH"),),
            horizon=30,
        ),
        parameter="scenario.sojourn",
        values=(2, 5, 9),
        runs=2,
        seed=1,
        figure="t",
        replication=ADAPTIVE,
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestReplicationSpecValidation:
    def test_adaptive_needs_max_runs(self):
        with pytest.raises(ValueError, match="max_runs"):
            ReplicationSpec(target_halfwidth=1.0)

    def test_adaptive_needs_positive_ci_level(self):
        with pytest.raises(ValueError, match="ci_level"):
            ReplicationSpec(target_halfwidth=1.0, max_runs=5, ci_level=0)

    def test_max_runs_below_runs_rejected(self):
        with pytest.raises(ValueError, match="max_runs"):
            ReplicationSpec(runs=6, max_runs=3)

    def test_bad_scalars_rejected(self):
        with pytest.raises(ValueError, match="runs"):
            ReplicationSpec(runs=0)
        with pytest.raises(ValueError, match="batch"):
            ReplicationSpec(batch=0)
        with pytest.raises(ValueError, match="ci_level"):
            ReplicationSpec(ci_level=1.0)
        with pytest.raises(ValueError, match="target_halfwidth"):
            ReplicationSpec(target_halfwidth=-1.0, max_runs=5)
        with pytest.raises(ValueError, match="method"):
            ReplicationSpec(method="magic")

    def test_dict_round_trip_and_unknown_keys(self):
        spec = ReplicationSpec(
            runs=3, max_runs=12, target_halfwidth=0.1, relative=True,
            batch=2, method="bootstrap",
        )
        assert ReplicationSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="max_rnns"):
            ReplicationSpec.from_dict({"max_rnns": 5})

    def test_sweep_spec_coerces_replication_dicts(self):
        spec = small_sweep(replication=ADAPTIVE.to_dict())
        assert spec.replication == ADAPTIVE
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_effective_runs(self):
        assert small_sweep(replication=None).effective_runs == 2
        assert small_sweep(
            replication=ReplicationSpec(runs=7, ci_level=0)
        ).effective_runs == 7

    def test_max_runs_below_initial_runs_surfaces_at_run_time(self):
        spec = small_sweep(
            runs=6,
            replication=ReplicationSpec(target_halfwidth=1.0, max_runs=3),
        )
        with pytest.raises(ValueError, match="max_runs"):
            run_sweep(spec)


class TestFixedReplicationGoldenPinned:
    """ReplicationSpec without a target reproduces the golden figures."""

    def test_ci_level_zero_is_byte_identical(self):
        golden = GOLDEN["fig03"]["result"]
        result = figures.figure03(
            **FIG03_PARAMS, replication=ReplicationSpec(ci_level=0)
        )
        assert result.to_dict() == golden

    def test_annotated_fixed_run_matches_modulo_annotations(self):
        golden = GOLDEN["fig03"]["result"]
        result = figures.figure03(
            **FIG03_PARAMS, replication=ReplicationSpec()
        )
        # every point ran exactly `runs` replicates ...
        assert result.counts == (2, 2)
        assert result.ci_level == 0.95
        # ... and the sample-derived payload is bit-identical: the CI
        # annotations are strictly additive.
        stripped = result.to_dict()
        for key in ("ci", "counts", "ci_level"):
            stripped.pop(key)
        assert stripped == golden

    def test_replication_runs_overrides_sweep_runs_bit_identically(self):
        plain = run_sweep(small_sweep(runs=4, replication=None))
        overridden = run_sweep(
            small_sweep(runs=2, replication=ReplicationSpec(runs=4, ci_level=0))
        )
        assert overridden.to_dict() == plain.to_dict()


class TestAdaptiveStopping:
    def test_points_stop_independently_and_meet_the_target(self):
        result = run_sweep(small_sweep())
        rep = ADAPTIVE
        assert result.has_confidence
        assert all(2 <= n <= rep.max_runs for n in result.counts)
        for summaries in map(result.point_summaries, result.series_names):
            for summary in summaries:
                # a point below the cap must have met the target
                if summary.n < rep.max_runs:
                    assert summary.meets(rep.target_halfwidth, rep.relative)

    def test_per_point_counts_vary(self):
        result = run_sweep(
            small_sweep(values=(2, 5, 9), replication=ReplicationSpec(
                target_halfwidth=0.15, relative=True, max_runs=8,
            ))
        )
        assert len(set(result.counts)) > 1, result.counts

    def test_unreachable_target_runs_every_point_to_max(self):
        result = run_sweep(small_sweep(replication=UNREACHABLE))
        assert result.counts == (5, 5, 5)

    def test_already_met_target_adds_nothing(self):
        generous = ReplicationSpec(target_halfwidth=1e9, max_runs=8)
        result = run_sweep(small_sweep(replication=generous))
        assert result.counts == (2, 2, 2)


class TestAdaptiveDeterminism:
    def test_serial_pool_and_rerun_bit_identical(self):
        spec = small_sweep()
        serial = run_sweep(spec)
        assert run_sweep(spec) == serial
        assert run_sweep(spec, backend=ProcessPoolBackend(2)) == serial

    def test_hook_ignoring_backend_is_backstopped(self, tmp_path):
        """Backends that never call on_result still commit and validate."""
        spec = small_sweep()
        serial = run_sweep(spec)
        cache = ResultCache(tmp_path)
        result = run_sweep(spec, backend=HookIgnoringBackend(), cache=cache)
        assert result == serial
        assert cache.point_stores == 3 and cache.extension_stores > 0

    def test_one_shot_topup_equals_incremental_batches(self):
        """Adaptive in one shot == fixed runs=n_final, rerun from scratch.

        Both sweeps drive every point to the same final count (the target
        is unreachable, so n_final = max_runs): one appends a single
        top-up batch per point, the other re-runs from scratch replicate
        by replicate. Because a top-up replicate's seed depends only on
        the sweep seed and its (point, position) coordinates — the
        extension of the point's spawn-offset sequence — the two
        schedules produce bit-identical samples, series and CIs.
        """
        one_shot = run_sweep(
            small_sweep(replication=ReplicationSpec(
                target_halfwidth=1e-9, max_runs=5, batch=3,
            ))
        )
        incremental = run_sweep(
            small_sweep(replication=ReplicationSpec(
                target_halfwidth=1e-9, max_runs=5, batch=1,
            ))
        )
        assert one_shot.to_dict() == incremental.to_dict()

    def test_extension_seeds_are_positional(self):
        """Top-up task seeds depend only on (sweep seed, point, replicate)."""
        a = spawn_point_extension_tasks("x", 1, 2, 3, seed=9)
        b = spawn_point_extension_tasks("x", 1, 2, 1, seed=9)
        assert a[0].seed.generate_state(4).tolist() == \
            b[0].seed.generate_state(4).tolist()
        flat = spawn_tasks(["x", "y"], 2, seed=9)
        flat_states = [t.seed.generate_state(4).tolist() for t in flat]
        for task in a:
            assert task.seed.generate_state(4).tolist() not in flat_states

    def test_shard_assembly_bit_identical_under_ci_target(self, tmp_path):
        spec = small_sweep()
        serial = run_sweep(spec)
        for index in range(2):
            run_sweep(spec, cache=ResultCache(tmp_path), shard=(index, 2))
        assembler = ResultCache(tmp_path)
        assembled = run_sweep(spec, cache=assembler)
        assert assembled == serial
        assert assembler.point_stores == 0 and assembler.extension_stores == 0

    def test_partial_shard_reports_only_its_finished_points(self, tmp_path):
        spec = small_sweep()
        partial = run_sweep(spec, cache=ResultCache(tmp_path), shard=(1, 2))
        assert partial.x_values == (5,)
        assert "partial" in partial.notes
        assert len(partial.counts) == 1


class TestAdaptiveCaching:
    def test_second_run_simulates_zero_new_replicates(self, tmp_path):
        spec = small_sweep()
        first_cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=first_cache)
        assert first_cache.point_stores == 3
        assert first_cache.extension_stores > 0
        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        second = run_sweep(spec, backend=counting, cache=cache)
        assert second == first
        assert counting.batches == []  # a pure sweep-entry hit
        # even without the sweep entry, the replay touches no simulator
        cache.path_for(spec).unlink()
        replayer = ResultCache(tmp_path)
        replayed = run_sweep(spec, backend=counting, cache=replayer)
        assert replayed == first
        assert counting.batches == []
        assert replayer.extension_hits == first_cache.extension_stores

    def test_pre_replication_point_entries_count_toward_the_target(
        self, tmp_path
    ):
        """Plain point entries (PR-3 format, no replication metadata) seed
        the initial block.

        A replication-unaware sweep writes plain point entries; an
        adaptive run under the same code must load them for its initial
        blocks — identical spec, seed and spawn offsets — and simulate
        only the top-ups.
        """
        plain = small_sweep(replication=None)
        warmer = ResultCache(tmp_path)
        run_sweep(plain, cache=warmer)
        assert warmer.point_stores == 3

        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        result = run_sweep(small_sweep(), backend=counting, cache=cache)
        assert cache.point_hits == 3  # all initial blocks came from PR-3 entries
        # only top-up batches were scheduled: nothing of size runs*points
        expected_topups = sum(n - plain.runs for n in result.counts)
        assert counting.total == expected_topups > 0

    def test_adaptive_entries_warm_a_larger_target(self, tmp_path):
        """Raising max_runs reuses every stored batch and only extends."""
        run_sweep(small_sweep(replication=UNREACHABLE),
                  cache=ResultCache(tmp_path))
        counting = CountingBackend()
        cache = ResultCache(tmp_path)
        bigger = run_sweep(
            small_sweep(replication=ReplicationSpec(
                target_halfwidth=1e-9, max_runs=7, batch=1,
            )),
            backend=counting,
            cache=cache,
        )
        assert bigger.counts == (7, 7, 7)
        assert cache.point_hits == 3
        assert counting.total == 3 * 2  # two extra replicates per point

    def test_extension_entry_round_trip_and_mismatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        experiment = spec.experiment_at(spec.values[0])
        samples = [{"ONTH": 1.5}, {"ONTH": 2.5}]
        cache.store_point_extension(experiment, 1, 0, 2, 2, samples)
        assert cache.load_point_extension(experiment, 1, 0, 2, 2) == samples
        # any shifted coordinate is a different batch: a miss
        assert cache.load_point_extension(experiment, 1, 0, 3, 2) is None
        assert cache.load_point_extension(experiment, 1, 1, 2, 2) is None
        assert cache.load_point_extension(experiment, 2, 0, 2, 2) is None

    def test_corrupt_sample_arrays_are_misses(self, tmp_path):
        """Regression: malformed or non-finite sample blocks never load."""
        cache = ResultCache(tmp_path)
        spec = small_sweep()
        experiment = spec.experiment_at(spec.values[0])
        good = [{"ONTH": 1.0}, {"ONTH": 2.0}]
        path = cache.store_point(experiment, 1, 0, 2, good)
        for bad in (
            "not-a-list",
            [{"ONTH": 1.0}],                      # wrong replicate count
            [{"ONTH": 1.0}, {"ONTH": "a"}],       # non-numeric value
            [{"ONTH": 1.0}, ["ONTH", 2.0]],       # not a mapping
            [{"ONTH": 1.0}, {"ONTH": float("nan")}],
            [{"ONTH": 1.0}, {"ONTH": float("inf")}],
        ):
            data = json.loads(path.read_text())
            data["samples"] = bad
            path.write_text(json.dumps(data, default=str))
            assert cache.load_point(experiment, 1, 0, 2) is None, bad
        # the extension reader shares the decoder
        ext = cache.store_point_extension(experiment, 1, 0, 2, 2, good)
        data = json.loads(ext.read_text())
        data["samples"][1]["ONTH"] = float("nan")
        ext.write_text(json.dumps(data))
        assert cache.load_point_extension(experiment, 1, 0, 2, 2) is None

    def test_no_cache_adaptive_still_works(self):
        result = run_sweep(small_sweep(replication=UNREACHABLE), cache=None)
        assert result.counts == (5, 5, 5)

    def test_resume_false_skips_point_entries_but_caches_the_sweep(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path)
        result = run_sweep(small_sweep(), cache=cache, resume=False)
        assert cache.point_stores == 0 and cache.extension_stores == 0
        assert cache.stats()["kinds"] == {"sweep": 1}
        assert result == run_sweep(small_sweep())


class TestRefineSweep:
    def two_series_sweep(self, **overrides):
        defaults = dict(
            experiment=ExperimentSpec(
                topology=TopologySpec("erdos_renyi", {"n": 30}),
                scenario=ScenarioSpec("commuter", {"period": 4}),
                policies=(
                    PolicySpec("onth", label="ONTH"),
                    PolicySpec("onbr", label="ONBR"),
                ),
                horizon=30,
            ),
            values=(2, 9),
            runs=3,
            replication=ReplicationSpec(),
        )
        defaults.update(overrides)
        return small_sweep(**defaults)

    def test_refinement_bisects_and_simulates_only_new_points(self, tmp_path):
        spec = self.two_series_sweep()
        cache = ResultCache(tmp_path)
        base = run_sweep(spec, cache=cache)
        counting = CountingBackend()
        refined_spec, refined = refine_sweep(
            spec, base, backend=counting, cache=cache, rounds=1,
        )
        new = set(refined_spec.values) - set(spec.values)
        assert new, "overlapping CIs at this scale must trigger a bisection"
        # appended, never reordered: prefix indices (hence seeds) are stable
        assert refined_spec.values[: len(spec.values)] == spec.values
        assert counting.total == len(new) * spec.runs
        # the result is presented in ascending x order
        assert refined.x_values == tuple(sorted(refined_spec.values))
        # original points kept their values bit for bit
        for name in base.series_names:
            for i, x in enumerate(base.x_values):
                j = refined.x_values.index(x)
                assert refined.series[name][j] == base.series[name][i]

    def test_settled_orderings_refine_nothing(self):
        spec = self.two_series_sweep()
        base = run_sweep(spec)
        # grow the CIs' denominators: a huge level-0 degenerate interval
        # cannot be built, so instead feed a result whose intervals are
        # forced tiny by rewriting ci to zero-width bands at the means.
        from dataclasses import replace

        settled = replace(
            base,
            ci={
                name: tuple((m, m) for m in base.series[name])
                for name in base.series_names
            },
        )
        # push the two series far apart so orderings are separated
        settled = replace(
            settled,
            series={
                "ONTH": base.series["ONTH"],
                "ONBR": tuple(v * 10 for v in base.series["ONBR"]),
            },
        )
        refined_spec, refined = refine_sweep(spec, settled)
        assert refined_spec.values == spec.values
        assert refined.x_values == tuple(sorted(spec.values))

    def test_single_series_has_no_orderings(self):
        spec = small_sweep(values=(2, 9), replication=ReplicationSpec())
        refined_spec, _ = refine_sweep(spec, run_sweep(spec))
        assert refined_spec.values == spec.values

    def test_integer_axis_bisects_to_integers(self, tmp_path):
        spec = self.two_series_sweep()
        refined_spec, _ = refine_sweep(spec, run_sweep(spec))
        assert all(isinstance(v, int) for v in refined_spec.values)

    def test_rounds_and_budget_are_respected(self):
        spec = self.two_series_sweep()
        refined_spec, _ = refine_sweep(
            spec, run_sweep(spec), rounds=3, max_new_points=2,
        )
        assert len(refined_spec.values) <= len(spec.values) + 2

    def test_plain_sweeps_refine_via_t_fallback(self, tmp_path):
        spec = self.two_series_sweep(replication=None)
        cache = ResultCache(tmp_path)
        base = run_sweep(spec, cache=cache)
        assert not base.has_confidence
        refined_spec, refined = refine_sweep(spec, base, cache=cache)
        assert set(refined_spec.values) >= set(spec.values)

    def test_rejects_unbisectable_sweeps(self):
        with pytest.raises(ValueError, match="single swept parameter"):
            refine_sweep(small_sweep(parameter=None, values=("total cost",)))
        coupled = small_sweep(
            parameter=("topology.n", "scenario.sojourn"),
            values=((30, 2), (40, 5)),
        )
        with pytest.raises(ValueError, match="single swept parameter"):
            refine_sweep(coupled)
        with pytest.raises(ValueError, match="numeric axis"):
            refine_sweep(small_sweep(values=(True, False)))
        with pytest.raises(ValueError, match="rounds"):
            refine_sweep(small_sweep(), rounds=0)
        with pytest.raises(ValueError, match="max_new_points"):
            refine_sweep(small_sweep(), max_new_points=0)

    def test_rejects_partial_results(self, tmp_path):
        spec = small_sweep()
        partial = run_sweep(spec, cache=ResultCache(tmp_path), shard=(1, 2))
        with pytest.raises(ValueError, match="complete"):
            refine_sweep(spec, partial)

    def test_rejects_results_off_the_spec_grid(self):
        """The structural check, not a notes sniff: foreign x values fail."""
        spec = self.two_series_sweep()
        other = run_sweep(self.two_series_sweep(values=(2, 5, 9)))
        with pytest.raises(ValueError, match="does not belong"):
            refine_sweep(spec, other)

    def test_rejects_results_from_different_policies(self):
        spec = self.two_series_sweep()
        foreign = self.two_series_sweep(
            experiment=ExperimentSpec(
                topology=TopologySpec("erdos_renyi", {"n": 30}),
                scenario=ScenarioSpec("commuter", {"period": 4}),
                policies=(
                    PolicySpec("onth", label="ONTH"),
                    PolicySpec("offstat", label="OFFSTAT"),
                ),
                horizon=30,
            ),
        )
        with pytest.raises(ValueError, match="policy labels"):
            refine_sweep(spec, run_sweep(foreign))

    def test_min_spacing_guards_every_grid_value(self, tmp_path):
        """A midpoint near *any* existing point is skipped, not just the
        interval's own endpoints (integer bisection floors, so the midpoint
        of (1, 4) lands at distance 1 from the left endpoint)."""
        from dataclasses import replace

        spec = self.two_series_sweep(values=(1, 4))
        base = run_sweep(spec)
        wide = replace(
            base,
            ci={
                name: tuple((v - 1e6, v + 1e6) for v in base.series[name])
                for name in base.series_names
            },
        )
        bisected, _ = refine_sweep(spec, wide)
        assert bisected.values == (1, 4, 2)
        guarded, _ = refine_sweep(spec, wide, min_spacing=1)
        assert guarded.values == spec.values

    def test_refinement_needs_interval_estimates(self):
        spec = self.two_series_sweep(replication=None, runs=1)
        with pytest.raises(ValueError, match="runs >= 2"):
            refine_sweep(spec, run_sweep(spec))
